//! Partitioned analysis for circuits too wide for exhaustive
//! simulation (the paper's Section-4 scaling suggestion): analyse the
//! fanin cone of each primary output independently.
//!
//! The demo circuit is a 12-bit ripple-carry adder: 25 primary inputs
//! (beyond the exhaustive limit), but every output cone is narrow
//! enough on its own.
//!
//! Run with: `cargo run --release --example partitioned_analysis`

use ndetect::analysis::partition::analyze_output_cones;
use ndetect::circuits::extra::ripple_adder;
use ndetect::sim::{PatternSpace, MAX_EXHAUSTIVE_INPUTS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adder = ripple_adder(12);
    println!("{adder}");

    // The whole circuit cannot be analysed exhaustively:
    assert!(PatternSpace::new(adder.num_inputs()).is_err());
    println!(
        "{} inputs > exhaustive limit of {MAX_EXHAUSTIVE_INPUTS}: analysing output cones instead\n",
        adder.num_inputs()
    );

    // But each output cone can (sum bit i depends on 2i+3 inputs).
    let reports = analyze_output_cones(&adder, 16)?;
    println!(
        "{:<8} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "output", "inputs", "gates", "targets", "bridges", "cov@1", "cov@10", "tail11"
    );
    for r in &reports {
        let cov = |n: u32| {
            r.coverage
                .iter()
                .find(|(t, _)| *t == n)
                .map_or(100.0, |(_, pct)| *pct)
        };
        println!(
            "{:<8} {:>6} {:>6} {:>8} {:>8} {:>7.2}% {:>7.2}% {:>8}",
            r.output_name,
            r.num_inputs,
            r.num_gates,
            r.num_targets,
            r.num_bridges,
            cov(1),
            cov(10),
            r.tail_11
        );
    }
    println!(
        "\n{} of {} output cones fit the exhaustive analysis",
        reports.len(),
        adder.num_outputs()
    );
    println!("(cone results are conservative: other outputs may also observe a fault)");
    Ok(())
}
