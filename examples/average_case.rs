//! Average-case analysis: build K random n-detection test sets with the
//! paper's Procedure 1 and estimate the probability that an *arbitrary*
//! n-detection test set detects each hard untargeted fault.
//!
//! Run with: `cargo run --release --example average_case [circuit] [K]`

use ndetect::analysis::{estimate_detection_probabilities, Procedure1Config, WorstCaseAnalysis};
use ndetect::faults::FaultUniverse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "cse".to_string());
    let k: usize = args.next().map_or(1000, |s| s.parse().expect("K"));

    let netlist = ndetect::circuits::build(&name)?;
    let universe = FaultUniverse::build(&netlist)?;
    let wc = WorstCaseAnalysis::compute(&universe);
    println!("{universe}");

    // The faults the paper tracks: not guaranteed detected by any
    // 10-detection test set.
    let tracked = wc.tail_indices(11);
    println!(
        "{} of {} bridging faults have nmin >= 11 (no guarantee at n = 10)",
        tracked.len(),
        universe.bridges().len()
    );
    if tracked.is_empty() {
        println!("nothing to estimate; try `keyb`, `cse`, `dvram`, or `s1a`");
        return Ok(());
    }

    let config = Procedure1Config {
        nmax: 10,
        num_test_sets: k,
        ..Default::default()
    };
    let probs = estimate_detection_probabilities(&universe, &tracked, &config)?;

    println!("\np(n,g) histogram across the tracked faults (count with p >= threshold):");
    println!(
        "{:>4} | {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "n", "1.0", "0.9", "0.7", "0.5", "0.3", "0.1"
    );
    for n in 1..=10u32 {
        let row = probs.histogram_row(n);
        println!(
            "{n:>4} | {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            row[0], row[1], row[3], row[5], row[7], row[9]
        );
    }

    if let Some((pos, p)) = probs.min_probability(10) {
        println!(
            "\nhardest fault: {} with p(10,g) = {p:.3}",
            universe.bridges()[tracked[pos]].name(universe.netlist())
        );
    }
    println!(
        "expected number of tracked faults escaping a random 10-detection set: {:.2}",
        probs.expected_escapes(10)
    );
    Ok(())
}
