//! The downstream-user workflow: author your own circuit (via the
//! builder API or `.bench` text), then run the full n-detection
//! analysis on it — worst-case guarantees, average-case probabilities,
//! and a compact greedy test set.
//!
//! Run with: `cargo run --release --example custom_circuit`

use ndetect::analysis::atpg::{bridge_coverage, greedy_n_detection};
use ndetect::analysis::{estimate_detection_probabilities, Procedure1Config, WorstCaseAnalysis};
use ndetect::faults::FaultUniverse;
use ndetect::netlist::{bench_format, NetlistBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Option A: the builder API.
    let mut b = NetlistBuilder::new("my_alu_slice");
    let a = b.input("a");
    let c = b.input("c");
    let cin = b.input("cin");
    let sel = b.input("sel");
    let axc = b.xor("axc", &[a, c])?;
    let sum = b.xor("sum", &[axc, cin])?;
    let and_ab = b.and("and_ab", &[a, c])?;
    let prop = b.and("prop", &[axc, cin])?;
    let cout = b.or("cout", &[and_ab, prop])?;
    let nsel = b.not("nsel", sel)?;
    let out_sum = b.and("out_sum", &[sum, nsel])?;
    let out_and = b.and("out_and", &[and_ab, sel])?;
    let y = b.or("y", &[out_sum, out_and])?;
    b.output(y);
    b.output(cout);
    let circuit = b.build()?;
    println!("built: {circuit}");

    // Option B: the same circuit round-tripped through .bench text —
    // what you'd do with a file on disk.
    let text = bench_format::write(&circuit);
    let circuit = bench_format::parse("my_alu_slice", &text)?;
    println!("round-tripped through .bench ({} bytes)\n", text.len());

    // Full analysis.
    let universe = FaultUniverse::build(&circuit)?;
    println!("{universe}");
    let wc = WorstCaseAnalysis::compute(&universe);
    println!("{wc}");

    // Per-fault detail for the hardest bridging faults.
    let mut hardest: Vec<(usize, Option<u32>)> = (0..universe.bridges().len())
        .map(|j| (j, wc.nmin(j)))
        .collect();
    hardest.sort_by_key(|&(_, nmin)| std::cmp::Reverse(nmin.unwrap_or(u32::MAX)));
    println!("\nhardest bridging faults:");
    for &(j, nmin) in hardest.iter().take(5) {
        println!(
            "  {} : T(g) = {:?}, nmin = {}",
            universe.bridges()[j].name(universe.netlist()),
            universe.bridge_set(j).to_vec(),
            nmin.map_or("never guaranteed".to_string(), |v| v.to_string()),
        );
    }

    // Average case over everything.
    let tracked: Vec<usize> = (0..universe.bridges().len()).collect();
    let probs = estimate_detection_probabilities(
        &universe,
        &tracked,
        &Procedure1Config {
            nmax: 5,
            num_test_sets: 2000,
            ..Default::default()
        },
    )?;
    if let Some((pos, p)) = probs.min_probability(5) {
        println!(
            "\nlowest p(5,g) = {p:.3} for {}",
            universe.bridges()[tracked[pos]].name(universe.netlist())
        );
    }

    // And a compact deterministic test set.
    for n in [1u32, 5] {
        let set = greedy_n_detection(&universe, n);
        println!(
            "greedy {n}-detection set: {} tests, bridging coverage {:.1}%",
            set.len(),
            bridge_coverage(&universe, &set)
        );
    }
    Ok(())
}
