//! Test-set generation: build compact n-detection test sets and watch
//! the worst-case guarantee kick in.
//!
//! Generates greedy set-cover n-detection sets for the paper's Figure-1
//! circuit at growing `n`, compacts them, and shows (a) how far below
//! the exhaustive space a compact set stays and (b) that once
//! `n >= nmin(g0)` the generated set — like *every* n-detection set —
//! detects the example bridging fault `g0 = (9,0,10,1)`.
//!
//! Run with: `cargo run --release --example generate_compact`

use ndetect::analysis::WorstCaseAnalysis;
use ndetect::circuits::figure1;
use ndetect::faults::FaultUniverse;
use ndetect::gen::{generate, GenOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = figure1::netlist();
    let universe = FaultUniverse::build(&circuit)?;
    let wc = WorstCaseAnalysis::compute(&universe);
    let g0 = universe
        .find_bridge("9", false, "10", true)
        .expect("g0 is detectable");
    let nmin_g0 = wc.nmin(g0).expect("bounded");
    println!("{universe}");
    println!("nmin(g0) = {nmin_g0}\n");

    println!(
        "{:>2}  {:>4}  {:>9}  {:>11}",
        "n", "|T|", "|T|/|U|", "detects g0?"
    );
    for n in 1..=5u32 {
        let set = generate(
            &universe,
            &GenOptions {
                n,
                compact: true,
                ..GenOptions::default()
            },
        );
        let detects_g0 = universe.bridge_set(g0).intersects(set.as_vector_set());
        println!(
            "{n:>2}  {:>4}  {:>8.1}%  {:>11}{}",
            set.len(),
            100.0 * set.len() as f64 / universe.space().num_patterns() as f64,
            if detects_g0 { "yes" } else { "no" },
            if n >= nmin_g0 { "  (guaranteed)" } else { "" },
        );
        // The worst-case guarantee: any n-detection set with n >= nmin
        // must detect g0 — including this one.
        assert!(n < nmin_g0 || detects_g0);
    }

    println!("\nSeeded tie-breaking generates diverse sets of the same quality:");
    for seed in [1u64, 2, 3] {
        let set = generate(
            &universe,
            &GenOptions {
                n: 2,
                compact: true,
                seed: Some(seed),
                ..GenOptions::default()
            },
        );
        println!("  seed {seed}: {set}");
    }
    Ok(())
}
