//! Definition 1 vs Definition 2 (the paper's Section 4): the stricter
//! "sufficiently different tests" counting rule produces more diverse
//! n-detection test sets and raises the detection probability of
//! untargeted faults.
//!
//! Run with: `cargo run --release --example definition2_compare [circuit] [K]`

use ndetect::analysis::{
    construct_test_set_series, estimate_detection_probabilities, DetectionDefinition,
    Procedure1Config, WorstCaseAnalysis,
};
use ndetect::faults::FaultUniverse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "cse".to_string());
    let k: usize = args.next().map_or(200, |s| s.parse().expect("K"));

    let netlist = ndetect::circuits::build(&name)?;
    let universe = FaultUniverse::build(&netlist)?;
    let wc = WorstCaseAnalysis::compute(&universe);
    let tracked = wc.tail_indices(11);
    println!("{universe}");
    println!("tracked tail faults: {}\n", tracked.len());

    // Compare average test-set sizes first: Definition 2 must work
    // harder to call two detections "different".
    let small = Procedure1Config {
        nmax: 10,
        num_test_sets: 10,
        ..Default::default()
    };
    for (label, definition) in [
        ("Definition 1", DetectionDefinition::Standard),
        ("Definition 2", DetectionDefinition::SufficientlyDifferent),
    ] {
        let series = construct_test_set_series(
            &universe,
            &Procedure1Config {
                definition,
                ..small
            },
        )?;
        let avg: f64 = series.sets[9].iter().map(|s| s.len() as f64).sum::<f64>() / 10.0;
        println!("{label}: average 10-detection test set size = {avg:.1} vectors");
    }

    if tracked.is_empty() {
        println!("\nno tail faults to compare probabilities on; try `cse` or `dvram`");
        return Ok(());
    }

    let base = Procedure1Config {
        nmax: 10,
        num_test_sets: k,
        ..Default::default()
    };
    let d1 = estimate_detection_probabilities(&universe, &tracked, &base)?;
    let d2 = estimate_detection_probabilities(
        &universe,
        &tracked,
        &Procedure1Config {
            definition: DetectionDefinition::SufficientlyDifferent,
            ..base
        },
    )?;

    println!("\ncount of tail faults with p(10,g) >= threshold (K = {k}):");
    println!(
        "{:>12} | {:>6} {:>6} {:>6} {:>6} {:>6}",
        "", "1.0", "0.8", "0.6", "0.4", "0.2"
    );
    let row1 = d1.histogram_row(10);
    let row2 = d2.histogram_row(10);
    println!(
        "{:>12} | {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Definition 1", row1[0], row1[2], row1[4], row1[6], row1[8]
    );
    println!(
        "{:>12} | {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Definition 2", row2[0], row2[2], row2[4], row2[6], row2[8]
    );
    println!(
        "\nexpected escapes at n=10: {:.2} (def 1) vs {:.2} (def 2)",
        d1.expected_escapes(10),
        d2.expected_escapes(10)
    );
    Ok(())
}
