//! Worst-case analysis sweep: Tables 2 and 3 of the paper on a
//! selection of benchmark circuits, plus the Figure-2 style `nmin`
//! distribution for the circuit with the heaviest tail.
//!
//! Run with: `cargo run --release --example worst_case_sweep`
//! (pass circuit names as CLI arguments to override the default set).

use ndetect::analysis::report::{render_table2, render_table3, table2_row, table3_row};
use ndetect::analysis::{NminDistribution, WorstCaseAnalysis};
use ndetect::faults::FaultUniverse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        ["lion", "dk16", "modulo12", "donfile", "keyb", "s1a"]
            .iter()
            .map(ToString::to_string)
            .collect()
    } else {
        args
    };

    let mut rows2 = Vec::new();
    let mut rows3 = Vec::new();
    let mut heaviest: Option<(String, WorstCaseAnalysis)> = None;

    for name in &names {
        let netlist = ndetect::circuits::build(name)?;
        let universe = FaultUniverse::build(&netlist)?;
        let wc = WorstCaseAnalysis::compute(&universe);
        println!("{universe}");
        rows2.push(table2_row(name, &wc));
        if wc.tail_count(11) > 0 {
            rows3.push(table3_row(name, &wc));
        }
        let is_heavier = heaviest
            .as_ref()
            .is_none_or(|(_, best)| wc.tail_count(11) > best.tail_count(11));
        if is_heavier {
            heaviest = Some((name.clone(), wc));
        }
    }

    println!("\nworst-case coverage (Table 2 shape):\n");
    print!("{}", render_table2(&rows2));
    if !rows3.is_empty() {
        println!("\nlarge-n tails (Table 3 shape):\n");
        print!("{}", render_table3(&rows3));
    }

    if let Some((name, wc)) = heaviest {
        let dist = NminDistribution::collect(&wc, 11);
        if !dist.is_empty() {
            println!("\nnmin distribution for {name} (Figure 2 shape, nmin >= 11):\n");
            print!("{}", dist.render_ascii(20));
        }
    }
    Ok(())
}
