//! Quickstart: reproduce the paper's running example end to end.
//!
//! Builds the Figure 1 circuit, computes the fault universe (collapsed
//! stuck-at targets `F`, four-way bridging faults `G`, and every
//! detection set `T(h)` over the exhaustive vector space `U`), prints
//! the paper's Table 1, and derives `nmin(g0)` — the smallest `n` for
//! which *every* n-detection test set is guaranteed to detect the
//! bridging fault `g0 = (9,0,10,1)`.
//!
//! Run with: `cargo run --release --example quickstart`

use ndetect::analysis::report;
use ndetect::analysis::WorstCaseAnalysis;
use ndetect::circuits::figure1;
use ndetect::faults::FaultUniverse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The example circuit: 4 inputs, 3 gates, all gate outputs
    //    observable. Input 2 fans out to lines 5,6; input 3 to 7,8.
    let circuit = figure1::netlist();
    println!("{circuit}");

    // 2. The fault universe: F (collapsed stuck-at) and G (four-way
    //    bridging), with T(h) for every fault over U = {0..15}.
    let universe = FaultUniverse::build(&circuit)?;
    println!("{universe}\n");

    // 3. The paper's Table 1 for g0 = (9,0,10,1).
    let g0 = universe
        .find_bridge("9", false, "10", true)
        .expect("g0 is detectable");
    println!(
        "T(g0) = {:?}  (vectors detecting the bridging fault)",
        universe.bridge_set(g0).to_vec()
    );
    println!();
    for row in report::table1(&universe, g0) {
        let fault = universe.targets()[row.index];
        println!(
            "f{:<2} = {:>4}/{}   T = {:<38} nmin(g0,f) = {}",
            row.index,
            figure1::paper_line_label(fault.line),
            u8::from(fault.value),
            format!("{:?}", row.t_set),
            row.nmin
        );
    }

    // 4. The worst-case bound: any test set detecting every stuck-at
    //    fault at least nmin(g0) times must detect g0.
    let wc = WorstCaseAnalysis::compute(&universe);
    println!("\nnmin(g0) = {}", wc.nmin(g0).expect("bounded"));
    println!(
        "=> every n-detection test set with n >= {} detects g0;",
        wc.nmin(g0).expect("bounded")
    );
    println!("   an adversarial 2-detection test set can miss it.");
    Ok(())
}
