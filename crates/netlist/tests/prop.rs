//! Property tests for the netlist substrate: reachability against a DFS
//! oracle, line-model invariants, and `.bench` round trips.

use ndetect_netlist::{
    bench_format, fanin_cone, fanout_cone, GateKind, LineKind, Netlist, NetlistBuilder, NodeId,
    ReachabilityMatrix, Sink,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_netlist(seed: u64, num_inputs: usize, num_gates: usize) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(format!("r{seed}"));
    let mut nodes: Vec<NodeId> = (0..num_inputs).map(|i| b.input(format!("i{i}"))).collect();
    const KINDS: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    for g in 0..num_gates {
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let arity = if matches!(kind, GateKind::Not | GateKind::Buf) {
            1
        } else {
            rng.gen_range(2..=3)
        };
        let fanins: Vec<NodeId> = (0..arity)
            .map(|_| nodes[rng.gen_range(0..nodes.len())])
            .collect();
        nodes.push(b.gate(kind, format!("g{g}"), &fanins).expect("valid"));
    }
    for k in 0..rng.gen_range(1..=2usize) {
        b.output(nodes[nodes.len() - 1 - k]);
    }
    b.build().expect("valid DAG")
}

/// DFS oracle for reachability.
fn reaches_dfs(netlist: &Netlist, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; netlist.num_nodes()];
    let mut stack = vec![from];
    while let Some(id) = stack.pop() {
        for sink in netlist.sinks(id) {
            if let Sink::GatePin { gate, .. } = *sink {
                if gate == to {
                    return true;
                }
                if !seen[gate.index()] {
                    seen[gate.index()] = true;
                    stack.push(gate);
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The bitset reachability matrix agrees with DFS for all pairs.
    #[test]
    fn reachability_matches_dfs(seed in any::<u64>(), gates in 1usize..=20) {
        let n = random_netlist(seed, 3, gates);
        let r = ReachabilityMatrix::compute(&n);
        for a in n.node_ids() {
            for b in n.node_ids() {
                prop_assert_eq!(
                    r.reaches(a, b),
                    reaches_dfs(&n, a, b),
                    "{} -> {}", n.node_name(a), n.node_name(b)
                );
            }
        }
    }

    /// Line-model invariants: every node has exactly one stem; branches
    /// exist iff fanout >= 2, one per sink, and all lines have unique ids
    /// covering 0..len.
    #[test]
    fn line_model_invariants(seed in any::<u64>(), gates in 1usize..=20) {
        let n = random_netlist(seed, 4, gates);
        let lines = n.lines();
        let mut stem_count = vec![0usize; n.num_nodes()];
        let mut branch_count = vec![0usize; n.num_nodes()];
        for (i, line) in lines.lines().iter().enumerate() {
            prop_assert_eq!(line.id().index(), i);
            match *line.kind() {
                LineKind::Stem { node } => stem_count[node.index()] += 1,
                LineKind::Branch { node, .. } => branch_count[node.index()] += 1,
            }
        }
        for id in n.node_ids() {
            prop_assert_eq!(stem_count[id.index()], 1, "stems of {}", n.node_name(id));
            let fanout = n.fanout(id);
            let expect = if fanout >= 2 { fanout } else { 0 };
            prop_assert_eq!(branch_count[id.index()], expect, "branches of {}", n.node_name(id));
            prop_assert_eq!(lines.branches(id).len(), expect);
        }
    }

    /// Topological order places fanins before consumers, and levels are
    /// consistent with it.
    #[test]
    fn topo_and_levels_consistent(seed in any::<u64>(), gates in 1usize..=20) {
        let n = random_netlist(seed, 3, gates);
        let pos: std::collections::HashMap<NodeId, usize> = n
            .topo_order().iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in n.node_ids() {
            for &f in n.node(id).fanins() {
                prop_assert!(pos[&f] < pos[&id]);
                prop_assert!(n.level(f) < n.level(id));
            }
        }
    }

    /// Cones are consistent: `a` is in `fanin_cone(b)` iff `b` is in
    /// `fanout_cone(a)` (both include the endpoints).
    #[test]
    fn cones_are_dual(seed in any::<u64>(), gates in 1usize..=16) {
        let n = random_netlist(seed, 3, gates);
        for a in n.node_ids() {
            let fo = fanout_cone(&n, a);
            for b in n.node_ids() {
                let fi = fanin_cone(&n, b);
                prop_assert_eq!(
                    fi.contains(&a),
                    fo.contains(&b),
                    "{} vs {}", n.node_name(a), n.node_name(b)
                );
            }
        }
    }

    /// `.bench` round trips preserve structure counts and behaviour.
    #[test]
    fn bench_round_trip(seed in any::<u64>(), gates in 1usize..=20) {
        let n = random_netlist(seed, 4, gates);
        let text = bench_format::write(&n);
        let back = bench_format::parse(n.name(), &text).expect("parses");
        prop_assert_eq!(n.num_inputs(), back.num_inputs());
        prop_assert_eq!(n.num_outputs(), back.num_outputs());
        prop_assert_eq!(n.num_gates(), back.num_gates());
        for v in 0..(1usize << n.num_inputs()) {
            let bits: Vec<bool> = (0..n.num_inputs())
                .map(|i| (v >> (n.num_inputs() - 1 - i)) & 1 == 1)
                .collect();
            prop_assert_eq!(n.eval_bool(&bits), back.eval_bool(&bits));
        }
    }
}
