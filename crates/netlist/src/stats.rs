//! Summary statistics over a netlist's structure.

use crate::gate::GateKind;
use crate::netlist::Netlist;
use std::collections::BTreeMap;
use std::fmt;

/// Structural summary of a netlist: node counts by kind, depth, fanout
/// profile, and line counts.
///
/// ```
/// use ndetect_netlist::{GateKind, NetlistBuilder, NetlistStats};
/// # fn main() -> Result<(), ndetect_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let c = b.input("c");
/// let g = b.and("g", &[a, c])?;
/// b.output(g);
/// let stats = NetlistStats::compute(&b.build()?);
/// assert_eq!(stats.num_inputs, 2);
/// assert_eq!(stats.kind_counts[&GateKind::And], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of non-input nodes.
    pub num_gates: usize,
    /// Count of nodes per gate kind.
    pub kind_counts: BTreeMap<GateKind, usize>,
    /// Maximum logic level.
    pub max_level: u32,
    /// Number of stems with fanout ≥ 2.
    pub num_fanout_stems: usize,
    /// Largest fanout of any stem.
    pub max_fanout: usize,
    /// Total number of fault-site lines (stems + branches).
    pub num_lines: usize,
    /// Number of gates with two or more inputs (bridging-fault candidates).
    pub num_multi_input_gates: usize,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    #[must_use]
    pub fn compute(netlist: &Netlist) -> Self {
        let mut kind_counts = BTreeMap::new();
        let mut num_fanout_stems = 0;
        let mut max_fanout = 0;
        let mut num_multi_input_gates = 0;
        for id in netlist.node_ids() {
            let node = netlist.node(id);
            *kind_counts.entry(node.kind()).or_insert(0) += 1;
            let fo = netlist.fanout(id);
            if fo >= 2 {
                num_fanout_stems += 1;
            }
            max_fanout = max_fanout.max(fo);
            if node.fanins().len() >= 2 {
                num_multi_input_gates += 1;
            }
        }
        NetlistStats {
            num_inputs: netlist.num_inputs(),
            num_outputs: netlist.num_outputs(),
            num_gates: netlist.num_gates(),
            kind_counts,
            max_level: netlist.max_level(),
            num_fanout_stems,
            max_fanout,
            num_lines: netlist.lines().len(),
            num_multi_input_gates,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "inputs={} outputs={} gates={} lines={} depth={}",
            self.num_inputs, self.num_outputs, self.num_gates, self.num_lines, self.max_level
        )?;
        write!(
            f,
            "fanout stems={} max fanout={} multi-input gates={}",
            self.num_fanout_stems, self.max_fanout, self.num_multi_input_gates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn figure1_stats() {
        let mut b = NetlistBuilder::new("figure1");
        let i1 = b.input("1");
        let i2 = b.input("2");
        let i3 = b.input("3");
        let i4 = b.input("4");
        let g9 = b.and("9", &[i1, i2]).unwrap();
        let g10 = b.and("10", &[i2, i3]).unwrap();
        let g11 = b.or("11", &[i3, i4]).unwrap();
        b.output(g9);
        b.output(g10);
        b.output(g11);
        let stats = NetlistStats::compute(&b.build().unwrap());
        assert_eq!(stats.num_inputs, 4);
        assert_eq!(stats.num_outputs, 3);
        assert_eq!(stats.num_gates, 3);
        assert_eq!(stats.num_lines, 11);
        assert_eq!(stats.num_fanout_stems, 2);
        assert_eq!(stats.max_fanout, 2);
        assert_eq!(stats.num_multi_input_gates, 3);
        assert_eq!(stats.max_level, 1);
        assert_eq!(stats.kind_counts[&GateKind::And], 2);
        assert_eq!(stats.kind_counts[&GateKind::Or], 1);
        assert_eq!(stats.kind_counts[&GateKind::Input], 4);
    }

    #[test]
    fn display_contains_key_fields() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.not("g", a).unwrap();
        b.output(g);
        let stats = NetlistStats::compute(&b.build().unwrap());
        let s = stats.to_string();
        assert!(s.contains("inputs=1"));
        assert!(s.contains("depth=1"));
    }
}
