//! Incremental construction of [`Netlist`]s.

use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::id::NodeId;
use crate::netlist::{Netlist, Node};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

#[derive(Clone, Debug)]
enum FaninRef {
    Id(NodeId),
    Name(String),
}

#[derive(Clone, Debug)]
struct PendingNode {
    kind: GateKind,
    fanins: Vec<FaninRef>,
}

/// Builder for [`Netlist`].
///
/// Nodes may be added either with already-known fanin ids ([`Self::gate`])
/// or with by-name forward references ([`Self::gate_by_name`], used by the
/// `.bench` parser, where a gate may be defined before its fanins).
/// [`Self::build`] resolves names, validates arities, rejects cycles, and
/// computes all derived structure.
///
/// ```
/// use ndetect_netlist::{GateKind, NetlistBuilder};
/// # fn main() -> Result<(), ndetect_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("mux");
/// let s = b.input("s");
/// let a = b.input("a");
/// let c = b.input("c");
/// let ns = b.not("ns", s)?;
/// let t0 = b.and("t0", &[ns, a])?;
/// let t1 = b.and("t1", &[s, c])?;
/// let y = b.or("y", &[t0, t1])?;
/// b.output(y);
/// let netlist = b.build()?;
/// assert_eq!(netlist.num_gates(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct NetlistBuilder {
    name: String,
    nodes: Vec<PendingNode>,
    names: Vec<String>,
    name_index: HashMap<String, NodeId>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    output_names: Vec<String>,
    fresh_counter: usize,
}

impl NetlistBuilder {
    /// Creates an empty builder for a netlist with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            nodes: Vec::new(),
            names: Vec::new(),
            name_index: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            output_names: Vec::new(),
            fresh_counter: 0,
        }
    }

    fn add_node(
        &mut self,
        kind: GateKind,
        name: String,
        fanins: Vec<FaninRef>,
    ) -> Result<NodeId, NetlistError> {
        if self.name_index.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let (lo, hi) = kind.arity();
        if fanins.len() < lo || fanins.len() > hi {
            return Err(NetlistError::BadArity {
                gate: name,
                kind: kind.to_string(),
                got: fanins.len(),
            });
        }
        let id = NodeId::new(self.nodes.len());
        self.name_index.insert(name.clone(), id);
        self.names.push(name);
        self.nodes.push(PendingNode { kind, fanins });
        Ok(id)
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics if the name is already in use (inputs are usually the first
    /// nodes added; use [`Self::try_input`] to handle the error).
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        self.try_input(name).expect("duplicate input name")
    }

    /// Adds a primary input, reporting a duplicate name as an error.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn try_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let id = self.add_node(GateKind::Input, name.into(), Vec::new())?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a gate whose fanins are already-created nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] or [`NetlistError::BadArity`].
    pub fn gate(
        &mut self,
        kind: GateKind,
        name: impl Into<String>,
        fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        let refs = fanins.iter().map(|&f| FaninRef::Id(f)).collect();
        self.add_node(kind, name.into(), refs)
    }

    /// Adds a gate whose fanins are referenced by name and may not exist
    /// yet; names are resolved at [`Self::build`] time.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] or [`NetlistError::BadArity`].
    pub fn gate_by_name(
        &mut self,
        kind: GateKind,
        name: impl Into<String>,
        fanin_names: &[&str],
    ) -> Result<NodeId, NetlistError> {
        let refs = fanin_names
            .iter()
            .map(|f| FaninRef::Name((*f).to_string()))
            .collect();
        self.add_node(kind, name.into(), refs)
    }

    /// Marks a node as a primary output. A node may be marked several times;
    /// each call adds a new output slot. Returns the slot index.
    pub fn output(&mut self, node: NodeId) -> usize {
        let slot = self.outputs.len();
        self.outputs.push(node);
        self.output_names.push(String::new());
        slot
    }

    /// Marks a node as a primary output by name, deferring resolution to
    /// [`Self::build`]. Returns the slot index.
    pub fn output_by_name(&mut self, name: impl Into<String>) -> usize {
        let slot = self.outputs.len();
        // Placeholder id; patched during build.
        self.outputs.push(NodeId::new(0));
        self.output_names.push(name.into());
        slot
    }

    /// Convenience: adds an AND gate.
    ///
    /// # Errors
    ///
    /// Same as [`Self::gate`].
    pub fn and(
        &mut self,
        name: impl Into<String>,
        fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        self.gate(GateKind::And, name, fanins)
    }

    /// Convenience: adds an OR gate.
    ///
    /// # Errors
    ///
    /// Same as [`Self::gate`].
    pub fn or(
        &mut self,
        name: impl Into<String>,
        fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        self.gate(GateKind::Or, name, fanins)
    }

    /// Convenience: adds a NAND gate.
    ///
    /// # Errors
    ///
    /// Same as [`Self::gate`].
    pub fn nand(
        &mut self,
        name: impl Into<String>,
        fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        self.gate(GateKind::Nand, name, fanins)
    }

    /// Convenience: adds a NOR gate.
    ///
    /// # Errors
    ///
    /// Same as [`Self::gate`].
    pub fn nor(
        &mut self,
        name: impl Into<String>,
        fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        self.gate(GateKind::Nor, name, fanins)
    }

    /// Convenience: adds an XOR gate.
    ///
    /// # Errors
    ///
    /// Same as [`Self::gate`].
    pub fn xor(
        &mut self,
        name: impl Into<String>,
        fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        self.gate(GateKind::Xor, name, fanins)
    }

    /// Convenience: adds an inverter.
    ///
    /// # Errors
    ///
    /// Same as [`Self::gate`].
    pub fn not(&mut self, name: impl Into<String>, fanin: NodeId) -> Result<NodeId, NetlistError> {
        self.gate(GateKind::Not, name, &[fanin])
    }

    /// Convenience: adds a buffer.
    ///
    /// # Errors
    ///
    /// Same as [`Self::gate`].
    pub fn buf(&mut self, name: impl Into<String>, fanin: NodeId) -> Result<NodeId, NetlistError> {
        self.gate(GateKind::Buf, name, &[fanin])
    }

    /// Returns a name of the form `"{prefix}{k}"` guaranteed not to collide
    /// with any name added so far.
    pub fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let candidate = format!("{prefix}{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.name_index.contains_key(&candidate) {
                return candidate;
            }
        }
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnknownNode`] for unresolved by-name references,
    /// * [`NetlistError::Cycle`] if the gate graph is cyclic,
    /// * [`NetlistError::NoOutputs`] if no output was declared.
    pub fn build(self) -> Result<Netlist, NetlistError> {
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }

        // Resolve by-name references.
        let mut nodes: Vec<Node> = Vec::with_capacity(self.nodes.len());
        for pending in &self.nodes {
            let mut fanins = Vec::with_capacity(pending.fanins.len());
            for r in &pending.fanins {
                let id = match r {
                    FaninRef::Id(id) => *id,
                    FaninRef::Name(name) => *self
                        .name_index
                        .get(name)
                        .ok_or_else(|| NetlistError::UnknownNode(name.clone()))?,
                };
                fanins.push(id);
            }
            nodes.push(Node::new(pending.kind, fanins));
        }
        let mut outputs = self.outputs;
        for (slot, name) in self.output_names.iter().enumerate() {
            if !name.is_empty() {
                outputs[slot] = *self
                    .name_index
                    .get(name)
                    .ok_or_else(|| NetlistError::UnknownNode(name.clone()))?;
            }
        }

        // Deterministic Kahn topological sort (smallest ready id first);
        // also the cycle check.
        let n = nodes.len();
        let mut indegree = vec![0usize; n];
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (gi, node) in nodes.iter().enumerate() {
            indegree[gi] = node.fanins().len();
            for f in node.fanins() {
                consumers[f.index()].push(NodeId::new(gi));
            }
        }
        let mut ready: BinaryHeap<Reverse<NodeId>> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(|i| Reverse(NodeId::new(i)))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(Reverse(id)) = ready.pop() {
            topo.push(id);
            for &c in &consumers[id.index()] {
                indegree[c.index()] -= 1;
                if indegree[c.index()] == 0 {
                    ready.push(Reverse(c));
                }
            }
        }
        if topo.len() != n {
            let via = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.names[i].clone())
                .unwrap_or_default();
            return Err(NetlistError::Cycle { via });
        }

        Ok(Netlist::from_parts(
            self.name,
            nodes,
            self.names,
            self.inputs,
            outputs,
            topo,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        assert_eq!(
            b.try_input("a"),
            Err(NetlistError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let err = b.gate(GateKind::Not, "g", &[a, a]).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
        let err = b.gate(GateKind::And, "h", &[]).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
    }

    #[test]
    fn unresolved_forward_reference_rejected() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.gate_by_name(GateKind::Buf, "g", &["missing"]).unwrap();
        b.output_by_name("g");
        assert_eq!(
            b.build().unwrap_err(),
            NetlistError::UnknownNode("missing".into())
        );
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = NetlistBuilder::new("t");
        // Define the consumer before its fanin exists.
        b.gate_by_name(GateKind::Not, "g", &["a"]).unwrap();
        b.input("a");
        b.output_by_name("g");
        let n = b.build().unwrap();
        assert_eq!(n.eval_bool(&[false]), vec![true]);
    }

    #[test]
    fn cycles_rejected() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.gate_by_name(GateKind::And, "x", &["a", "y"]).unwrap();
        b.gate_by_name(GateKind::And, "y", &["a", "x"]).unwrap();
        b.output_by_name("x");
        assert!(matches!(b.build(), Err(NetlistError::Cycle { .. })));
    }

    #[test]
    fn no_outputs_rejected() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        assert_eq!(b.build().unwrap_err(), NetlistError::NoOutputs);
    }

    #[test]
    fn fresh_names_do_not_collide() {
        let mut b = NetlistBuilder::new("t");
        b.input("tmp0");
        let n1 = b.fresh_name("tmp");
        assert_ne!(n1, "tmp0");
        let n2 = b.fresh_name("tmp");
        assert_ne!(n1, n2);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let g1 = b.and("g1", &[a, c]).unwrap();
        let g2 = b.not("g2", g1).unwrap();
        b.output(g2);
        let n = b.build().unwrap();
        let topo = n.topo_order();
        let pos = |id: crate::NodeId| topo.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(g1));
        assert!(pos(c) < pos(g1));
        assert!(pos(g1) < pos(g2));
    }

    #[test]
    fn multiple_output_slots_on_one_node() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.buf("g", a).unwrap();
        assert_eq!(b.output(g), 0);
        assert_eq!(b.output(g), 1);
        let n = b.build().unwrap();
        assert_eq!(n.num_outputs(), 2);
        assert_eq!(n.eval_bool(&[true]), vec![true, true]);
        // The buffer's stem now has two sinks, so it has branch lines.
        assert_eq!(n.lines().branches(g).len(), 2);
    }
}
