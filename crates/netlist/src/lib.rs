//! Gate-level combinational netlist representation for n-detection test set
//! analysis.
//!
//! This crate provides the structural substrate used by the rest of the
//! `ndetect` workspace:
//!
//! * [`Netlist`] — an immutable, validated, levelized gate-level circuit,
//!   built through [`NetlistBuilder`].
//! * An explicit **line** model ([`Line`], [`LineKind`]): fault sites are
//!   both gate-output *stems* and fanout *branches*, exactly as in the
//!   classical single stuck-at fault literature. Line numbering follows the
//!   convention of the paper's Figure 1 (primary-input stems first, then
//!   branches of primary-input stems, then gate stems in topological order,
//!   each followed by its own branches).
//! * ISCAS-89 style `.bench` parsing and writing ([`bench_format`]).
//! * Structural analysis: topological ordering, levelization, transitive
//!   fanout [`ReachabilityMatrix`] (used to exclude feedback bridging
//!   faults), fanin cones, and summary [`NetlistStats`].
//!
//! # Example
//!
//! Build a two-gate circuit and inspect its lines:
//!
//! ```
//! use ndetect_netlist::{GateKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), ndetect_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("demo");
//! let a = b.input("a");
//! let c = b.input("c");
//! let g = b.gate(GateKind::And, "g", &[a, c])?;
//! b.output(g);
//! let netlist = b.build()?;
//!
//! assert_eq!(netlist.num_inputs(), 2);
//! assert_eq!(netlist.num_outputs(), 1);
//! // Three stems (a, c, g); no stem fans out, so there are no branches.
//! assert_eq!(netlist.lines().len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod bench_format;
mod builder;
pub mod dot;
mod error;
mod gate;
mod id;
mod line;
mod netlist;
mod seq;
mod stats;

pub use analysis::{fanin_cone, fanout_cone, ReachabilityMatrix};
pub use builder::NetlistBuilder;
pub use error::NetlistError;
pub use gate::GateKind;
pub use id::{LineId, NodeId};
pub use line::{Line, LineKind, LineTable, Sink};
pub use netlist::{Netlist, Node};
pub use seq::SeqNetlist;
pub use stats::NetlistStats;
