//! Gate kinds and their Boolean semantics.

use std::fmt;

/// The logic function computed by a netlist node.
///
/// `And`/`Nand`/`Or`/`Nor` are n-ary (≥ 1 input; a single-input `And` acts
/// as a buffer, a single-input `Nand` as an inverter, and so on).
/// `Xor`/`Xnor` are n-ary parity functions. `Buf` and `Not` take exactly one
/// input; `Input`, `Const0` and `Const1` take none.
///
/// ```
/// use ndetect_netlist::GateKind;
/// assert_eq!(GateKind::And.eval_bool(&[true, true]), true);
/// assert_eq!(GateKind::Nor.eval_bool(&[false, false]), true);
/// assert_eq!(GateKind::Xor.eval_bool(&[true, true, true]), true);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum GateKind {
    /// A primary input; its value is supplied by the test vector.
    Input,
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// Identity buffer.
    Buf,
    /// Inverter.
    Not,
    /// n-ary AND.
    And,
    /// n-ary NAND.
    Nand,
    /// n-ary OR.
    Or,
    /// n-ary NOR.
    Nor,
    /// n-ary XOR (odd parity).
    Xor,
    /// n-ary XNOR (even parity).
    Xnor,
}

impl GateKind {
    /// Returns `true` for kinds that take no fanins (`Input`, `Const0`,
    /// `Const1`).
    #[must_use]
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Returns the valid fanin arity range `(min, max)` for this kind, where
    /// `max == usize::MAX` means unbounded.
    #[must_use]
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Buf | GateKind::Not => (1, 1),
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => (1, usize::MAX),
            GateKind::Xor | GateKind::Xnor => (1, usize::MAX),
        }
    }

    /// Returns `true` if the output function is the complement of the
    /// same-family positive gate (`Nand`, `Nor`, `Not`, `Xnor`).
    #[must_use]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        )
    }

    /// Evaluates the gate over Boolean operand values.
    ///
    /// For source kinds (`Input`) the result is meaningless and this
    /// returns `false`; simulators supply input values externally.
    /// `Const0`/`Const1` return their constants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the operand count violates [`Self::arity`].
    #[must_use]
    pub fn eval_bool(self, operands: &[bool]) -> bool {
        debug_assert!(
            {
                let (lo, hi) = self.arity();
                operands.len() >= lo && operands.len() <= hi
            },
            "operand count {} invalid for {:?}",
            operands.len(),
            self
        );
        match self {
            GateKind::Input | GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => operands[0],
            GateKind::Not => !operands[0],
            GateKind::And => operands.iter().all(|&v| v),
            GateKind::Nand => !operands.iter().all(|&v| v),
            GateKind::Or => operands.iter().any(|&v| v),
            GateKind::Nor => !operands.iter().any(|&v| v),
            GateKind::Xor => operands.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Xnor => !operands.iter().fold(false, |acc, &v| acc ^ v),
        }
    }

    /// The controlling input value of the gate, if it has one.
    ///
    /// A controlling value on any input determines the output regardless of
    /// the other inputs (0 for AND/NAND, 1 for OR/NOR). Parity gates and
    /// buffers have no controlling value.
    ///
    /// ```
    /// use ndetect_netlist::GateKind;
    /// assert_eq!(GateKind::And.controlling_value(), Some(false));
    /// assert_eq!(GateKind::Nor.controlling_value(), Some(true));
    /// assert_eq!(GateKind::Xor.controlling_value(), None);
    /// ```
    #[must_use]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// The canonical `.bench` keyword for this kind, e.g. `"NAND"`.
    #[must_use]
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Parses a `.bench` keyword (case-insensitive); returns `None` for
    /// unknown keywords. `BUFF` is accepted as an alias for `BUF`.
    #[must_use]
    pub fn from_bench_keyword(word: &str) -> Option<Self> {
        let upper = word.to_ascii_uppercase();
        Some(match upper.as_str() {
            "INPUT" => GateKind::Input,
            "CONST0" | "GND" => GateKind::Const0,
            "CONST1" | "VDD" => GateKind::Const1,
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            _ => return None,
        })
    }

    /// All gate kinds, in a fixed order (useful for iteration in tests and
    /// statistics).
    #[must_use]
    pub fn all() -> &'static [GateKind] {
        &[
            GateKind::Input,
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ]
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_input_truth_tables() {
        let cases: &[(GateKind, [bool; 4])] = &[
            // outputs for (00, 01, 10, 11)
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for &(kind, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = (i >> 1) & 1 == 1;
                let b = i & 1 == 1;
                assert_eq!(kind.eval_bool(&[a, b]), e, "{kind} on ({a},{b})");
            }
        }
    }

    #[test]
    fn unary_gates() {
        assert!(GateKind::Buf.eval_bool(&[true]));
        assert!(!GateKind::Buf.eval_bool(&[false]));
        assert!(!GateKind::Not.eval_bool(&[true]));
        assert!(GateKind::Not.eval_bool(&[false]));
    }

    #[test]
    fn nary_parity() {
        assert!(GateKind::Xor.eval_bool(&[true, true, true]));
        assert!(!GateKind::Xor.eval_bool(&[true, true]));
        assert!(!GateKind::Xnor.eval_bool(&[true, false, false]));
        assert!(GateKind::Xnor.eval_bool(&[true, true, false, false]));
    }

    #[test]
    fn single_input_nary_gates_degenerate() {
        assert!(GateKind::And.eval_bool(&[true]));
        assert!(!GateKind::Nand.eval_bool(&[true]));
        assert!(!GateKind::Or.eval_bool(&[false]));
        assert!(GateKind::Nor.eval_bool(&[false]));
    }

    #[test]
    fn bench_keyword_round_trip() {
        for &kind in GateKind::all() {
            let kw = kind.bench_keyword();
            assert_eq!(GateKind::from_bench_keyword(kw), Some(kind));
            assert_eq!(GateKind::from_bench_keyword(&kw.to_lowercase()), Some(kind));
        }
        assert_eq!(GateKind::from_bench_keyword("BUFF"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_bench_keyword("DFF"), None);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Buf.controlling_value(), None);
        assert_eq!(GateKind::Xnor.controlling_value(), None);
    }

    #[test]
    fn constants() {
        assert!(!GateKind::Const0.eval_bool(&[]));
        assert!(GateKind::Const1.eval_bool(&[]));
    }
}
