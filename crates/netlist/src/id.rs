//! Typed identifiers for netlist entities.

use std::fmt;

/// Identifier of a node (primary input or gate) within a [`crate::Netlist`].
///
/// Node ids are dense indices assigned in creation order by
/// [`crate::NetlistBuilder`]; they index directly into the netlist's node
/// table.
///
/// ```
/// use ndetect_netlist::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }

    /// Returns the dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a fault-site line (a stem or a fanout branch).
///
/// Line ids are dense indices into [`crate::Netlist::lines`]. The numbering
/// convention is documented on [`crate::Netlist::lines`]; it reproduces the
/// line numbering of the paper's Figure 1 example.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LineId(u32);

impl LineId {
    /// Creates a line id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        LineId(u32::try_from(index).expect("line index overflows u32"))
    }

    /// Returns the dense index of this line.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_round_trip() {
        for i in [0usize, 1, 17, 65535] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn line_id_round_trip() {
        for i in [0usize, 1, 17, 65535] {
            assert_eq!(LineId::new(i).index(), i);
        }
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        set.insert(NodeId::new(1));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(LineId::new(0) < LineId::new(10));
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
        assert_eq!(LineId::new(7).to_string(), "l7");
    }
}
