//! Error type for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating, or parsing a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A node name was used twice.
    DuplicateName(String),
    /// A gate referenced a node id that does not exist.
    UnknownNode(String),
    /// A gate was given a fanin count outside its kind's arity range.
    BadArity {
        /// The offending gate's name.
        gate: String,
        /// The gate kind.
        kind: String,
        /// The number of fanins supplied.
        got: usize,
    },
    /// The netlist contains a combinational cycle.
    Cycle {
        /// Name of a node on the cycle.
        via: String,
    },
    /// The netlist has no primary outputs.
    NoOutputs,
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number in the source text.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The `.bench` source used a sequential element (e.g. `DFF`), which is
    /// not supported by this combinational-only representation.
    Sequential {
        /// 1-based line number in the source text.
        line: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(name) => {
                write!(f, "duplicate node name `{name}`")
            }
            NetlistError::UnknownNode(name) => {
                write!(f, "reference to unknown node `{name}`")
            }
            NetlistError::BadArity { gate, kind, got } => {
                write!(f, "gate `{gate}` of kind {kind} given {got} fanins")
            }
            NetlistError::Cycle { via } => {
                write!(f, "combinational cycle through node `{via}`")
            }
            NetlistError::NoOutputs => write!(f, "netlist has no primary outputs"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::Sequential { line } => {
                write!(
                    f,
                    "sequential element at line {line}: this command analyses combinational \
                     circuits; rerun with --seq to unroll the flip-flop boundary via two-frame \
                     time-frame expansion"
                )
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = NetlistError::DuplicateName("x".into());
        assert_eq!(e.to_string(), "duplicate node name `x`");
        let e = NetlistError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
