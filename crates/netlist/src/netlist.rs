//! The immutable, validated [`Netlist`] type.

use crate::gate::GateKind;
use crate::id::{LineId, NodeId};
use crate::line::{Line, LineKind, LineTable, Sink};
use std::collections::HashMap;
use std::fmt;

/// A single node of a netlist: a primary input or a gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    kind: GateKind,
    fanins: Vec<NodeId>,
}

impl Node {
    pub(crate) fn new(kind: GateKind, fanins: Vec<NodeId>) -> Self {
        Node { kind, fanins }
    }

    /// The logic function of this node.
    #[must_use]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Fanin node ids, in pin order.
    #[must_use]
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }
}

/// An immutable, validated, levelized combinational netlist.
///
/// Construct via [`crate::NetlistBuilder`] or [`crate::bench_format::parse`].
/// All derived structure (topological order, levels, fanout sinks, and the
/// fault-site [`LineTable`]) is computed once at build time.
///
/// # Line numbering
///
/// [`Netlist::lines`] enumerates fault sites in the order used by the
/// paper's Figure 1 example:
///
/// 1. primary-input stems, in input order;
/// 2. branches of primary-input stems (only for stems with fanout ≥ 2),
///    grouped per input, in sink order;
/// 3. for each non-input node in topological order: its output stem,
///    followed by its branches (if fanout ≥ 2) in sink order.
///
/// Sink order is: gate pins in consuming-gate creation order (then pin
/// order), followed by primary-output slots in output order.
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    names: Vec<String>,
    name_index: HashMap<String, NodeId>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    topo: Vec<NodeId>,
    levels: Vec<u32>,
    sinks: Vec<Vec<Sink>>,
    lines: LineTable,
}

impl Netlist {
    /// Assembles a netlist from validated parts. Only called by the builder,
    /// which has already checked names, arities, and acyclicity.
    pub(crate) fn from_parts(
        name: String,
        nodes: Vec<Node>,
        names: Vec<String>,
        inputs: Vec<NodeId>,
        outputs: Vec<NodeId>,
        topo: Vec<NodeId>,
    ) -> Self {
        let name_index: HashMap<String, NodeId> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), NodeId::new(i)))
            .collect();

        // Levelization: inputs and constants at level 0, gates one past
        // their deepest fanin.
        let mut levels = vec![0u32; nodes.len()];
        for &id in &topo {
            let node = &nodes[id.index()];
            levels[id.index()] = node
                .fanins()
                .iter()
                .map(|f| levels[f.index()] + 1)
                .max()
                .unwrap_or(0);
        }

        // Fanout sinks, in deterministic order: gate pins by consuming-gate
        // creation order then pin order, followed by output slots.
        let mut sinks: Vec<Vec<Sink>> = vec![Vec::new(); nodes.len()];
        for (gi, node) in nodes.iter().enumerate() {
            for (pin, fanin) in node.fanins().iter().enumerate() {
                sinks[fanin.index()].push(Sink::GatePin {
                    gate: NodeId::new(gi),
                    pin,
                });
            }
        }
        for (slot, out) in outputs.iter().enumerate() {
            sinks[out.index()].push(Sink::OutputSlot { slot });
        }

        let lines = Self::build_lines(&nodes, &names, &inputs, &topo, &sinks);

        Netlist {
            name,
            nodes,
            names,
            name_index,
            inputs,
            outputs,
            topo,
            levels,
            sinks,
            lines,
        }
    }

    fn build_lines(
        nodes: &[Node],
        names: &[String],
        inputs: &[NodeId],
        topo: &[NodeId],
        sinks: &[Vec<Sink>],
    ) -> LineTable {
        let mut lines: Vec<Line> = Vec::new();
        let mut stem_of_node = vec![LineId::new(0); nodes.len()];
        let mut branches_of_node: Vec<Vec<LineId>> = vec![Vec::new(); nodes.len()];

        let push_stem = |lines: &mut Vec<Line>, stems: &mut Vec<LineId>, node: NodeId| {
            let id = LineId::new(lines.len());
            stems[node.index()] = id;
            lines.push(Line::new(
                id,
                LineKind::Stem { node },
                names[node.index()].clone(),
            ));
        };
        let push_branches =
            |lines: &mut Vec<Line>, branches: &mut Vec<Vec<LineId>>, node: NodeId| {
                let node_sinks = &sinks[node.index()];
                if node_sinks.len() < 2 {
                    return;
                }
                for &sink in node_sinks {
                    let id = LineId::new(lines.len());
                    let sink_desc = match sink {
                        Sink::GatePin { gate, pin } => {
                            format!("{}.{}", names[gate.index()], pin)
                        }
                        Sink::OutputSlot { slot } => format!("po{slot}"),
                    };
                    let name = format!("{}->{}", names[node.index()], sink_desc);
                    branches[node.index()].push(id);
                    lines.push(Line::new(id, LineKind::Branch { node, sink }, name));
                }
            };

        // Phase 1: primary-input stems.
        for &pi in inputs {
            push_stem(&mut lines, &mut stem_of_node, pi);
        }
        // Phase 2: branches of primary-input stems.
        for &pi in inputs {
            push_branches(&mut lines, &mut branches_of_node, pi);
        }
        // Phase 3: non-input nodes in topological order, stem then branches.
        for &id in topo {
            if nodes[id.index()].kind() == GateKind::Input {
                continue;
            }
            push_stem(&mut lines, &mut stem_of_node, id);
            push_branches(&mut lines, &mut branches_of_node, id);
        }

        LineTable::new(lines, stem_of_node, branches_of_node)
    }

    /// The netlist's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The name of the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Looks a node up by name.
    #[must_use]
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Total number of nodes (inputs + gates).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of non-input nodes (gates and constants).
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.nodes.len() - self.inputs.len()
    }

    /// Primary input node ids, in input order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output node ids, in output order. A node may appear more than
    /// once if it is observed on several output slots.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All node ids, in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Nodes in a deterministic topological order (fanins always precede
    /// fanouts; ties broken by node id).
    #[must_use]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// The logic level of a node: 0 for inputs and constants, one past the
    /// deepest fanin otherwise.
    #[must_use]
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// The maximum logic level over all nodes (0 for an all-input netlist).
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// The sinks consuming a node's output, in the deterministic order
    /// documented on [`Netlist`].
    #[must_use]
    pub fn sinks(&self, id: NodeId) -> &[Sink] {
        &self.sinks[id.index()]
    }

    /// Fanout count of a node (gate pins plus output slots).
    #[must_use]
    pub fn fanout(&self, id: NodeId) -> usize {
        self.sinks[id.index()].len()
    }

    /// The fault-site line table. See the type-level documentation for the
    /// numbering convention.
    #[must_use]
    pub fn lines(&self) -> &LineTable {
        &self.lines
    }

    /// Stems of all gates with two or more fanins, in topological order.
    ///
    /// These are the candidate lines for four-way bridging faults ("outputs
    /// of multi-input gates" in the paper).
    #[must_use]
    pub fn multi_input_gate_stems(&self) -> Vec<LineId> {
        self.topo
            .iter()
            .filter(|id| self.nodes[id.index()].fanins().len() >= 2)
            .map(|&id| self.lines.stem(id))
            .collect()
    }

    /// Reference scalar evaluation of the fault-free circuit.
    ///
    /// Returns the primary output values for the given input assignment.
    /// This is the slow, obviously-correct evaluator used as an oracle by
    /// the bit-parallel simulator's tests.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len() != self.num_inputs()`.
    #[must_use]
    pub fn eval_bool(&self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.num_inputs(),
            "expected {} input values",
            self.num_inputs()
        );
        let values = self.eval_bool_all(input_values);
        self.outputs.iter().map(|out| values[out.index()]).collect()
    }

    /// Like [`Self::eval_bool`] but returns the value of every node, indexed
    /// by node id.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len() != self.num_inputs()`.
    #[must_use]
    pub fn eval_bool_all(&self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(input_values.len(), self.num_inputs());
        let mut values = vec![false; self.nodes.len()];
        for (pi, &v) in self.inputs.iter().zip(input_values) {
            values[pi.index()] = v;
        }
        let mut operands = Vec::new();
        for &id in &self.topo {
            let node = &self.nodes[id.index()];
            if node.kind() == GateKind::Input {
                continue;
            }
            operands.clear();
            operands.extend(node.fanins().iter().map(|f| values[f.index()]));
            values[id.index()] = node.kind().eval_bool(&operands);
        }
        values
    }

    /// A canonical byte serialization of the netlist's *structure*: node
    /// kinds and fanins in creation order, plus the input and output
    /// lists.
    ///
    /// Two netlists produce identical bytes iff they have identical node
    /// graphs in identical creation order — which fully determines the
    /// line table, the fault lists, and every detection set. Display
    /// names (node names, the netlist name) are deliberately excluded:
    /// renaming a circuit must not invalidate content-addressed caches
    /// keyed on these bytes.
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        // Stable one-byte tags per gate kind; appending new kinds is
        // fine, reordering existing ones is a cache-format break.
        fn kind_tag(kind: GateKind) -> u8 {
            match kind {
                GateKind::Input => 0,
                GateKind::Const0 => 1,
                GateKind::Const1 => 2,
                GateKind::Buf => 3,
                GateKind::Not => 4,
                GateKind::And => 5,
                GateKind::Nand => 6,
                GateKind::Or => 7,
                GateKind::Nor => 8,
                GateKind::Xor => 9,
                GateKind::Xnor => 10,
            }
        }
        let put = |out: &mut Vec<u8>, v: usize| out.extend_from_slice(&(v as u64).to_le_bytes());
        let mut out = Vec::new();
        out.extend_from_slice(b"ndnl1"); // canonical-netlist format tag
        put(&mut out, self.nodes.len());
        for node in &self.nodes {
            out.push(kind_tag(node.kind()));
            put(&mut out, node.fanins().len());
            for f in node.fanins() {
                put(&mut out, f.index());
            }
        }
        put(&mut out, self.inputs.len());
        for pi in &self.inputs {
            put(&mut out, pi.index());
        }
        put(&mut out, self.outputs.len());
        for po in &self.outputs {
            put(&mut out, po.index());
        }
        out
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, {} lines",
            self.name,
            self.num_inputs(),
            self.num_outputs(),
            self.num_gates(),
            self.lines.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::NetlistBuilder;
    use crate::gate::GateKind;
    use crate::line::LineKind;

    /// The paper's Figure 1 circuit: the canonical fixture for line
    /// numbering. Inputs 1..4; input 2 fans out to branches 5,6; input 3 to
    /// branches 7,8; gates 9=AND(1,5), 10=AND(6,7), 11=OR(8,4); outputs
    /// 9,10,11.
    fn figure1() -> crate::Netlist {
        let mut b = NetlistBuilder::new("figure1");
        let i1 = b.input("1");
        let i2 = b.input("2");
        let i3 = b.input("3");
        let i4 = b.input("4");
        let g9 = b.gate(GateKind::And, "9", &[i1, i2]).unwrap();
        let g10 = b.gate(GateKind::And, "10", &[i2, i3]).unwrap();
        let g11 = b.gate(GateKind::Or, "11", &[i3, i4]).unwrap();
        b.output(g9);
        b.output(g10);
        b.output(g11);
        b.build().unwrap()
    }

    #[test]
    fn figure1_line_numbering_matches_paper() {
        let n = figure1();
        let lines = n.lines();
        assert_eq!(lines.len(), 11);
        // Lines 0..=3 are PI stems named 1..4.
        for (i, expect) in ["1", "2", "3", "4"].iter().enumerate() {
            assert_eq!(lines.lines()[i].name(), *expect);
            assert!(lines.lines()[i].kind().is_stem());
        }
        // Lines 4,5 are branches of input 2; lines 6,7 branches of input 3.
        for i in 4..8 {
            assert!(matches!(lines.lines()[i].kind(), LineKind::Branch { .. }));
        }
        let i2 = n.node_by_name("2").unwrap();
        let i3 = n.node_by_name("3").unwrap();
        assert_eq!(
            lines
                .branches(i2)
                .iter()
                .map(|l| l.index())
                .collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(
            lines
                .branches(i3)
                .iter()
                .map(|l| l.index())
                .collect::<Vec<_>>(),
            vec![6, 7]
        );
        // Lines 8..=10 are gate stems 9,10,11.
        for (i, expect) in ["9", "10", "11"].iter().enumerate() {
            assert_eq!(lines.lines()[8 + i].name(), *expect);
        }
    }

    #[test]
    fn figure1_levels_and_counts() {
        let n = figure1();
        assert_eq!(n.num_inputs(), 4);
        assert_eq!(n.num_outputs(), 3);
        assert_eq!(n.num_gates(), 3);
        assert_eq!(n.max_level(), 1);
        let g9 = n.node_by_name("9").unwrap();
        assert_eq!(n.level(g9), 1);
        assert_eq!(n.fanout(g9), 1); // only its PO slot
        let i2 = n.node_by_name("2").unwrap();
        assert_eq!(n.fanout(i2), 2);
    }

    #[test]
    fn figure1_eval_matches_hand_computation() {
        let n = figure1();
        // Vector 6 = 0110: inputs (1,2,3,4) = (0,1,1,0).
        let outs = n.eval_bool(&[false, true, true, false]);
        // 9 = 0&1 = 0; 10 = 1&1 = 1; 11 = 1|0 = 1.
        assert_eq!(outs, vec![false, true, true]);
        // Vector 12 = 1100.
        let outs = n.eval_bool(&[true, true, false, false]);
        assert_eq!(outs, vec![true, false, false]);
    }

    #[test]
    fn multi_input_gate_stems_are_the_three_gates() {
        let n = figure1();
        let stems = n.multi_input_gate_stems();
        let names: Vec<&str> = stems.iter().map(|&l| n.lines().line(l).name()).collect();
        assert_eq!(names, vec!["9", "10", "11"]);
    }

    #[test]
    fn eval_all_exposes_internal_nodes() {
        let n = figure1();
        let all = n.eval_bool_all(&[true, true, true, true]);
        let g9 = n.node_by_name("9").unwrap();
        assert!(all[g9.index()]);
    }

    #[test]
    fn canonical_bytes_ignore_names_but_see_structure() {
        let n = figure1();
        // Same structure, different names -> identical bytes.
        let mut b = NetlistBuilder::new("renamed");
        let i1 = b.input("a");
        let i2 = b.input("b");
        let i3 = b.input("c");
        let i4 = b.input("d");
        let g9 = b.gate(GateKind::And, "x", &[i1, i2]).unwrap();
        let g10 = b.gate(GateKind::And, "y", &[i2, i3]).unwrap();
        let g11 = b.gate(GateKind::Or, "z", &[i3, i4]).unwrap();
        b.output(g9);
        b.output(g10);
        b.output(g11);
        let renamed = b.build().unwrap();
        assert_eq!(n.canonical_bytes(), renamed.canonical_bytes());

        // One gate kind changed -> different bytes.
        let mut b = NetlistBuilder::new("tweaked");
        let i1 = b.input("a");
        let i2 = b.input("b");
        let i3 = b.input("c");
        let i4 = b.input("d");
        let g9 = b.gate(GateKind::Nand, "x", &[i1, i2]).unwrap();
        let g10 = b.gate(GateKind::And, "y", &[i2, i3]).unwrap();
        let g11 = b.gate(GateKind::Or, "z", &[i3, i4]).unwrap();
        b.output(g9);
        b.output(g10);
        b.output(g11);
        let tweaked = b.build().unwrap();
        assert_ne!(n.canonical_bytes(), tweaked.canonical_bytes());

        // Different output order -> different bytes.
        let mut b = NetlistBuilder::new("reordered");
        let i1 = b.input("a");
        let i2 = b.input("b");
        let i3 = b.input("c");
        let i4 = b.input("d");
        let g9 = b.gate(GateKind::And, "x", &[i1, i2]).unwrap();
        let g10 = b.gate(GateKind::And, "y", &[i2, i3]).unwrap();
        let g11 = b.gate(GateKind::Or, "z", &[i3, i4]).unwrap();
        b.output(g11);
        b.output(g10);
        b.output(g9);
        let reordered = b.build().unwrap();
        assert_ne!(n.canonical_bytes(), reordered.canonical_bytes());
    }

    #[test]
    fn display_is_informative() {
        let n = figure1();
        let s = n.to_string();
        assert!(s.contains("figure1"));
        assert!(s.contains("4 inputs"));
    }
}
