//! Sequential netlists: a combinational core plus a flip-flop boundary.
//!
//! A [`SeqNetlist`] is the result of FF-boundary extraction on a sequential
//! `.bench` circuit: every flip-flop output becomes a pseudo primary input
//! of the combinational core, and every flip-flop data input becomes a
//! pseudo primary output. The core is an ordinary [`Netlist`], so all
//! combinational machinery (simulation, fault universes, line tables)
//! applies to it unchanged; the boundary bookkeeping kept here is what a
//! time-frame expansion needs to stitch frames together.
//!
//! Core I/O convention:
//!
//! * `core.inputs()` = true primary inputs, then FF outputs (`q`), in
//!   declaration order;
//! * `core.outputs()` = true primary outputs, then FF next-state drivers
//!   (`d`), in declaration order.

use crate::error::NetlistError;
use crate::netlist::Netlist;
use crate::NodeId;
use std::fmt;

/// A sequential circuit represented as its extracted combinational core
/// plus the flip-flop boundary.
///
/// Construct one with [`crate::bench_format::parse_seq`] or
/// [`SeqNetlist::from_parts`].
#[derive(Clone, Debug)]
pub struct SeqNetlist {
    core: Netlist,
    num_true_inputs: usize,
    num_true_outputs: usize,
    ffs: Vec<String>,
}

impl SeqNetlist {
    /// Assembles a sequential netlist from an already-extracted core.
    ///
    /// The core must follow the I/O convention documented on the type:
    /// its inputs are the true PIs followed by one pseudo-PI per entry of
    /// `ffs`, and its outputs are the true POs followed by one next-state
    /// pseudo-PO per entry of `ffs`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Parse`] (line 0) when the core's I/O counts
    /// do not match `num_true_inputs`/`num_true_outputs` plus the FF count.
    pub fn from_parts(
        core: Netlist,
        num_true_inputs: usize,
        num_true_outputs: usize,
        ffs: Vec<String>,
    ) -> Result<Self, NetlistError> {
        if core.num_inputs() != num_true_inputs + ffs.len()
            || core.num_outputs() != num_true_outputs + ffs.len()
        {
            return Err(NetlistError::Parse {
                line: 0,
                message: format!(
                    "core I/O ({} in, {} out) inconsistent with {} true inputs, {} true \
                     outputs, {} flip-flops",
                    core.num_inputs(),
                    core.num_outputs(),
                    num_true_inputs,
                    num_true_outputs,
                    ffs.len()
                ),
            });
        }
        Ok(SeqNetlist {
            core,
            num_true_inputs,
            num_true_outputs,
            ffs,
        })
    }

    /// The circuit name (the core's name).
    #[must_use]
    pub fn name(&self) -> &str {
        self.core.name()
    }

    /// The extracted combinational core.
    #[must_use]
    pub fn core(&self) -> &Netlist {
        &self.core
    }

    /// Number of true (non-state) primary inputs.
    #[must_use]
    pub fn num_true_inputs(&self) -> usize {
        self.num_true_inputs
    }

    /// Number of true (non-state) primary outputs.
    #[must_use]
    pub fn num_true_outputs(&self) -> usize {
        self.num_true_outputs
    }

    /// Number of flip-flops (state bits).
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.ffs.len()
    }

    /// Flip-flop output (`q`) names, in declaration order.
    #[must_use]
    pub fn ff_names(&self) -> &[String] {
        &self.ffs
    }

    /// Core node ids of the true primary inputs.
    #[must_use]
    pub fn true_inputs(&self) -> &[NodeId] {
        &self.core.inputs()[..self.num_true_inputs]
    }

    /// Core node ids of the state pseudo-inputs (FF outputs), in FF order.
    #[must_use]
    pub fn state_inputs(&self) -> &[NodeId] {
        &self.core.inputs()[self.num_true_inputs..]
    }

    /// Core node ids of the true primary outputs.
    #[must_use]
    pub fn true_outputs(&self) -> &[NodeId] {
        &self.core.outputs()[..self.num_true_outputs]
    }

    /// Core node ids driving the FF data inputs (next state), in FF order.
    #[must_use]
    pub fn next_state_outputs(&self) -> &[NodeId] {
        &self.core.outputs()[self.num_true_outputs..]
    }

    /// Simulates one clock cycle: applies `pi` with the FFs holding
    /// `state`, and returns `(primary outputs, next state)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `pi` have the wrong length.
    #[must_use]
    pub fn step(&self, state: &[bool], pi: &[bool]) -> (Vec<bool>, Vec<bool>) {
        assert_eq!(pi.len(), self.num_true_inputs, "primary input width");
        assert_eq!(state.len(), self.ffs.len(), "state width");
        let mut vector = Vec::with_capacity(pi.len() + state.len());
        vector.extend_from_slice(pi);
        vector.extend_from_slice(state);
        let mut outs = self.core.eval_bool(&vector);
        let next = outs.split_off(self.num_true_outputs);
        (outs, next)
    }

    /// Structure-only canonical bytes for store keying: a format tag, the
    /// boundary split, and the core's canonical bytes. Names are excluded,
    /// exactly as for [`Netlist::canonical_bytes`].
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let core = self.core.canonical_bytes();
        let mut out = Vec::with_capacity(5 + 16 + core.len());
        out.extend_from_slice(b"ndsq1");
        out.extend_from_slice(&(self.num_true_inputs as u64).to_le_bytes());
        out.extend_from_slice(&(self.ffs.len() as u64).to_le_bytes());
        out.extend_from_slice(&core);
        out
    }
}

impl fmt::Display for SeqNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} flip-flops, {} gates",
            self.name(),
            self.num_true_inputs,
            self.num_true_outputs,
            self.ffs.len(),
            self.core.num_gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    /// A 1-bit toggler: q' = q XOR en, out = q.
    fn toggler() -> SeqNetlist {
        let mut b = NetlistBuilder::new("tog");
        let en = b.input("en");
        let q = b.input("q");
        let out = b.buf("out", q).unwrap();
        let nxt = b.xor("nxt", &[q, en]).unwrap();
        b.output(out);
        b.output(nxt);
        SeqNetlist::from_parts(b.build().unwrap(), 1, 1, vec!["q".into()]).unwrap()
    }

    #[test]
    fn step_applies_ff_semantics() {
        let seq = toggler();
        let (po, s1) = seq.step(&[false], &[true]);
        assert_eq!(po, vec![false]);
        assert_eq!(s1, vec![true]);
        let (po, s2) = seq.step(&s1, &[true]);
        assert_eq!(po, vec![true]);
        assert_eq!(s2, vec![false]);
        // Disabled: state holds.
        let (_, s3) = seq.step(&s1, &[false]);
        assert_eq!(s3, s1);
    }

    #[test]
    fn boundary_accessors_split_io() {
        let seq = toggler();
        assert_eq!(seq.true_inputs().len(), 1);
        assert_eq!(seq.state_inputs().len(), 1);
        assert_eq!(seq.true_outputs().len(), 1);
        assert_eq!(seq.next_state_outputs().len(), 1);
        assert_eq!(seq.num_ffs(), 1);
        assert_eq!(seq.ff_names(), &["q".to_string()]);
    }

    #[test]
    fn from_parts_rejects_inconsistent_counts() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let g = b.not("g", a).unwrap();
        b.output(g);
        let core = b.build().unwrap();
        let err = SeqNetlist::from_parts(core, 1, 1, vec!["q".into()]).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn canonical_bytes_tagged_and_stable() {
        let a = toggler().canonical_bytes();
        let b = toggler().canonical_bytes();
        assert_eq!(a, b);
        assert_eq!(&a[..5], b"ndsq1");
        // Different boundary split over the same core differs.
        let mut nb = NetlistBuilder::new("tog");
        let en = nb.input("en");
        let q = nb.input("q");
        let out = nb.buf("out", q).unwrap();
        let nxt = nb.xor("nxt", &[q, en]).unwrap();
        nb.output(out);
        nb.output(nxt);
        let comb = nb.build().unwrap();
        let no_ffs = SeqNetlist::from_parts(comb, 2, 2, Vec::new()).unwrap();
        assert_ne!(a, no_ffs.canonical_bytes());
    }

    #[test]
    fn display_summarises_boundary() {
        let s = toggler().to_string();
        assert!(s.contains("1 flip-flops"), "{s}");
    }
}
