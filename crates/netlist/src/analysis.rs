//! Structural analysis: reachability, cones.

use crate::id::NodeId;
use crate::netlist::Netlist;

/// Transitive-fanout reachability over a netlist's node graph.
///
/// `reaches(a, b)` answers "is there a directed path of gate connections
/// from `a`'s output to `b`?" — the query needed to classify a bridging
/// fault between two stems as *feedback* (a path exists in either
/// direction) or *non-feedback*.
///
/// The matrix is computed once in reverse topological order using one
/// bitset row per node; memory is `O(n²/64)`, which is trivial at the
/// circuit sizes exhaustive analysis permits.
///
/// ```
/// use ndetect_netlist::{GateKind, NetlistBuilder, ReachabilityMatrix};
/// # fn main() -> Result<(), ndetect_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("chain");
/// let a = b.input("a");
/// let g1 = b.not("g1", a)?;
/// let g2 = b.not("g2", g1)?;
/// b.output(g2);
/// let n = b.build()?;
/// let reach = ReachabilityMatrix::compute(&n);
/// assert!(reach.reaches(a, g2));
/// assert!(!reach.reaches(g2, a));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReachabilityMatrix {
    words_per_row: usize,
    rows: Vec<u64>,
    num_nodes: usize,
}

impl ReachabilityMatrix {
    /// Computes the full transitive-fanout matrix for a netlist.
    #[must_use]
    pub fn compute(netlist: &Netlist) -> Self {
        let n = netlist.num_nodes();
        let words_per_row = n.div_ceil(64);
        let mut rows = vec![0u64; n * words_per_row];

        // In reverse topological order, a node reaches the union of what its
        // direct consumers reach, plus the consumers themselves.
        for &id in netlist.topo_order().iter().rev() {
            let i = id.index();
            for sink in netlist.sinks(id) {
                if let crate::line::Sink::GatePin { gate, .. } = *sink {
                    let g = gate.index();
                    // self |= row(g); set bit g.
                    let (lo, hi) = if i < g { (i, g) } else { (g, i) };
                    let (first, rest) = rows.split_at_mut(hi * words_per_row);
                    let (dst, src) = if i < g {
                        (
                            &mut first[lo * words_per_row..lo * words_per_row + words_per_row],
                            &rest[..words_per_row],
                        )
                    } else {
                        (
                            &mut rest[..words_per_row],
                            &first[lo * words_per_row..lo * words_per_row + words_per_row],
                        )
                    };
                    for (d, s) in dst.iter_mut().zip(src.iter()) {
                        *d |= *s;
                    }
                    rows[i * words_per_row + g / 64] |= 1u64 << (g % 64);
                }
            }
        }

        ReachabilityMatrix {
            words_per_row,
            rows,
            num_nodes: n,
        }
    }

    /// Returns `true` if there is a directed path from `from`'s output to
    /// node `to` (strict: a node does not reach itself unless through a
    /// cycle, which validated netlists cannot contain).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        assert!(from.index() < self.num_nodes && to.index() < self.num_nodes);
        let w = self.rows[from.index() * self.words_per_row + to.index() / 64];
        (w >> (to.index() % 64)) & 1 == 1
    }

    /// Returns `true` if a path exists in either direction between the two
    /// nodes — the *feedback* condition for a bridging fault between their
    /// stems.
    #[must_use]
    pub fn connected_either_direction(&self, a: NodeId, b: NodeId) -> bool {
        self.reaches(a, b) || self.reaches(b, a)
    }
}

/// Returns the transitive fanin cone of `root` (including `root` itself),
/// as node ids in ascending order.
///
/// ```
/// use ndetect_netlist::{fanin_cone, GateKind, NetlistBuilder};
/// # fn main() -> Result<(), ndetect_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let c = b.input("c");
/// let g = b.and("g", &[a, c])?;
/// let h = b.not("h", a)?;
/// b.output(g);
/// b.output(h);
/// let n = b.build()?;
/// assert_eq!(fanin_cone(&n, g).len(), 3); // a, c, g
/// assert_eq!(fanin_cone(&n, h).len(), 2); // a, h
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn fanin_cone(netlist: &Netlist, root: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; netlist.num_nodes()];
    let mut stack = vec![root];
    seen[root.index()] = true;
    while let Some(id) = stack.pop() {
        for &f in netlist.node(id).fanins() {
            if !seen[f.index()] {
                seen[f.index()] = true;
                stack.push(f);
            }
        }
    }
    (0..netlist.num_nodes())
        .filter(|&i| seen[i])
        .map(NodeId::new)
        .collect()
}

/// Returns the transitive fanout cone of `root` (including `root` itself),
/// as node ids in ascending order.
#[must_use]
pub fn fanout_cone(netlist: &Netlist, root: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; netlist.num_nodes()];
    let mut stack = vec![root];
    seen[root.index()] = true;
    while let Some(id) = stack.pop() {
        for sink in netlist.sinks(id) {
            if let crate::line::Sink::GatePin { gate, .. } = *sink {
                if !seen[gate.index()] {
                    seen[gate.index()] = true;
                    stack.push(gate);
                }
            }
        }
    }
    (0..netlist.num_nodes())
        .filter(|&i| seen[i])
        .map(NodeId::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn diamond() -> (Netlist, [NodeId; 5]) {
        // a -> g1 -> g3, a -> g2 -> g3; b unused by g3's cone.
        let mut b = NetlistBuilder::new("diamond");
        let a = b.input("a");
        let x = b.input("x");
        let g1 = b.not("g1", a).unwrap();
        let g2 = b.buf("g2", a).unwrap();
        let g3 = b.and("g3", &[g1, g2]).unwrap();
        let g4 = b.not("g4", x).unwrap();
        b.output(g3);
        b.output(g4);
        (b.build().unwrap(), [a, x, g1, g2, g3])
    }

    #[test]
    fn reachability_diamond() {
        let (n, [a, x, g1, g2, g3]) = diamond();
        let r = ReachabilityMatrix::compute(&n);
        assert!(r.reaches(a, g1));
        assert!(r.reaches(a, g2));
        assert!(r.reaches(a, g3));
        assert!(r.reaches(g1, g3));
        assert!(!r.reaches(g3, a));
        assert!(!r.reaches(g1, g2));
        assert!(!r.reaches(x, g3));
        assert!(!r.reaches(a, x));
        assert!(r.connected_either_direction(g3, a));
        assert!(!r.connected_either_direction(g1, g2));
    }

    #[test]
    fn nodes_do_not_reach_themselves() {
        let (n, [a, _, _, _, g3]) = diamond();
        let r = ReachabilityMatrix::compute(&n);
        assert!(!r.reaches(a, a));
        assert!(!r.reaches(g3, g3));
    }

    #[test]
    fn cones() {
        let (n, [a, x, g1, g2, g3]) = diamond();
        assert_eq!(fanin_cone(&n, g3), vec![a, g1, g2, g3]);
        let fo = fanout_cone(&n, a);
        assert_eq!(fo, vec![a, g1, g2, g3]);
        let fo_x = fanout_cone(&n, x);
        assert_eq!(fo_x.len(), 2);
    }

    #[test]
    fn reachability_on_wide_netlist_crosses_word_boundary() {
        // Chain of >64 buffers to exercise multi-word rows.
        let mut b = NetlistBuilder::new("chain");
        let mut prev = b.input("a");
        let first = prev;
        for i in 0..70 {
            prev = b.buf(format!("g{i}"), prev).unwrap();
        }
        b.output(prev);
        let n = b.build().unwrap();
        let r = ReachabilityMatrix::compute(&n);
        assert!(r.reaches(first, prev));
        assert!(!r.reaches(prev, first));
    }
}
