//! Graphviz DOT export for netlists.

use crate::gate::GateKind;
use crate::netlist::Netlist;
use std::fmt::Write as _;

/// Renders the netlist as a Graphviz digraph: inputs as diamonds,
/// gates as boxes labelled with their kind, primary outputs marked
/// with a double border.
///
/// ```
/// use ndetect_netlist::{NetlistBuilder, dot};
/// # fn main() -> Result<(), ndetect_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let g = b.not("g", a)?;
/// b.output(g);
/// let text = dot::write(&b.build()?);
/// assert!(text.starts_with("digraph"));
/// assert!(text.contains("NOT"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", netlist.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let is_output: Vec<bool> = {
        let mut v = vec![false; netlist.num_nodes()];
        for &po in netlist.outputs() {
            v[po.index()] = true;
        }
        v
    };
    for id in netlist.node_ids() {
        let node = netlist.node(id);
        let name = netlist.node_name(id);
        let (shape, label) = match node.kind() {
            GateKind::Input => ("diamond", name.to_string()),
            kind => ("box", format!("{name}\\n{kind}")),
        };
        let peripheries = if is_output[id.index()] { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  \"{name}\" [shape={shape}, peripheries={peripheries}, label=\"{label}\"];"
        );
    }
    for id in netlist.node_ids() {
        for &f in netlist.node(id).fanins() {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\";",
                netlist.node_name(f),
                netlist.node_name(id)
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn emits_nodes_edges_and_output_marks() {
        let mut b = NetlistBuilder::new("demo");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.and("g", &[a, c]).unwrap();
        b.output(g);
        let text = write(&b.build().unwrap());
        assert!(text.contains("digraph \"demo\""));
        assert!(text.contains("\"a\" -> \"g\""));
        assert!(text.contains("\"c\" -> \"g\""));
        assert!(text.contains("peripheries=2")); // output marked
        assert!(text.contains("shape=diamond")); // inputs
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn every_node_and_edge_appears() {
        let mut b = NetlistBuilder::new("full");
        let a = b.input("a");
        let g1 = b.not("g1", a).unwrap();
        let g2 = b.xor("g2", &[a, g1]).unwrap();
        b.output(g2);
        let n = b.build().unwrap();
        let text = write(&n);
        for id in n.node_ids() {
            assert!(text.contains(&format!("\"{}\"", n.node_name(id))));
        }
        let edge_count = text.matches(" -> ").count();
        let expect: usize = n.node_ids().map(|id| n.node(id).fanins().len()).sum();
        assert_eq!(edge_count, expect);
    }
}
