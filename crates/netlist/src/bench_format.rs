//! ISCAS-89 style `.bench` netlist parsing and writing.
//!
//! The grammar handled here is the common combinational subset:
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(y)
//! y = NAND(a, b)
//! z = NOT(y)
//! ```
//!
//! Gate definitions may appear in any order (forward references are
//! resolved at build time). Sequential primitives (`DFF`) are rejected by
//! [`parse`] with [`NetlistError::Sequential`]; use [`parse_seq`] to accept
//! them — it extracts the flip-flop boundary (FF outputs become pseudo
//! primary inputs, FF data nets pseudo primary outputs) and returns a
//! [`SeqNetlist`] whose core is an ordinary combinational [`Netlist`].

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::netlist::Netlist;
use crate::seq::SeqNetlist;
use std::fmt::Write as _;

/// One classified `.bench` source line (comments and blanks removed).
enum ScanLine<'a> {
    Input(&'a str),
    Output(&'a str),
    Gate {
        target: &'a str,
        keyword: &'a str,
        args: Vec<&'a str>,
    },
}

/// Strips comments, trims, and classifies one raw source line. Returns
/// `None` for blank/comment-only lines. Identifiers are validated here.
fn scan_line(raw: &str, lineno: usize) -> Result<Option<ScanLine<'_>>, NetlistError> {
    let line = match raw.find('#') {
        Some(pos) => &raw[..pos],
        None => raw,
    }
    .trim();
    if line.is_empty() {
        return Ok(None);
    }
    if let Some(rest) = strip_directive(line, "INPUT") {
        let pin = rest.trim();
        validate_identifier(pin, lineno)?;
        return Ok(Some(ScanLine::Input(pin)));
    }
    if let Some(rest) = strip_directive(line, "OUTPUT") {
        let pin = rest.trim();
        validate_identifier(pin, lineno)?;
        return Ok(Some(ScanLine::Output(pin)));
    }
    if let Some(eq) = line.find('=') {
        let target = line[..eq].trim();
        validate_identifier(target, lineno)?;
        let rhs = line[eq + 1..].trim();
        let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
            line: lineno,
            message: format!("expected `kind(args)` after `=`, got `{rhs}`"),
        })?;
        if !rhs.ends_with(')') {
            return Err(NetlistError::Parse {
                line: lineno,
                message: "missing closing parenthesis".into(),
            });
        }
        let keyword = rhs[..open].trim();
        let args_str = rhs[open + 1..rhs.len() - 1].trim();
        let args: Vec<&str> = if args_str.is_empty() {
            Vec::new()
        } else {
            args_str.split(',').map(str::trim).collect()
        };
        for a in &args {
            validate_identifier(a, lineno)?;
        }
        return Ok(Some(ScanLine::Gate {
            target,
            keyword,
            args,
        }));
    }
    Err(NetlistError::Parse {
        line: lineno,
        message: format!("unrecognized line `{line}`"),
    })
}

/// Resolves a non-FF gate keyword, rejecting `INPUT` on a right-hand side.
fn combinational_kind(keyword: &str, lineno: usize) -> Result<GateKind, NetlistError> {
    let kind = GateKind::from_bench_keyword(keyword).ok_or_else(|| NetlistError::Parse {
        line: lineno,
        message: format!("unknown gate kind `{keyword}`"),
    })?;
    if kind == GateKind::Input {
        return Err(NetlistError::Parse {
            line: lineno,
            message: "INPUT cannot appear on the right-hand side".into(),
        });
    }
    Ok(kind)
}

fn is_ff_keyword(keyword: &str) -> bool {
    keyword.eq_ignore_ascii_case("DFF") || keyword.eq_ignore_ascii_case("DFFSR")
}

/// Parses `.bench` source text into a validated [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::Sequential`] for `DFF` elements, plus any builder
/// validation error (duplicate names, unknown references, bad arity,
/// cycles, no outputs).
///
/// # Example
///
/// ```
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = NAND(a, b)
/// ";
/// let netlist = ndetect_netlist::bench_format::parse("frag", src)?;
/// assert_eq!(netlist.num_gates(), 1);
/// # Ok::<(), ndetect_netlist::NetlistError>(())
/// ```
pub fn parse(name: &str, source: &str) -> Result<Netlist, NetlistError> {
    let mut builder = NetlistBuilder::new(name);
    let mut output_names: Vec<String> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        match scan_line(raw, lineno)? {
            None => {}
            Some(ScanLine::Input(pin)) => {
                builder.try_input(pin).map_err(|e| parse_ctx(e, lineno))?;
            }
            Some(ScanLine::Output(pin)) => output_names.push(pin.to_string()),
            Some(ScanLine::Gate {
                target,
                keyword,
                args,
            }) => {
                if is_ff_keyword(keyword) {
                    return Err(NetlistError::Sequential { line: lineno });
                }
                let kind = combinational_kind(keyword, lineno)?;
                builder
                    .gate_by_name(kind, target, &args)
                    .map_err(|e| parse_ctx(e, lineno))?;
            }
        }
    }

    for out in output_names {
        builder.output_by_name(out);
    }
    builder.build()
}

/// Parses `.bench` source that may contain `DFF`/`DFFSR` flip-flops into a
/// [`SeqNetlist`]: the FF boundary is extracted so that every FF output is
/// a pseudo primary input of the combinational core and every FF data net
/// a pseudo primary output.
///
/// `q = DFF(d)` declares flip-flop `q` with data net `d`. `q = DFFSR(d, s,
/// r)` additionally has set/reset nets and is lowered at parse time to the
/// set-dominant next-state function `s OR (d AND NOT r)` using synthesized
/// gates `{q}.nr`, `{q}.dr`, `{q}.nxt`. True primary inputs precede FF
/// pseudo-inputs in the core regardless of declaration order in the file;
/// FFs keep their own declaration order.
///
/// Purely combinational sources parse fine (zero flip-flops).
///
/// # Errors
///
/// Same classes as [`parse`]: [`NetlistError::Parse`] for malformed lines
/// or wrong FF arity, plus builder validation errors.
///
/// # Example
///
/// ```
/// let src = "
/// INPUT(en)
/// OUTPUT(y)
/// q = DFF(nq)
/// nq = XOR(q, en)
/// y = BUF(q)
/// ";
/// let seq = ndetect_netlist::bench_format::parse_seq("tog", src)?;
/// assert_eq!(seq.num_ffs(), 1);
/// let (po, next) = seq.step(&[false], &[true]);
/// assert_eq!((po, next), (vec![false], vec![true]));
/// # Ok::<(), ndetect_netlist::NetlistError>(())
/// ```
pub fn parse_seq(name: &str, source: &str) -> Result<SeqNetlist, NetlistError> {
    struct FfDecl<'a> {
        q: &'a str,
        keyword: &'a str,
        args: Vec<&'a str>,
        lineno: usize,
    }

    // Pass 1: classify every line; register true PIs immediately (their
    // order among themselves is the file order) and collect FF
    // declarations so their pseudo-inputs can all be appended afterwards.
    let mut builder = NetlistBuilder::new(name);
    let mut output_names: Vec<&str> = Vec::new();
    let mut ffs: Vec<FfDecl<'_>> = Vec::new();
    let mut gates: Vec<(usize, &str, &str, Vec<&str>)> = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        match scan_line(raw, lineno)? {
            None => {}
            Some(ScanLine::Input(pin)) => {
                builder.try_input(pin).map_err(|e| parse_ctx(e, lineno))?;
            }
            Some(ScanLine::Output(pin)) => output_names.push(pin),
            Some(ScanLine::Gate {
                target,
                keyword,
                args,
            }) => {
                if is_ff_keyword(keyword) {
                    let want = if keyword.eq_ignore_ascii_case("DFF") {
                        1
                    } else {
                        3
                    };
                    if args.len() != want {
                        return Err(NetlistError::Parse {
                            line: lineno,
                            message: format!(
                                "{} takes {want} argument(s), got {}",
                                keyword.to_ascii_uppercase(),
                                args.len()
                            ),
                        });
                    }
                    ffs.push(FfDecl {
                        q: target,
                        keyword,
                        args,
                        lineno,
                    });
                } else {
                    gates.push((lineno, target, keyword, args));
                }
            }
        }
    }

    let num_true_inputs = builder.len();
    for ff in &ffs {
        builder
            .try_input(ff.q)
            .map_err(|e| parse_ctx(e, ff.lineno))?;
    }

    // Pass 2: ordinary gates, then the DFFSR next-state lowering.
    for (lineno, target, keyword, args) in gates {
        let kind = combinational_kind(keyword, lineno)?;
        builder
            .gate_by_name(kind, target, &args)
            .map_err(|e| parse_ctx(e, lineno))?;
    }
    let mut next_state_names: Vec<String> = Vec::with_capacity(ffs.len());
    for ff in &ffs {
        if ff.keyword.eq_ignore_ascii_case("DFF") {
            next_state_names.push(ff.args[0].to_string());
        } else {
            // Set-dominant DFFSR: q' = s OR (d AND NOT r).
            let (d, s, r) = (ff.args[0], ff.args[1], ff.args[2]);
            let nr = format!("{}.nr", ff.q);
            let dr = format!("{}.dr", ff.q);
            let nxt = format!("{}.nxt", ff.q);
            builder
                .gate_by_name(GateKind::Not, nr.as_str(), &[r])
                .and_then(|_| builder.gate_by_name(GateKind::And, dr.as_str(), &[d, &nr]))
                .and_then(|_| builder.gate_by_name(GateKind::Or, nxt.as_str(), &[s, &dr]))
                .map_err(|e| parse_ctx(e, ff.lineno))?;
            next_state_names.push(nxt);
        }
    }

    let num_true_outputs = output_names.len();
    for out in output_names {
        builder.output_by_name(out);
    }
    for nxt in &next_state_names {
        builder.output_by_name(nxt);
    }
    let core = builder.build()?;
    SeqNetlist::from_parts(
        core,
        num_true_inputs,
        num_true_outputs,
        ffs.iter().map(|ff| ff.q.to_string()).collect(),
    )
}

fn parse_ctx(err: NetlistError, line: usize) -> NetlistError {
    match err {
        NetlistError::Parse { .. } => err,
        other => NetlistError::Parse {
            line,
            message: other.to_string(),
        },
    }
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line
        .strip_prefix(keyword)
        .or_else(|| line.strip_prefix(&keyword.to_lowercase()))?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

fn validate_identifier(s: &str, line: usize) -> Result<(), NetlistError> {
    if s.is_empty()
        || !s
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '[' | ']' | '-'))
    {
        return Err(NetlistError::Parse {
            line,
            message: format!("invalid identifier `{s}`"),
        });
    }
    Ok(())
}

/// Serializes a netlist to `.bench` text.
///
/// The output round-trips through [`parse`] to an equivalent netlist
/// (same structure, names, and I/O ordering).
///
/// # Example
///
/// ```
/// # use ndetect_netlist::{NetlistBuilder, GateKind};
/// # fn main() -> Result<(), ndetect_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let g = b.not("g", a)?;
/// b.output(g);
/// let n = b.build()?;
/// let text = ndetect_netlist::bench_format::write(&n);
/// let back = ndetect_netlist::bench_format::parse("t", &text)?;
/// assert_eq!(back.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    for &pi in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.node_name(pi));
    }
    for &po in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.node_name(po));
    }
    for &id in netlist.topo_order() {
        let node = netlist.node(id);
        if node.kind() == GateKind::Input {
            continue;
        }
        let fanins: Vec<&str> = node
            .fanins()
            .iter()
            .map(|&f| netlist.node_name(f))
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            netlist.node_name(id),
            node.kind().bench_keyword(),
            fanins.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "
# c17 benchmark (ISCAS-85 translated to bench format)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let n = parse("c17", C17).unwrap();
        assert_eq!(n.num_inputs(), 5);
        assert_eq!(n.num_outputs(), 2);
        assert_eq!(n.num_gates(), 6);
        // Known vector: all ones -> both outputs computed by hand.
        // 10 = !(1&3)=0, 11 = !(3&6)=0, 16 = !(2&11)=1, 19 = !(11&7)=1,
        // 22 = !(10&16)=1, 23 = !(16&19)=0.
        let outs = n.eval_bool(&[true; 5]);
        assert_eq!(outs, vec![true, false]);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let n = parse("c17", C17).unwrap();
        let text = write(&n);
        let n2 = parse("c17", &text).unwrap();
        assert_eq!(n.num_inputs(), n2.num_inputs());
        assert_eq!(n.num_outputs(), n2.num_outputs());
        assert_eq!(n.num_gates(), n2.num_gates());
        // Behavioural equivalence on all 32 vectors.
        for v in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| (v >> (4 - i)) & 1 == 1).collect();
            assert_eq!(n.eval_bool(&bits), n2.eval_bool(&bits));
        }
    }

    #[test]
    fn rejects_dff() {
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        assert!(matches!(
            parse("seq", src),
            Err(NetlistError::Sequential { line: 3 })
        ));
    }

    #[test]
    fn parse_seq_extracts_ff_boundary() {
        // FF declared before the INPUT line: true PIs must still come
        // first in the core's input list.
        let src = "
q = DFF(nq)
INPUT(en)
OUTPUT(y)
nq = XOR(q, en)
y = BUF(q)
";
        let seq = parse_seq("tog", src).unwrap();
        assert_eq!(seq.num_true_inputs(), 1);
        assert_eq!(seq.num_true_outputs(), 1);
        assert_eq!(seq.ff_names(), &["q".to_string()]);
        assert_eq!(seq.core().node_name(seq.core().inputs()[0]), "en");
        assert_eq!(seq.core().node_name(seq.core().inputs()[1]), "q");
        // Toggle twice: 0 -> 1 -> 0.
        let (po, s1) = seq.step(&[false], &[true]);
        assert_eq!((po, s1.clone()), (vec![false], vec![true]));
        let (po, s2) = seq.step(&s1, &[true]);
        assert_eq!((po, s2), (vec![true], vec![false]));
    }

    #[test]
    fn parse_seq_accepts_combinational_sources() {
        let seq = parse_seq("c17", C17).unwrap();
        assert_eq!(seq.num_ffs(), 0);
        assert_eq!(seq.num_true_inputs(), 5);
        let (po, next) = seq.step(&[], &[true; 5]);
        assert_eq!(po, vec![true, false]);
        assert!(next.is_empty());
    }

    #[test]
    fn parse_seq_lowers_dffsr_set_dominant() {
        let src = "
INPUT(d)
INPUT(s)
INPUT(r)
OUTPUT(y)
q = DFFSR(d, s, r)
y = BUF(q)
";
        let seq = parse_seq("sr", src).unwrap();
        // q' = s OR (d AND NOT r) over all (d, s, r).
        for bits in 0u8..8 {
            let d = bits & 4 != 0;
            let s = bits & 2 != 0;
            let r = bits & 1 != 0;
            let (_, next) = seq.step(&[false], &[d, s, r]);
            assert_eq!(next, vec![s || (d && !r)], "d={d} s={s} r={r}");
        }
    }

    #[test]
    fn parse_seq_rejects_bad_ff_arity() {
        let src = "INPUT(a)\nOUTPUT(a)\nq = DFF(a, a)\n";
        assert!(matches!(
            parse_seq("bad", src),
            Err(NetlistError::Parse { line: 3, .. })
        ));
        let src = "INPUT(a)\nOUTPUT(a)\nq = DFFSR(a)\n";
        assert!(matches!(
            parse_seq("bad", src),
            Err(NetlistError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn rejects_unknown_kind() {
        let src = "INPUT(a)\nOUTPUT(q)\nq = MAJ3(a, a, a)\n";
        let err = parse("bad", src).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["garbage", "x = AND(a", "INPUT a", "y == OR(a,b)"] {
            let src = format!("INPUT(a)\nOUTPUT(y)\n{bad}\n");
            assert!(parse("bad", &src).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n# full comment\nINPUT(a)  # trailing comment\nOUTPUT(y)\ny = NOT(a)\n\n";
        let n = parse("c", src).unwrap();
        assert_eq!(n.num_gates(), 1);
    }

    #[test]
    fn buff_alias_accepted() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n";
        let n = parse("b", src).unwrap();
        assert_eq!(n.eval_bool(&[true]), vec![true]);
    }

    #[test]
    fn duplicate_input_rejected_with_line_number() {
        let src = "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
        let err = parse("dup", src).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }
}
