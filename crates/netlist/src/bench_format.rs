//! ISCAS-89 style `.bench` netlist parsing and writing.
//!
//! The grammar handled here is the common combinational subset:
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(y)
//! y = NAND(a, b)
//! z = NOT(y)
//! ```
//!
//! Gate definitions may appear in any order (forward references are
//! resolved at build time). Sequential primitives (`DFF`) are rejected with
//! [`NetlistError::Sequential`] — this workspace analyses the combinational
//! logic of circuits, so sequential benchmarks must be unrolled by the
//! caller (the `ndetect-fsm` crate does exactly that for FSM benchmarks).

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::netlist::Netlist;
use std::fmt::Write as _;

/// Parses `.bench` source text into a validated [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::Sequential`] for `DFF` elements, plus any builder
/// validation error (duplicate names, unknown references, bad arity,
/// cycles, no outputs).
///
/// # Example
///
/// ```
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = NAND(a, b)
/// ";
/// let netlist = ndetect_netlist::bench_format::parse("frag", src)?;
/// assert_eq!(netlist.num_gates(), 1);
/// # Ok::<(), ndetect_netlist::NetlistError>(())
/// ```
pub fn parse(name: &str, source: &str) -> Result<Netlist, NetlistError> {
    let mut builder = NetlistBuilder::new(name);
    let mut output_names: Vec<String> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = strip_directive(line, "INPUT") {
            let pin = rest.trim();
            validate_identifier(pin, lineno)?;
            builder.try_input(pin).map_err(|e| parse_ctx(e, lineno))?;
        } else if let Some(rest) = strip_directive(line, "OUTPUT") {
            let pin = rest.trim();
            validate_identifier(pin, lineno)?;
            output_names.push(pin.to_string());
        } else if let Some(eq) = line.find('=') {
            let target = line[..eq].trim();
            validate_identifier(target, lineno)?;
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line: lineno,
                message: format!("expected `kind(args)` after `=`, got `{rhs}`"),
            })?;
            if !rhs.ends_with(')') {
                return Err(NetlistError::Parse {
                    line: lineno,
                    message: "missing closing parenthesis".into(),
                });
            }
            let kw = rhs[..open].trim();
            if kw.eq_ignore_ascii_case("DFF") || kw.eq_ignore_ascii_case("DFFSR") {
                return Err(NetlistError::Sequential { line: lineno });
            }
            let kind = GateKind::from_bench_keyword(kw).ok_or_else(|| NetlistError::Parse {
                line: lineno,
                message: format!("unknown gate kind `{kw}`"),
            })?;
            if kind == GateKind::Input {
                return Err(NetlistError::Parse {
                    line: lineno,
                    message: "INPUT cannot appear on the right-hand side".into(),
                });
            }
            let args_str = rhs[open + 1..rhs.len() - 1].trim();
            let args: Vec<&str> = if args_str.is_empty() {
                Vec::new()
            } else {
                args_str.split(',').map(str::trim).collect()
            };
            for a in &args {
                validate_identifier(a, lineno)?;
            }
            builder
                .gate_by_name(kind, target, &args)
                .map_err(|e| parse_ctx(e, lineno))?;
        } else {
            return Err(NetlistError::Parse {
                line: lineno,
                message: format!("unrecognized line `{line}`"),
            });
        }
    }

    for out in output_names {
        builder.output_by_name(out);
    }
    builder.build()
}

fn parse_ctx(err: NetlistError, line: usize) -> NetlistError {
    match err {
        NetlistError::Parse { .. } => err,
        other => NetlistError::Parse {
            line,
            message: other.to_string(),
        },
    }
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line
        .strip_prefix(keyword)
        .or_else(|| line.strip_prefix(&keyword.to_lowercase()))?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

fn validate_identifier(s: &str, line: usize) -> Result<(), NetlistError> {
    if s.is_empty()
        || !s
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '[' | ']' | '-'))
    {
        return Err(NetlistError::Parse {
            line,
            message: format!("invalid identifier `{s}`"),
        });
    }
    Ok(())
}

/// Serializes a netlist to `.bench` text.
///
/// The output round-trips through [`parse`] to an equivalent netlist
/// (same structure, names, and I/O ordering).
///
/// # Example
///
/// ```
/// # use ndetect_netlist::{NetlistBuilder, GateKind};
/// # fn main() -> Result<(), ndetect_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let g = b.not("g", a)?;
/// b.output(g);
/// let n = b.build()?;
/// let text = ndetect_netlist::bench_format::write(&n);
/// let back = ndetect_netlist::bench_format::parse("t", &text)?;
/// assert_eq!(back.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    for &pi in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.node_name(pi));
    }
    for &po in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.node_name(po));
    }
    for &id in netlist.topo_order() {
        let node = netlist.node(id);
        if node.kind() == GateKind::Input {
            continue;
        }
        let fanins: Vec<&str> = node
            .fanins()
            .iter()
            .map(|&f| netlist.node_name(f))
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            netlist.node_name(id),
            node.kind().bench_keyword(),
            fanins.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "
# c17 benchmark (ISCAS-85 translated to bench format)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let n = parse("c17", C17).unwrap();
        assert_eq!(n.num_inputs(), 5);
        assert_eq!(n.num_outputs(), 2);
        assert_eq!(n.num_gates(), 6);
        // Known vector: all ones -> both outputs computed by hand.
        // 10 = !(1&3)=0, 11 = !(3&6)=0, 16 = !(2&11)=1, 19 = !(11&7)=1,
        // 22 = !(10&16)=1, 23 = !(16&19)=0.
        let outs = n.eval_bool(&[true; 5]);
        assert_eq!(outs, vec![true, false]);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let n = parse("c17", C17).unwrap();
        let text = write(&n);
        let n2 = parse("c17", &text).unwrap();
        assert_eq!(n.num_inputs(), n2.num_inputs());
        assert_eq!(n.num_outputs(), n2.num_outputs());
        assert_eq!(n.num_gates(), n2.num_gates());
        // Behavioural equivalence on all 32 vectors.
        for v in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| (v >> (4 - i)) & 1 == 1).collect();
            assert_eq!(n.eval_bool(&bits), n2.eval_bool(&bits));
        }
    }

    #[test]
    fn rejects_dff() {
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        assert!(matches!(
            parse("seq", src),
            Err(NetlistError::Sequential { line: 3 })
        ));
    }

    #[test]
    fn rejects_unknown_kind() {
        let src = "INPUT(a)\nOUTPUT(q)\nq = MAJ3(a, a, a)\n";
        let err = parse("bad", src).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["garbage", "x = AND(a", "INPUT a", "y == OR(a,b)"] {
            let src = format!("INPUT(a)\nOUTPUT(y)\n{bad}\n");
            assert!(parse("bad", &src).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n# full comment\nINPUT(a)  # trailing comment\nOUTPUT(y)\ny = NOT(a)\n\n";
        let n = parse("c", src).unwrap();
        assert_eq!(n.num_gates(), 1);
    }

    #[test]
    fn buff_alias_accepted() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n";
        let n = parse("b", src).unwrap();
        assert_eq!(n.eval_bool(&[true]), vec![true]);
    }

    #[test]
    fn duplicate_input_rejected_with_line_number() {
        let src = "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
        let err = parse("dup", src).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }
}
