//! The fault-site line model: stems and fanout branches.

use crate::id::{LineId, NodeId};
use std::fmt;

/// A consumer of a stem's value: either a specific gate input pin or a
/// primary-output observation slot.
///
/// Sinks identify fanout branches. A stem with two or more sinks has one
/// branch line per sink; a stem with a single sink has no branch lines (the
/// stem itself is the only fault site on that connection).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Sink {
    /// The `pin`-th fanin of gate `gate`.
    GatePin {
        /// The consuming gate.
        gate: NodeId,
        /// Zero-based fanin position within the consuming gate.
        pin: usize,
    },
    /// The `slot`-th primary output of the netlist.
    OutputSlot {
        /// Zero-based index into the netlist's output list.
        slot: usize,
    },
}

impl fmt::Display for Sink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sink::GatePin { gate, pin } => write!(f, "{gate}.{pin}"),
            Sink::OutputSlot { slot } => write!(f, "po{slot}"),
        }
    }
}

/// What a [`Line`] is: a gate-output stem or a fanout branch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LineKind {
    /// The output stem of node `node`.
    Stem {
        /// The node whose output this stem carries.
        node: NodeId,
    },
    /// A fanout branch of the stem of `node`, feeding `sink`.
    Branch {
        /// The node whose stem this branch splits from.
        node: NodeId,
        /// The sink this branch feeds.
        sink: Sink,
    },
}

impl LineKind {
    /// The node whose output value this line carries (the driver).
    #[must_use]
    pub fn driver(&self) -> NodeId {
        match *self {
            LineKind::Stem { node } | LineKind::Branch { node, .. } => node,
        }
    }

    /// Returns `true` if this line is a stem.
    #[must_use]
    pub fn is_stem(&self) -> bool {
        matches!(self, LineKind::Stem { .. })
    }
}

/// A single fault-site line of a netlist.
///
/// Lines are the atoms on which stuck-at faults are defined. Every node
/// output is a *stem* line; every stem with fanout ≥ 2 additionally has one
/// *branch* line per sink.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Line {
    id: LineId,
    kind: LineKind,
    name: String,
}

impl Line {
    pub(crate) fn new(id: LineId, kind: LineKind, name: String) -> Self {
        Line { id, kind, name }
    }

    /// This line's id (dense index into [`crate::Netlist::lines`]).
    #[must_use]
    pub fn id(&self) -> LineId {
        self.id
    }

    /// Whether this line is a stem or branch, and of which node.
    #[must_use]
    pub fn kind(&self) -> &LineKind {
        &self.kind
    }

    /// Human-readable name. Stems are named after their node; branches are
    /// named `"<stem>-><sink>"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node driving this line.
    #[must_use]
    pub fn driver(&self) -> NodeId {
        self.kind.driver()
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Immutable table of all lines in a netlist, with lookup indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineTable {
    lines: Vec<Line>,
    /// For each node index: the id of its stem line.
    stem_of_node: Vec<LineId>,
    /// For each node index: ids of its branch lines in sink order (empty if
    /// fanout < 2).
    branches_of_node: Vec<Vec<LineId>>,
}

impl LineTable {
    pub(crate) fn new(
        lines: Vec<Line>,
        stem_of_node: Vec<LineId>,
        branches_of_node: Vec<Vec<LineId>>,
    ) -> Self {
        LineTable {
            lines,
            stem_of_node,
            branches_of_node,
        }
    }

    /// All lines, ordered by id.
    #[must_use]
    pub fn lines(&self) -> &[Line] {
        &self.lines
    }

    /// The line with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    #[must_use]
    pub fn line(&self, id: LineId) -> &Line {
        &self.lines[id.index()]
    }

    /// The stem line of `node`.
    #[must_use]
    pub fn stem(&self, node: NodeId) -> LineId {
        self.stem_of_node[node.index()]
    }

    /// The branch lines of `node`'s stem, in sink order (empty if the stem
    /// has fewer than two sinks).
    #[must_use]
    pub fn branches(&self, node: NodeId) -> &[LineId] {
        &self.branches_of_node[node.index()]
    }

    /// Number of lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Returns `true` if the table contains no lines (only possible for an
    /// empty netlist).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_display() {
        let s = Sink::GatePin {
            gate: NodeId::new(4),
            pin: 1,
        };
        assert_eq!(s.to_string(), "n4.1");
        assert_eq!(Sink::OutputSlot { slot: 2 }.to_string(), "po2");
    }

    #[test]
    fn line_kind_driver() {
        let stem = LineKind::Stem {
            node: NodeId::new(7),
        };
        assert_eq!(stem.driver(), NodeId::new(7));
        assert!(stem.is_stem());
        let branch = LineKind::Branch {
            node: NodeId::new(7),
            sink: Sink::OutputSlot { slot: 0 },
        };
        assert_eq!(branch.driver(), NodeId::new(7));
        assert!(!branch.is_stem());
    }
}
