//! Content addressing: a stable 64-bit FNV-1a hasher and the resulting
//! artifact keys.
//!
//! `std::hash` is deliberately not used — `DefaultHasher` is documented
//! to be unstable across releases, whereas cache keys must be stable
//! across processes, builds, and toolchains. FNV-1a over the canonical
//! input bytes is simple, fast, and fully specified.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher.
///
/// ```
/// use ndetect_store::Fnv64;
/// let mut h = Fnv64::new();
/// h.update(b"hello");
/// // Reference FNV-1a value for "hello".
/// assert_eq!(h.finish(), 0xa430_d846_80aa_bd0b);
/// ```
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Creates a hasher in the standard FNV-1a initial state.
    #[must_use]
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a little-endian `u64` (convenience for length/version
    /// fields).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes a byte slice in one call.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// A content-addressed artifact key: the 64-bit hash of the canonical
/// inputs an artifact was derived from (e.g. canonical netlist bytes +
/// universe options + codec version).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ArtifactKey(pub u64);

impl ArtifactKey {
    /// The fixed-width lowercase-hex form used in file names.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the 16-digit hex form produced by [`Self::to_hex`].
    #[must_use]
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok().map(ArtifactKey)
    }
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn hex_round_trips() {
        let key = ArtifactKey(0x0123_4567_89ab_cdef);
        assert_eq!(key.to_hex(), "0123456789abcdef");
        assert_eq!(ArtifactKey::from_hex(&key.to_hex()), Some(key));
        assert_eq!(ArtifactKey::from_hex("xyz"), None);
        assert_eq!(ArtifactKey::from_hex("0123"), None);
    }
}
