//! A small hand-rolled versioned binary codec.
//!
//! The build environment has no registry access, so instead of `serde` +
//! `bincode` the store uses an explicit little-endian byte codec: the
//! [`Encode`]/[`Decode`] traits below plus impls for the primitives and
//! containers the workspace's artifacts are made of (including
//! [`VectorSet`] detection sets and [`GoodValues`] blocks).
//!
//! Decoding is *total*: every failure mode is a [`CodecError`], never a
//! panic, so a corrupt cache entry degrades to a miss. Containers are
//! decoded element by element (no `with_capacity` on attacker-controlled
//! lengths), so a corrupt length field runs out of input instead of
//! allocating.

use ndetect_sim::{GoodValues, VectorSet};
use std::fmt;

/// Version of the artifact encoding. Bump whenever any [`Encode`] impl
/// changes shape; entries written under a different version are treated
/// as cache misses by the store.
pub const CODEC_VERSION: u16 = 1;

/// A decoding failure (truncated input, bad tag, inconsistent shape).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    message: String,
}

impl CodecError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        CodecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// An append-only byte sink for [`Encode`] impls.
#[derive(Default, Debug)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Consumes the encoder, returning the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A cursor over encoded bytes for [`Decode`] impls.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::new(format!(
                "need {n} bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated input.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated input.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated input.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated input.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated input or a value exceeding
    /// the platform's `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| CodecError::new("u64 value does not fit in usize"))
    }

    /// Reads a `bool` (rejecting any byte other than 0 or 1).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated input or a non-boolean byte.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::new(format!("invalid bool byte {other}"))),
        }
    }

    /// Fails unless every input byte has been consumed — artifacts must
    /// decode exactly, trailing garbage means corruption.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::new(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// A value that can be appended to an [`Encoder`].
pub trait Encode {
    /// Appends this value's encoding.
    fn encode(&self, e: &mut Encoder);
}

/// A value that can be read back from a [`Decoder`].
pub trait Decode: Sized {
    /// Reads one value, consuming exactly the bytes [`Encode::encode`]
    /// produced.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or inconsistent input.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value to a standalone byte vector.
#[must_use]
pub fn encode_to_vec<T: Encode>(value: &T) -> Vec<u8> {
    let mut e = Encoder::new();
    value.encode(&mut e);
    e.finish()
}

/// Decodes a value from a byte slice, requiring full consumption.
///
/// # Errors
///
/// Returns [`CodecError`] on truncated, trailing, or inconsistent input.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, CodecError> {
    // Chaos hook: an injected decode failure must degrade exactly like
    // real corruption (callers already treat decode errors as misses).
    if ndetect_chaos::failpoint!("store.codec.decode").is_some() {
        return Err(CodecError::new(
            "failpoint `store.codec.decode`: injected error",
        ));
    }
    let mut d = Decoder::new(bytes);
    let value = T::decode(&mut d)?;
    d.expect_end()?;
    Ok(value)
}

macro_rules! impl_codec_int {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Encode for $ty {
            fn encode(&self, e: &mut Encoder) {
                e.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
                d.$get()
            }
        }
    };
}

impl_codec_int!(u8, put_u8, get_u8);
impl_codec_int!(u16, put_u16, get_u16);
impl_codec_int!(u32, put_u32, get_u32);
impl_codec_int!(u64, put_u64, get_u64);
impl_codec_int!(usize, put_usize, get_usize);
impl_codec_int!(bool, put_bool, get_bool);

impl Encode for String {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.len());
        e.put_bytes(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = d.get_usize()?;
        let bytes = d.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::new("invalid UTF-8 string"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.encode(e);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            other => Err(CodecError::new(format!("invalid Option tag {other}"))),
        }
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.len());
        for item in self {
            item.encode(e);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        self.as_slice().encode(e);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = d.get_usize()?;
        // Grow as elements actually decode — a corrupt length exhausts
        // the input instead of pre-allocating.
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

/// Encodes a borrowed word slice with the same wire format as
/// `Vec<u64>` (length prefix + elements), without cloning the slice.
fn encode_words(words: &[u64], e: &mut Encoder) {
    e.put_usize(words.len());
    for &w in words {
        e.put_u64(w);
    }
}

impl Encode for VectorSet {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.num_patterns());
        encode_words(self.words(), e);
    }
}

impl Decode for VectorSet {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let num_patterns = d.get_usize()?;
        let words = Vec::<u64>::decode(d)?;
        VectorSet::try_from_words(num_patterns, words)
            .ok_or_else(|| CodecError::new("inconsistent VectorSet shape"))
    }
}

impl Encode for GoodValues {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.num_nodes());
        e.put_usize(self.num_blocks());
        encode_words(self.words(), e);
    }
}

impl Decode for GoodValues {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let num_nodes = d.get_usize()?;
        let num_blocks = d.get_usize()?;
        let words = Vec::<u64>::decode(d)?;
        GoodValues::try_from_words(num_nodes, num_blocks, words)
            .ok_or_else(|| CodecError::new("inconsistent GoodValues shape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut e = Encoder::new();
        42u8.encode(&mut e);
        7u16.encode(&mut e);
        9u32.encode(&mut e);
        u64::MAX.encode(&mut e);
        123usize.encode(&mut e);
        true.encode(&mut e);
        "héllo".to_string().encode(&mut e);
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes);
        assert_eq!(u8::decode(&mut d).unwrap(), 42);
        assert_eq!(u16::decode(&mut d).unwrap(), 7);
        assert_eq!(u32::decode(&mut d).unwrap(), 9);
        assert_eq!(u64::decode(&mut d).unwrap(), u64::MAX);
        assert_eq!(usize::decode(&mut d).unwrap(), 123);
        assert!(bool::decode(&mut d).unwrap());
        assert_eq!(String::decode(&mut d).unwrap(), "héllo");
        d.expect_end().unwrap();
    }

    #[test]
    fn containers_round_trip() {
        let value: Vec<(u32, Option<bool>)> = vec![(1, None), (2, Some(true)), (3, Some(false))];
        let bytes = encode_to_vec(&value);
        assert_eq!(
            decode_from_slice::<Vec<(u32, Option<bool>)>>(&bytes).unwrap(),
            value
        );
    }

    #[test]
    fn vector_set_round_trips() {
        let set = VectorSet::from_vectors(100, [0, 63, 64, 99]);
        let bytes = encode_to_vec(&set);
        let back: VectorSet = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn truncated_input_errors_without_panic() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            assert!(decode_from_slice::<Vec<u64>>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&5u32);
        bytes.push(0);
        assert!(decode_from_slice::<u32>(&bytes).is_err());
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(decode_from_slice::<bool>(&[2]).is_err());
        assert!(decode_from_slice::<Option<u8>>(&[9, 1]).is_err());
    }

    #[test]
    fn corrupt_length_runs_out_of_input() {
        // A Vec claiming u64::MAX elements must fail fast, not allocate.
        let mut e = Encoder::new();
        e.put_u64(u64::MAX);
        assert!(decode_from_slice::<Vec<u64>>(&e.finish()).is_err());
    }
}
