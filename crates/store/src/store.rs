//! The content-addressed on-disk artifact store.

use crate::codec::CODEC_VERSION;
use crate::hash::{fnv1a64, ArtifactKey};
use ndetect_chaos::{failpoint, Injected};
use ndetect_obs::trace;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::SystemTime;

/// File-format magic for artifact entries.
const MAGIC: [u8; 4] = *b"NDST";
/// Bytes before the payload: magic + version + kind + length + checksum.
const HEADER_LEN: usize = 4 + 2 + 2 + 8 + 8;
/// Name of the persisted hit/miss counter file in the store root.
const COUNTERS_FILE: &str = "counters.bin";
/// Directory (under the store root) where [`Store::repair`] moves
/// undecodable entries, next to its `MANIFEST` log.
const QUARANTINE_DIR: &str = "quarantine";
/// Distinguishes temp names when one process opens several stores.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The artifact kind tag carried in every entry header, so one key space
/// can hold several artifact flavours without collisions. Consumers pick
/// their own tags; the store only compares them.
pub type ArtifactKind = u16;

/// Cumulative store statistics: what is on disk plus the hit/miss/write
/// counters accumulated across *all* processes that used this cache
/// directory (persisted in `counters.bin`, merged best-effort).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of entry files currently on disk.
    pub entries: u64,
    /// Total size of entry files in bytes.
    pub total_bytes: u64,
    /// Number of fan-out shard subdirectories holding at least one
    /// entry (entries still in the legacy flat layout are not shards).
    pub shards: u64,
    /// Entries still sitting in the legacy flat `objects/` layout.
    pub flat_entries: u64,
    /// Cumulative successful loads.
    pub hits: u64,
    /// Cumulative failed loads (absent, corrupt, or version-mismatched).
    pub misses: u64,
    /// Cumulative stores.
    pub writes: u64,
    /// Cumulative failed writes that were absorbed (computation
    /// proceeded uncached instead of failing the request).
    pub write_errors: u64,
}

/// Per-shard occupancy of the fan-out `objects/` layout
/// ([`Store::shard_histogram`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardHistogram {
    /// Entries still in the legacy flat layout (directly under
    /// `objects/`).
    pub flat: u64,
    /// `(shard name, entry count)` for every shard directory holding at
    /// least one entry, sorted by shard name.
    pub shards: Vec<(String, u64)>,
}

/// Result of a full-store integrity scan ([`Store::verify`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries whose header and checksum validated.
    pub valid: u64,
    /// Files that failed validation, with the reason.
    pub corrupt: Vec<(PathBuf, String)>,
}

/// Result of a quarantine pass ([`Store::repair`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Entries whose header and checksum validated (left in place).
    pub valid: u64,
    /// Entries moved into `quarantine/`, with their original path and
    /// the validation failure that condemned them.
    pub quarantined: Vec<(PathBuf, String)>,
}

/// Result of a garbage-collection pass ([`Store::gc`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries removed.
    pub evicted: u64,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Entries kept.
    pub kept: u64,
    /// Bytes still on disk after the pass.
    pub kept_bytes: u64,
}

/// A content-addressed artifact cache rooted at one directory.
///
/// Layout:
///
/// ```text
/// <root>/objects/<hh>/<key-hex16>-k<kind>.art  one file per artifact,
///                                              fanned out over 256 shard
///                                              dirs by the first key byte
/// <root>/objects/<key-hex16>-k<kind>.art       legacy flat layout, still
///                                              read (and migrated on hit)
/// <root>/tmp/                                  staging for atomic writes
/// <root>/counters.bin                          cumulative hit/miss/write counters
/// ```
///
/// Entries are sharded into 256 fan-out subdirectories (the first two
/// hex digits of the key) so directories stay short even for
/// ~10^5-entry corpora. Stores written before sharding are read
/// transparently: a load probes the shard first and falls back to the
/// flat path, migrating the entry into its shard on a hit (an atomic
/// rename, so concurrent readers see one layout or the other, never a
/// torn entry).
///
/// Every entry carries a `NDST` magic, the codec version, an artifact
/// kind tag, the payload length, and an FNV-1a checksum; anything that
/// fails validation — truncation, bit flips, a version bump — is treated
/// as a **miss**, never an error. Writes stage into `tmp/` and publish
/// with an atomic rename, so concurrent `ndet` processes sharing one
/// cache directory can only ever observe complete entries.
///
/// The store is `Sync`: session counters are atomics, so one `Store`
/// can be shared across server worker threads. Hit/miss counters are
/// tracked per process and merged into `counters.bin` on drop (or
/// [`Store::flush_counters`]); the merge is a read-modify-rename, so
/// concurrent writers may lose increments — the counters are
/// diagnostics, not ledger data.
///
/// The session counters are [`ndetect_obs::Counter`] cells, so callers
/// can register them into a metrics registry
/// ([`Store::register_metrics`]) and have `cache stats`, the serve
/// `counters` verb, and Prometheus exposition all read the same
/// atomics.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    tmp_tag: u64,
    session_hits: Arc<ndetect_obs::Counter>,
    session_misses: Arc<ndetect_obs::Counter>,
    session_writes: Arc<ndetect_obs::Counter>,
    session_write_errors: Arc<ndetect_obs::Counter>,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory tree cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("tmp"))?;
        Ok(Store {
            root,
            tmp_tag: TMP_SEQ.fetch_add(1, Ordering::Relaxed),
            session_hits: Arc::new(ndetect_obs::Counter::new()),
            session_misses: Arc::new(ndetect_obs::Counter::new()),
            session_writes: Arc::new(ndetect_obs::Counter::new()),
            session_write_errors: Arc::new(ndetect_obs::Counter::new()),
        })
    }

    /// Registers this store's session counters into `registry` under
    /// `store_hits` / `store_misses` / `store_writes` — the exposition
    /// then reads the very cells `cache stats` and the serve `counters`
    /// verb already report.
    pub fn register_metrics(&self, registry: &ndetect_obs::Registry) {
        registry.register_counter("store_hits", Arc::clone(&self.session_hits));
        registry.register_counter("store_misses", Arc::clone(&self.session_misses));
        registry.register_counter("store_writes", Arc::clone(&self.session_writes));
        registry.register_counter(
            "store_write_errors_total",
            Arc::clone(&self.session_write_errors),
        );
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry file name shared by both layouts.
    fn entry_file_name(key: ArtifactKey, kind: ArtifactKind) -> String {
        format!("{}-k{kind}.art", key.to_hex())
    }

    /// The sharded (current) location of an entry: fanned out by the
    /// first key byte, i.e. the first two hex digits of the key.
    fn entry_path(&self, key: ArtifactKey, kind: ArtifactKind) -> PathBuf {
        self.root
            .join("objects")
            .join(&key.to_hex()[..2])
            .join(Self::entry_file_name(key, kind))
    }

    /// The legacy flat location of an entry (stores written before
    /// sharding). Still read, never written.
    fn flat_entry_path(&self, key: ArtifactKey, kind: ArtifactKind) -> PathBuf {
        self.root
            .join("objects")
            .join(Self::entry_file_name(key, kind))
    }

    /// Loads an artifact payload, or `None` on any kind of miss: entry
    /// absent, unreadable, truncated, checksum mismatch, or written
    /// under a different codec version. Never fails loudly — a corrupt
    /// cache degrades to recomputation.
    ///
    /// The sharded location is probed first; a hit on the legacy flat
    /// location migrates the entry into its shard (atomic rename, best
    /// effort). A hit refreshes the entry's mtime (best effort) so that
    /// [`Store::gc`]'s least-recently-used eviction sees real usage.
    #[must_use]
    pub fn load(&self, key: ArtifactKey, kind: ArtifactKind) -> Option<Vec<u8>> {
        let mut span = trace::span("store.load");
        // Chaos hook: an injected read failure is just a miss, like any
        // real unreadable entry.
        if failpoint!("store.load").is_some() {
            self.session_misses.inc();
            span.field("outcome", "miss");
            return None;
        }
        let sharded = self.entry_path(key, kind);
        let (payload, path) = match read_entry(&sharded, Some(kind)) {
            Ok(payload) => (payload, sharded),
            Err(_) => {
                // Flat-layout fallback for stores written before
                // sharding.
                let flat = self.flat_entry_path(key, kind);
                match read_entry(&flat, Some(kind)) {
                    Ok(payload) => {
                        // Migrate into the shard so the old layout
                        // drains incrementally; losing the race to a
                        // concurrent writer is harmless.
                        if let Some(dir) = sharded.parent() {
                            // Chaos hook: a failed migration must not
                            // cost the caller its hit — skip it.
                            if failpoint!("store.migrate").is_none()
                                && fs::create_dir_all(dir).is_ok()
                                && fs::rename(&flat, &sharded).is_ok()
                            {
                                self.record_hit(&sharded);
                                span.field("outcome", "hit");
                                span.field("bytes", payload.len());
                                return Some(payload);
                            }
                        }
                        (payload, flat)
                    }
                    Err(_) => {
                        self.session_misses.inc();
                        span.field("outcome", "miss");
                        return None;
                    }
                }
            }
        };
        self.record_hit(&path);
        span.field("outcome", "hit");
        span.field("bytes", payload.len());
        Some(payload)
    }

    /// Counts a hit and refreshes the entry's LRU recency (best effort).
    fn record_hit(&self, path: &Path) {
        self.session_hits.inc();
        if let Ok(f) = fs::File::open(path) {
            let _ = f.set_modified(SystemTime::now());
        }
    }

    /// Stores an artifact payload under `key`, atomically replacing any
    /// existing entry.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if staging or renaming fails. Callers on
    /// the analysis fast path typically treat failure as best-effort
    /// (the computation already succeeded).
    pub fn save(&self, key: ArtifactKey, kind: ArtifactKind, payload: &[u8]) -> io::Result<()> {
        let mut span = trace::span("store.save");
        span.field("bytes", payload.len());
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&CODEC_VERSION.to_le_bytes());
        bytes.extend_from_slice(&kind.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);

        let tmp = self.root.join("tmp").join(format!(
            "{}-{}-{}.part",
            process::id(),
            self.tmp_tag,
            key.to_hex()
        ));
        if failpoint!("store.save.create").is_some() {
            return Err(ndetect_chaos::io_error("store.save.create"));
        }
        {
            let mut f = fs::File::create(&tmp)?;
            match failpoint!("store.save.write") {
                // Torn write: persist a truncated prefix of the staged
                // bytes and fail — the crash-mid-write shape. The torn
                // file stays in `tmp/` (it was never renamed into
                // `objects/`, so no reader can ever see it) until
                // `sweep_tmp` collects it.
                Some(Injected::TornWrite) => {
                    f.write_all(&bytes[..bytes.len() / 2])?;
                    f.sync_all()?;
                    return Err(ndetect_chaos::io_error("store.save.write"));
                }
                Some(Injected::ReturnErr) => {
                    return Err(ndetect_chaos::io_error("store.save.write"));
                }
                None => {}
            }
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        let dest = self.entry_path(key, kind);
        if let Some(dir) = dest.parent() {
            // Shard dirs are created on demand; create_dir_all is safe
            // under concurrent writers racing into the same shard.
            fs::create_dir_all(dir)?;
        }
        let result = if failpoint!("store.save.rename").is_some() {
            Err(ndetect_chaos::io_error("store.save.rename"))
        } else {
            fs::rename(&tmp, &dest)
        };
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result?;
        // A replaced flat-layout duplicate would shadow future loads'
        // shard probe — sharded wins, but remove the stale twin anyway.
        let _ = fs::remove_file(self.flat_entry_path(key, kind));
        self.session_writes.inc();
        Ok(())
    }

    /// Stores an artifact, absorbing any failure: the error is counted
    /// (`store_write_errors_total`), logged once per process, and the
    /// caller proceeds uncached. This is the analysis fast path's
    /// contract — a full or read-only cache directory can slow requests
    /// down (everything recomputes) but can never fail one.
    pub fn save_best_effort(&self, key: ArtifactKey, kind: ArtifactKind, payload: &[u8]) {
        if let Err(err) = self.save(key, kind, payload) {
            self.record_write_error("save", &err);
        }
    }

    /// Counts an absorbed write failure and logs the first one per
    /// process (later ones only tick the counter — a dead disk would
    /// otherwise flood stderr once per request).
    fn record_write_error(&self, what: &str, err: &io::Error) {
        self.session_write_errors.inc();
        static LOGGED: Once = Once::new();
        LOGGED.call_once(|| {
            eprintln!(
                "ndet: cache {what} failed ({err}); continuing uncached \
                 (further cache write errors are counted, not logged)"
            );
        });
    }

    /// Hits recorded by this process since the store was opened.
    #[must_use]
    pub fn session_hits(&self) -> u64 {
        self.session_hits.get()
    }

    /// Misses recorded by this process since the store was opened.
    #[must_use]
    pub fn session_misses(&self) -> u64 {
        self.session_misses.get()
    }

    /// Writes recorded by this process since the store was opened.
    #[must_use]
    pub fn session_writes(&self) -> u64 {
        self.session_writes.get()
    }

    /// Absorbed write failures recorded by this process since the store
    /// was opened.
    #[must_use]
    pub fn session_write_errors(&self) -> u64 {
        self.session_write_errors.get()
    }

    /// Merges this process's counters into `counters.bin` and resets
    /// them. Called automatically on drop. A flush failure is itself
    /// absorbed (counted and logged once) — dropping a store on a
    /// read-only cache directory must stay silent-but-observable, never
    /// fatal.
    pub fn flush_counters(&self) {
        let (h, m, w, e) = (
            self.session_hits.take(),
            self.session_misses.take(),
            self.session_writes.take(),
            self.session_write_errors.take(),
        );
        if h == 0 && m == 0 && w == 0 && e == 0 {
            return;
        }
        let (ph, pm, pw, pe) = self.read_persisted_counters();
        let mut payload = Vec::with_capacity(32);
        payload.extend_from_slice(&(ph + h).to_le_bytes());
        payload.extend_from_slice(&(pm + m).to_le_bytes());
        payload.extend_from_slice(&(pw + w).to_le_bytes());
        payload.extend_from_slice(&(pe + e).to_le_bytes());
        // Same atomic-rename discipline as entries; losing a race just
        // loses counter increments, never corrupts the file.
        let tmp =
            self.root
                .join("tmp")
                .join(format!("{}-{}-counters.part", process::id(), self.tmp_tag));
        let write = if failpoint!("store.counters.flush").is_some() {
            Err(ndetect_chaos::io_error("store.counters.flush"))
        } else {
            fs::write(&tmp, &payload).and_then(|()| {
                let res = fs::rename(&tmp, self.root.join(COUNTERS_FILE));
                if res.is_err() {
                    let _ = fs::remove_file(&tmp);
                }
                res
            })
        };
        if let Err(err) = write {
            // Put the taken counts back so a later flush (or the drop
            // flush) can retry; only increments raced away by another
            // process are ever truly lost.
            self.session_hits.add(h);
            self.session_misses.add(m);
            self.session_writes.add(w);
            self.session_write_errors.add(e);
            self.record_write_error("counter flush", &err);
        }
    }

    /// Reads `(hits, misses, writes, write_errors)` from `counters.bin`.
    /// The file grew from three to four words when write-error tracking
    /// landed; three-word files from older builds still read (their
    /// write-error count is zero).
    fn read_persisted_counters(&self) -> (u64, u64, u64, u64) {
        let Ok(bytes) = fs::read(self.root.join(COUNTERS_FILE)) else {
            return (0, 0, 0, 0);
        };
        if bytes.len() != 24 && bytes.len() != 32 {
            return (0, 0, 0, 0);
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8"));
        let errors = if bytes.len() == 32 { word(3) } else { 0 };
        (word(0), word(1), word(2), errors)
    }

    /// Walks both layouts: flat entry files directly under `objects/`
    /// plus every file one level down inside the fan-out shard dirs.
    fn entry_files(&self) -> io::Result<Vec<(PathBuf, u64, SystemTime)>> {
        let mut files = Vec::new();
        for entry in fs::read_dir(self.root.join("objects"))? {
            let entry = entry?;
            let meta = entry.metadata()?;
            if meta.is_dir() {
                for sub in fs::read_dir(entry.path())? {
                    let sub = sub?;
                    let meta = sub.metadata()?;
                    if !meta.is_file() {
                        continue;
                    }
                    let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                    files.push((sub.path(), meta.len(), mtime));
                }
            } else if meta.is_file() {
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                files.push((entry.path(), meta.len(), mtime));
            }
        }
        Ok(files)
    }

    /// Current on-disk shape plus cumulative counters (including this
    /// process's unflushed session counts).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the objects directory cannot be scanned.
    pub fn stats(&self) -> io::Result<StoreStats> {
        let files = self.entry_files()?;
        let histogram = self.shard_histogram()?;
        let (hits, misses, writes, write_errors) = self.read_persisted_counters();
        Ok(StoreStats {
            entries: files.len() as u64,
            total_bytes: files.iter().map(|(_, len, _)| len).sum(),
            shards: histogram.shards.len() as u64,
            flat_entries: histogram.flat,
            hits: hits + self.session_hits(),
            misses: misses + self.session_misses(),
            writes: writes + self.session_writes(),
            write_errors: write_errors + self.session_write_errors(),
        })
    }

    /// Per-shard entry counts: how the fan-out layout is filling up.
    /// Only shards holding at least one entry are listed (sorted by
    /// shard name); entries still in the legacy flat layout are counted
    /// separately.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the objects directory cannot be scanned.
    pub fn shard_histogram(&self) -> io::Result<ShardHistogram> {
        let mut histogram = ShardHistogram::default();
        for (path, _, _) in self.entry_files()? {
            let shard = path
                .parent()
                .filter(|dir| dir.file_name().is_some_and(|n| n != "objects"))
                .and_then(|dir| dir.file_name()?.to_str())
                .map(str::to_string);
            match shard {
                Some(name) => match histogram.shards.binary_search_by(|(s, _)| s.cmp(&name)) {
                    Ok(i) => histogram.shards[i].1 += 1,
                    Err(i) => histogram.shards.insert(i, (name, 1)),
                },
                None => histogram.flat += 1,
            }
        }
        Ok(histogram)
    }

    /// Validates every entry's header and checksum.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the objects directory cannot be scanned
    /// (individual unreadable entries are reported as corrupt instead).
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        for (path, _, _) in self.entry_files()? {
            // The expected kind is embedded in the file name; validate
            // the header against it when parseable, else against the
            // header's own kind (checksum still applies).
            match read_entry(&path, kind_from_file_name(&path)) {
                Ok(_) => report.valid += 1,
                Err(reason) => report.corrupt.push((path, reason)),
            }
        }
        Ok(report)
    }

    /// Quarantines every entry that fails validation. Where
    /// [`Store::verify`] only reports, repair *moves* each corrupt file
    /// into `<root>/quarantine/` (disambiguating name collisions
    /// between the flat and sharded layouts) and appends a
    /// tab-separated line to `quarantine/MANIFEST` — quarantined name,
    /// original path, failure reason — so the bytes stay inspectable
    /// for debugging while the store itself ends the pass holding only
    /// valid entries.
    ///
    /// Note a repaired store is not necessarily a *smaller* failure
    /// domain: corrupt entries were already misses. Repair exists so
    /// operators can distinguish "cache churn" from "disk eating
    /// bytes", with the evidence preserved.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the scan, a move, or a manifest append
    /// fails.
    pub fn repair(&self) -> io::Result<RepairReport> {
        let mut report = RepairReport::default();
        for (path, _, _) in self.entry_files()? {
            match read_entry(&path, kind_from_file_name(&path)) {
                Ok(_) => report.valid += 1,
                Err(reason) => {
                    let dest = self.quarantine_dest(&path)?;
                    fs::rename(&path, &dest)?;
                    let mut manifest = fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(self.root.join(QUARANTINE_DIR).join("MANIFEST"))?;
                    writeln!(
                        manifest,
                        "{}\t{}\t{reason}",
                        dest.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
                        path.display()
                    )?;
                    report.quarantined.push((path, reason));
                }
            }
        }
        if !report.quarantined.is_empty() {
            self.prune_empty_shards();
        }
        Ok(report)
    }

    /// Picks a free file name inside `quarantine/` for `path`, creating
    /// the directory on first use. A flat entry and its sharded twin
    /// share a file name, so collisions get a numeric prefix.
    fn quarantine_dest(&self, path: &Path) -> io::Result<PathBuf> {
        let dir = self.root.join(QUARANTINE_DIR);
        fs::create_dir_all(&dir)?;
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("entry")
            .to_string();
        let mut dest = dir.join(&name);
        let mut n = 1u32;
        while dest.exists() {
            dest = dir.join(format!("{n}-{name}"));
            n += 1;
        }
        Ok(dest)
    }

    /// Removes every entry, the counters file, and all staging files
    /// (including partial writes left behind by crashed processes).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered.
    pub fn clear(&self) -> io::Result<()> {
        for (path, _, _) in self.entry_files()? {
            fs::remove_file(path)?;
        }
        self.prune_empty_shards();
        let _ = fs::remove_file(self.root.join(COUNTERS_FILE));
        self.sweep_tmp(std::time::Duration::ZERO);
        let _ = self.session_hits.take();
        let _ = self.session_misses.take();
        let _ = self.session_writes.take();
        let _ = self.session_write_errors.take();
        Ok(())
    }

    /// Removes shard directories left empty by eviction (best effort —
    /// `remove_dir` refuses non-empty dirs, so racing writers are safe).
    fn prune_empty_shards(&self) {
        let Ok(entries) = fs::read_dir(self.root.join("objects")) else {
            return;
        };
        for entry in entries.filter_map(Result::ok) {
            if entry.file_type().is_ok_and(|t| t.is_dir()) {
                let _ = fs::remove_dir(entry.path());
            }
        }
    }

    /// Removes staging files older than `min_age` (best effort). Live
    /// writers stage and rename within the same call, so anything old
    /// in `tmp/` is an orphan from a crashed process.
    fn sweep_tmp(&self, min_age: std::time::Duration) {
        let Ok(entries) = fs::read_dir(self.root.join("tmp")) else {
            return;
        };
        let now = SystemTime::now();
        for entry in entries.filter_map(Result::ok) {
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .map(|mtime| now.duration_since(mtime).is_ok_and(|age| age >= min_age))
                .unwrap_or(true);
            if stale {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// Size-bounded least-recently-used eviction: removes the oldest
    /// entries (by mtime — [`Store::load`] refreshes it on hits) until
    /// the total size is at most `max_bytes`. Also sweeps staging files
    /// orphaned by crashed processes (older than one hour).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the objects directory cannot be scanned
    /// or an eviction fails.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        self.sweep_tmp(std::time::Duration::from_secs(3600));
        let mut files = self.entry_files()?;
        files.sort_by_key(|(_, _, mtime)| *mtime);
        let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
        let mut report = GcReport::default();
        for (path, len, _) in &files {
            if total <= max_bytes {
                report.kept += 1;
                report.kept_bytes += len;
                continue;
            }
            fs::remove_file(path)?;
            total -= len;
            report.evicted += 1;
            report.freed_bytes += len;
        }
        if report.evicted > 0 {
            self.prune_empty_shards();
        }
        Ok(report)
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        self.flush_counters();
    }
}

/// Parses the `-k<kind>` tag out of an entry file name.
fn kind_from_file_name(path: &Path) -> Option<ArtifactKind> {
    let stem = path.file_stem()?.to_str()?;
    let (_, kind) = stem.rsplit_once("-k")?;
    kind.parse().ok()
}

/// Reads and fully validates one entry file, returning the payload or a
/// human-readable failure reason. `expected_kind = None` accepts any
/// kind tag (integrity scans where the caller has no expectation).
fn read_entry(path: &Path, expected_kind: Option<ArtifactKind>) -> Result<Vec<u8>, String> {
    let mut f = fs::File::open(path).map_err(|e| format!("open: {e}"))?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(|e| format!("read: {e}"))?;
    if bytes.len() < HEADER_LEN {
        return Err(format!("truncated header ({} bytes)", bytes.len()));
    }
    if bytes[0..4] != MAGIC {
        return Err("bad magic".into());
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2"));
    if version != CODEC_VERSION {
        return Err(format!("codec version {version}, expected {CODEC_VERSION}"));
    }
    let kind = u16::from_le_bytes(bytes[6..8].try_into().expect("2"));
    if expected_kind.is_some_and(|expected| kind != expected) {
        return Err(format!(
            "kind {kind}, expected {}",
            expected_kind.expect("checked")
        ));
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8"));
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(format!(
            "payload length {} != declared {payload_len}",
            payload.len()
        ));
    }
    if fnv1a64(payload) != checksum {
        return Err("checksum mismatch".into());
    }
    // Strip the header in place — no second allocation for the payload.
    bytes.drain(..HEADER_LEN);
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("ndetect-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    #[test]
    fn save_load_round_trip_and_counters() {
        let store = temp_store("roundtrip");
        let key = ArtifactKey(0xdead_beef);
        assert!(store.load(key, 1).is_none()); // miss
        store.save(key, 1, b"payload bytes").unwrap();
        assert_eq!(store.load(key, 1).unwrap(), b"payload bytes");
        // Same key, different kind: distinct entry.
        assert!(store.load(key, 2).is_none());
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.writes, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn counters_persist_across_store_instances() {
        let store = temp_store("counters");
        let root = store.root().to_path_buf();
        let key = ArtifactKey(7);
        store.save(key, 1, b"x").unwrap();
        assert!(store.load(key, 1).is_some());
        drop(store); // flushes counters

        let store2 = Store::open(&root).unwrap();
        let stats = store2.stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.writes, 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn corrupt_entries_are_misses_and_verify_flags_them() {
        let store = temp_store("corrupt");
        let key = ArtifactKey(1);
        store.save(key, 1, b"hello world").unwrap();
        let path = store.entry_path(key, 1);

        // Flip one payload byte.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(key, 1).is_none());

        // Truncate mid-payload.
        store.save(key, 1, b"hello world").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(store.load(key, 1).is_none());

        // Wrong codec version.
        store.save(key, 1, b"hello world").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = bytes[4].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(key, 1).is_none());

        let report = store.verify().unwrap();
        assert_eq!(report.valid, 0);
        assert_eq!(report.corrupt.len(), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn clear_removes_everything() {
        let store = temp_store("clear");
        store.save(ArtifactKey(1), 1, b"a").unwrap();
        store.save(ArtifactKey(2), 1, b"b").unwrap();
        store.clear().unwrap();
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_evicts_oldest_first_until_under_budget() {
        let store = temp_store("gc");
        let payload = vec![0u8; 100];
        for i in 0..4u64 {
            store.save(ArtifactKey(i), 1, &payload).unwrap();
            // Force distinct mtimes (filesystem granularity permitting)
            // by backdating earlier entries.
            let age = std::time::Duration::from_secs(100 - i * 10);
            let f = fs::File::open(store.entry_path(ArtifactKey(i), 1)).unwrap();
            f.set_modified(SystemTime::now() - age).unwrap();
        }
        let per_entry = (HEADER_LEN + payload.len()) as u64;
        let report = store.gc(2 * per_entry).unwrap();
        assert_eq!(report.evicted, 2);
        assert_eq!(report.kept, 2);
        // Oldest (keys 0 and 1) evicted; newest survive.
        assert!(store.load(ArtifactKey(0), 1).is_none());
        assert!(store.load(ArtifactKey(1), 1).is_none());
        assert!(store.load(ArtifactKey(2), 1).is_some());
        assert!(store.load(ArtifactKey(3), 1).is_some());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_equal_mtime_ties_still_respect_the_byte_budget() {
        // Entries sharing one mtime (coarse filesystems, batch imports)
        // have no LRU order between them; gc must still evict exactly
        // enough of them to get under budget and report consistently.
        let store = temp_store("gc-ties");
        let payload = vec![0u8; 100];
        let shared = SystemTime::now() - std::time::Duration::from_secs(500);
        for i in 0..4u64 {
            store.save(ArtifactKey(i), 1, &payload).unwrap();
            let f = fs::File::open(store.entry_path(ArtifactKey(i), 1)).unwrap();
            f.set_modified(shared).unwrap();
        }
        let per_entry = (HEADER_LEN + payload.len()) as u64;
        let report = store.gc(per_entry).unwrap();
        assert_eq!(report.evicted, 3);
        assert_eq!(report.kept, 1);
        assert_eq!(report.kept_bytes, per_entry);
        assert_eq!(report.freed_bytes, 3 * per_entry);
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert!(stats.total_bytes <= per_entry);
        // Exactly one of the four tied entries survived.
        let survivors = (0..4u64)
            .filter(|&i| store.load(ArtifactKey(i), 1).is_some())
            .count();
        assert_eq!(survivors, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_keeps_an_old_entry_that_was_hit_over_an_unused_newer_one() {
        // LRU is by *use*, not by creation: a load refreshes the
        // entry's mtime, so an old-but-hot entry must outlive a
        // newer-but-cold one.
        let store = temp_store("gc-hit-refresh");
        let payload = vec![0u8; 100];
        let hot = ArtifactKey(1);
        let cold = ArtifactKey(2);
        store.save(hot, 1, &payload).unwrap();
        store.save(cold, 1, &payload).unwrap();
        // Backdate both: hot is the *older* entry on disk.
        for (key, age) in [(hot, 900u64), (cold, 300)] {
            let f = fs::File::open(store.entry_path(key, 1)).unwrap();
            f.set_modified(SystemTime::now() - std::time::Duration::from_secs(age))
                .unwrap();
        }
        // A hit refreshes hot's recency past cold's.
        assert!(store.load(hot, 1).is_some());
        let per_entry = (HEADER_LEN + payload.len()) as u64;
        let report = store.gc(per_entry).unwrap();
        assert_eq!(report.evicted, 1);
        assert!(store.load(hot, 1).is_some(), "hit entry must survive gc");
        assert!(
            store.load(cold, 1).is_none(),
            "least-recently-used entry must be evicted"
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn orphaned_tmp_files_are_swept_by_clear_and_gc() {
        let store = temp_store("tmp-sweep");
        // Simulate a crashed writer's leftover staging file.
        let orphan = store.root().join("tmp").join("999-0-deadbeef.part");
        fs::write(&orphan, b"partial").unwrap();

        // gc only sweeps stale orphans (>1h); a fresh file survives.
        store.gc(u64::MAX).unwrap();
        assert!(orphan.exists());
        let f = fs::File::open(&orphan).unwrap();
        f.set_modified(SystemTime::now() - std::time::Duration::from_secs(7200))
            .unwrap();
        store.gc(u64::MAX).unwrap();
        assert!(!orphan.exists());

        // clear sweeps regardless of age.
        fs::write(&orphan, b"partial").unwrap();
        store.clear().unwrap();
        assert!(!orphan.exists());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn entries_land_in_fanout_shards() {
        let store = temp_store("shards");
        // 0x00.. and 0xff.. land in different shards; same first byte
        // shares one.
        store
            .save(ArtifactKey(0x00ab_0000_0000_0001), 1, b"a")
            .unwrap();
        store
            .save(ArtifactKey(0x00cd_0000_0000_0002), 1, b"b")
            .unwrap();
        store
            .save(ArtifactKey(0xff00_0000_0000_0003), 1, b"c")
            .unwrap();
        assert!(store.root().join("objects/00").is_dir());
        assert!(store.root().join("objects/ff").is_dir());
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.flat_entries, 0);
        let histogram = store.shard_histogram().unwrap();
        assert_eq!(
            histogram.shards,
            vec![("00".to_string(), 2), ("ff".to_string(), 1)]
        );
        let _ = fs::remove_dir_all(store.root());
    }

    /// Plants an entry in the legacy flat layout by writing it sharded
    /// and moving the file up — byte-identical to what a pre-sharding
    /// store produced.
    fn plant_flat_entry(store: &Store, key: ArtifactKey, kind: ArtifactKind, payload: &[u8]) {
        store.save(key, kind, payload).unwrap();
        fs::rename(
            store.entry_path(key, kind),
            store.flat_entry_path(key, kind),
        )
        .unwrap();
        store.prune_empty_shards();
    }

    #[test]
    fn flat_layout_entries_read_through_and_migrate_on_hit() {
        let store = temp_store("flat-readthrough");
        let key = ArtifactKey(0xaa00_0000_0000_0042);
        plant_flat_entry(&store, key, 1, b"legacy payload");
        let stats = store.stats().unwrap();
        assert_eq!((stats.entries, stats.flat_entries, stats.shards), (1, 1, 0));
        // verify sees the flat entry too.
        let report = store.verify().unwrap();
        assert_eq!(report.valid, 1);
        assert!(report.corrupt.is_empty());
        // The load hits — and migrates the entry into its shard.
        assert_eq!(store.load(key, 1).unwrap(), b"legacy payload");
        assert!(store.entry_path(key, 1).is_file());
        assert!(!store.flat_entry_path(key, 1).exists());
        let stats = store.stats().unwrap();
        assert_eq!((stats.entries, stats.flat_entries, stats.shards), (1, 0, 1));
        // Still a hit from the shard.
        assert_eq!(store.load(key, 1).unwrap(), b"legacy payload");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn save_replaces_a_stale_flat_twin() {
        let store = temp_store("flat-twin");
        let key = ArtifactKey(0xbb00_0000_0000_0007);
        plant_flat_entry(&store, key, 1, b"old");
        store.save(key, 1, b"new").unwrap();
        assert!(!store.flat_entry_path(key, 1).exists());
        assert_eq!(store.load(key, 1).unwrap(), b"new");
        assert_eq!(store.stats().unwrap().entries, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_orders_lru_across_shards_and_the_flat_layout() {
        // LRU eviction must interleave entries from different shard
        // dirs and the legacy flat layout purely by recency.
        let store = temp_store("gc-across-shards");
        let payload = vec![0u8; 100];
        let keys = [
            ArtifactKey(0x1100_0000_0000_0001), // shard 11, oldest
            ArtifactKey(0x2200_0000_0000_0002), // shard 22
            ArtifactKey(0x3300_0000_0000_0003), // flat, newest but one
            ArtifactKey(0x4400_0000_0000_0004), // shard 44, newest
        ];
        for (i, &key) in keys.iter().enumerate() {
            store.save(key, 1, &payload).unwrap();
            if i == 2 {
                fs::rename(store.entry_path(key, 1), store.flat_entry_path(key, 1)).unwrap();
            }
        }
        for (i, &key) in keys.iter().enumerate() {
            let path = if i == 2 {
                store.flat_entry_path(key, 1)
            } else {
                store.entry_path(key, 1)
            };
            let age = std::time::Duration::from_secs(1000 - 100 * i as u64);
            let f = fs::File::open(path).unwrap();
            f.set_modified(SystemTime::now() - age).unwrap();
        }
        let per_entry = (HEADER_LEN + payload.len()) as u64;
        let report = store.gc(2 * per_entry).unwrap();
        assert_eq!(report.evicted, 2);
        // The two oldest (shards 11 and 22) are gone; the flat entry and
        // shard 44 survive. Emptied shard dirs are pruned.
        assert!(store.load(keys[0], 1).is_none());
        assert!(store.load(keys[1], 1).is_none());
        assert!(store.load(keys[2], 1).is_some());
        assert!(store.load(keys[3], 1).is_some());
        assert!(!store.root().join("objects/11").exists());
        assert!(!store.root().join("objects/22").exists());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn clear_prunes_shard_directories() {
        let store = temp_store("clear-shards");
        store
            .save(ArtifactKey(0x0500_0000_0000_0001), 1, b"a")
            .unwrap();
        store
            .save(ArtifactKey(0x9900_0000_0000_0002), 1, b"b")
            .unwrap();
        store.clear().unwrap();
        assert_eq!(store.stats().unwrap().entries, 0);
        assert!(!store.root().join("objects/05").exists());
        assert!(!store.root().join("objects/99").exists());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn repair_quarantines_corrupt_entries_with_a_manifest() {
        let store = temp_store("repair");
        let good = ArtifactKey(0x1100_0000_0000_0001);
        let bad = ArtifactKey(0x2200_0000_0000_0002);
        store.save(good, 1, b"intact").unwrap();
        store.save(bad, 1, b"doomed").unwrap();
        let bad_path = store.entry_path(bad, 1);
        let mut bytes = fs::read(&bad_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&bad_path, &bytes).unwrap();

        let report = store.repair().unwrap();
        assert_eq!(report.valid, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, bad_path);
        assert!(report.quarantined[0].1.contains("checksum"));
        // The corrupt file left the data path but not the disk.
        assert!(!bad_path.exists());
        let qdir = store.root().join(QUARANTINE_DIR);
        assert!(qdir.join(Store::entry_file_name(bad, 1)).is_file());
        let manifest = fs::read_to_string(qdir.join("MANIFEST")).unwrap();
        assert!(manifest.contains("checksum mismatch"), "{manifest}");
        // After repair the store verifies clean and a second repair is
        // a no-op; the good entry still loads.
        assert!(store.verify().unwrap().corrupt.is_empty());
        assert!(store.repair().unwrap().quarantined.is_empty());
        assert_eq!(store.load(good, 1).unwrap(), b"intact");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn repair_disambiguates_flat_and_sharded_twins() {
        // A corrupt flat entry and a corrupt sharded entry share a file
        // name; both must land in quarantine under distinct names.
        let store = temp_store("repair-twins");
        let key = ArtifactKey(0x3300_0000_0000_0009);
        store.save(key, 1, b"sharded").unwrap();
        fs::copy(store.entry_path(key, 1), store.flat_entry_path(key, 1)).unwrap();
        for path in [store.entry_path(key, 1), store.flat_entry_path(key, 1)] {
            fs::write(&path, b"garbage").unwrap();
        }
        let report = store.repair().unwrap();
        assert_eq!(report.quarantined.len(), 2);
        let quarantined: Vec<_> = fs::read_dir(store.root().join(QUARANTINE_DIR))
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name() != "MANIFEST")
            .collect();
        assert_eq!(quarantined.len(), 2, "no silent overwrite");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn three_word_counters_files_from_older_builds_still_read() {
        let store = temp_store("counters-compat");
        let mut legacy = Vec::new();
        for word in [7u64, 5, 3] {
            legacy.extend_from_slice(&word.to_le_bytes());
        }
        fs::write(store.root().join(COUNTERS_FILE), &legacy).unwrap();
        let stats = store.stats().unwrap();
        assert_eq!(
            (stats.hits, stats.misses, stats.writes, stats.write_errors),
            (7, 5, 3, 0)
        );
        // A flush upgrades the file to four words in place.
        store.session_write_errors.inc();
        store.flush_counters();
        assert_eq!(
            fs::read(store.root().join(COUNTERS_FILE)).unwrap().len(),
            32
        );
        let stats = store.stats().unwrap();
        assert_eq!(stats.write_errors, 1);
        assert_eq!(stats.hits, 7);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn kind_tag_parsing() {
        assert_eq!(
            kind_from_file_name(Path::new("/x/objects/0011223344556677-k2.art")),
            Some(2)
        );
        assert_eq!(
            kind_from_file_name(Path::new("/x/objects/garbage.art")),
            None
        );
    }
}
