//! Content-addressed on-disk artifact cache for the `ndetect` workspace.
//!
//! Every table, figure, and `ndet` invocation derives the same expensive
//! artifacts — fault universes, per-fault detection sets, `nmin`
//! vectors — from the same inputs. This crate makes those derivations
//! incremental *across processes*: artifacts are serialized with a small
//! hand-rolled versioned binary codec ([`Encode`]/[`Decode`]) and stored
//! in a directory keyed by the FNV-1a hash of their canonical inputs
//! ([`ArtifactKey`], [`Store`]).
//!
//! Design constraints (no registry access, many concurrent `ndet`
//! processes, caches live for months across code changes):
//!
//! * **Self-describing entries.** Each file carries magic bytes, the
//!   codec version, an artifact kind tag, the payload length, and an
//!   FNV-1a checksum. Anything stale or damaged validates as a *miss*
//!   and is recomputed — never a panic, never a wrong answer.
//! * **Atomic publication.** Writes stage into `tmp/` and `rename(2)`
//!   into place, so readers only ever see complete entries.
//! * **Bounded size.** [`Store::gc`] evicts least-recently-used entries
//!   (hits refresh mtime) down to a byte budget.
//!
//! # Example
//!
//! ```
//! use ndetect_store::{decode_from_slice, encode_to_vec, fnv1a64, ArtifactKey, Store};
//!
//! # fn main() -> std::io::Result<()> {
//! let dir = std::env::temp_dir().join(format!("ndetect-store-doc-{}", std::process::id()));
//! let store = Store::open(&dir)?;
//! let key = ArtifactKey(fnv1a64(b"canonical inputs"));
//! store.save(key, 1, &encode_to_vec(&vec![1u64, 2, 3]))?;
//! let loaded: Vec<u64> = decode_from_slice(&store.load(key, 1).unwrap()).unwrap();
//! assert_eq!(loaded, vec![1, 2, 3]);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod hash;
mod store;

pub use codec::{
    decode_from_slice, encode_to_vec, CodecError, Decode, Decoder, Encode, Encoder, CODEC_VERSION,
};
pub use hash::{fnv1a64, ArtifactKey, Fnv64};
pub use store::{
    ArtifactKind, GcReport, RepairReport, ShardHistogram, Store, StoreStats, VerifyReport,
};
