//! Property tests for the store codec: round trips over randomly
//! generated payload shapes, and total (panic-free) decoding of
//! arbitrarily mangled bytes.

use ndetect_sim::{GoodValues, PatternSpace, VectorSet};
use ndetect_store::{decode_from_slice, encode_to_vec, ArtifactKey, Store};
use ndetect_testutil::{random_netlist, RandomNetlistConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #[test]
    fn u64_vectors_round_trip(v in prop::collection::vec(any::<u64>(), 0..64)) {
        let bytes = encode_to_vec(&v);
        prop_assert_eq!(decode_from_slice::<Vec<u64>>(&bytes).unwrap(), v);
    }

    #[test]
    fn option_u32_vectors_round_trip(v in prop::collection::vec(any::<u32>(), 0..64)) {
        // The shape of a serialized nmin vector.
        let v: Vec<Option<u32>> = v
            .into_iter()
            .map(|x| if x % 3 == 0 { None } else { Some(x) })
            .collect();
        let bytes = encode_to_vec(&v);
        prop_assert_eq!(decode_from_slice::<Vec<Option<u32>>>(&bytes).unwrap(), v);
    }

    #[test]
    fn strings_round_trip(s in any::<u64>()) {
        let s = format!("circuit-{s}-π∞");
        let bytes = encode_to_vec(&s);
        prop_assert_eq!(decode_from_slice::<String>(&bytes).unwrap(), s);
    }

    #[test]
    fn vector_sets_round_trip(seed in any::<u64>(), bits in 0usize..10) {
        // A detection set over a 2^bits pattern space with random
        // membership.
        let mut rng = StdRng::seed_from_u64(seed);
        let num_patterns = 1usize << bits;
        let set = VectorSet::from_vectors(
            num_patterns,
            (0..num_patterns).filter(|_| rng.gen_range(0..2) == 1),
        );
        let bytes = encode_to_vec(&set);
        prop_assert_eq!(decode_from_slice::<VectorSet>(&bytes).unwrap(), set);
    }

    #[test]
    fn good_values_round_trip(seed in any::<u64>(), inputs in 1usize..8) {
        let netlist = random_netlist(seed, &RandomNetlistConfig {
            num_inputs: inputs,
            num_gates: 8,
            num_outputs: 2,
        });
        let space = PatternSpace::new(netlist.num_inputs()).unwrap();
        let good = GoodValues::compute(&netlist, &space);
        let bytes = encode_to_vec(&good);
        let back: GoodValues = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back.words(), good.words());
        prop_assert_eq!(back.num_nodes(), good.num_nodes());
        prop_assert_eq!(back.num_blocks(), good.num_blocks());
    }

    #[test]
    fn mangled_payloads_never_panic(v in prop::collection::vec(any::<u64>(), 0..32),
                                    flip in any::<u64>()) {
        // Decoding arbitrary corruptions of a valid encoding either
        // succeeds (bit flips in element bytes still decode to *some*
        // Vec<u64>) or fails cleanly — it must never panic.
        let mut bytes = encode_to_vec(&v);
        if !bytes.is_empty() {
            let pos = (flip as usize) % bytes.len();
            bytes[pos] ^= 1 << (flip % 8);
            let _ = decode_from_slice::<Vec<u64>>(&bytes);
            let _ = decode_from_slice::<VectorSet>(&bytes);
            let _ = decode_from_slice::<Vec<Option<u32>>>(&bytes);
        }
        // Truncations likewise.
        let bytes = encode_to_vec(&v);
        for cut in 0..bytes.len().min(32) {
            let _ = decode_from_slice::<Vec<u64>>(&bytes[..cut]);
        }
    }
}

proptest! {
    // Shrunk case budget: each case spins up threads and touches disk.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two writers sharing one store directory (the CI stress harness
    /// in miniature): overlapping key ranges, concurrent publishes via
    /// temp-plus-rename. Afterwards every entry must verify clean and
    /// load back as one of the two writers' payloads, never a torn mix.
    #[test]
    fn two_concurrent_writers_leave_the_store_consistent(seed in any::<u64>()) {
        let dir = std::env::temp_dir().join(format!(
            "ndetect-store-race-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Two handles on one directory — the same sharing mode as two
        // `ndet` processes pointed at a common --cache-dir.
        let writer_a = Store::open(&dir).unwrap();
        let writer_b = Store::open(&dir).unwrap();

        let payload_of = |writer: u64, key: u64| -> Vec<u8> {
            let mut rng = StdRng::seed_from_u64(seed ^ (writer << 32) ^ key);
            (0..64 + (key as usize % 512)).map(|_| rng.gen_range(0..=255)).collect()
        };
        std::thread::scope(|scope| {
            for (tag, store) in [(0u64, &writer_a), (1u64, &writer_b)] {
                scope.spawn(move || {
                    // Keys 0..12 overlap fully between the writers;
                    // first-byte spread exercises distinct shards.
                    for i in 0..12u64 {
                        let key = ArtifactKey(seed.wrapping_add(i.wrapping_mul(0x0101_0101)));
                        store.save(key, 7, &payload_of(tag, i)).unwrap();
                    }
                });
            }
        });

        let fresh = Store::open(&dir).unwrap();
        let report = fresh.verify().unwrap();
        prop_assert!(report.corrupt.is_empty(), "torn entries: {:?}", report.corrupt);
        prop_assert_eq!(report.valid, 12);
        for i in 0..12u64 {
            let key = ArtifactKey(seed.wrapping_add(i.wrapping_mul(0x0101_0101)));
            let loaded = fresh.load(key, 7).expect("entry must exist");
            let wins_a = loaded == payload_of(0, i);
            let wins_b = loaded == payload_of(1, i);
            prop_assert!(wins_a || wins_b, "entry {i} is neither writer's payload");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn store_round_trips_payloads_through_disk() {
    let dir = std::env::temp_dir().join(format!("ndetect-store-proptest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    for i in 0..16u64 {
        let payload: Vec<u8> = (0..rng.gen_range(0..2048))
            .map(|_| rng.gen_range(0..=255))
            .collect();
        let key = ArtifactKey(i);
        store.save(key, 7, &payload).unwrap();
        assert_eq!(store.load(key, 7).as_deref(), Some(payload.as_slice()));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
