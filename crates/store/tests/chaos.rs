//! Fault-injection tests for the store's degradation contract: every
//! injected I/O failure must degrade to a miss or an absorbed write
//! error — never a panic, never a corrupt published entry.
//!
//! Failpoints are process-global, so these tests live in their own
//! integration-test binary and serialize on one lock; every test arms
//! sites through a guard that disarms on drop (panic included).

use ndetect_store::{decode_from_slice, encode_to_vec, ArtifactKey, Store};
use std::fs;
use std::sync::Mutex;

/// Serializes the tests in this binary and guarantees a disarmed
/// registry on entry and exit.
struct ChaosGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ndetect_chaos::disarm_all();
    }
}

fn armed(config: &str) -> ChaosGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    ndetect_chaos::disarm_all();
    ndetect_chaos::apply_config(config).expect("valid failpoint config");
    ChaosGuard(guard)
}

fn temp_store(tag: &str) -> Store {
    let dir =
        std::env::temp_dir().join(format!("ndetect-store-chaos-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

#[test]
fn every_save_failpoint_degrades_to_uncached_not_failed() {
    for site in ["store.save.create", "store.save.write", "store.save.rename"] {
        let _chaos = armed(&format!("{site}=return-err"));
        let store = temp_store("save-sites");
        let key = ArtifactKey(0xfa11);

        // The strict API surfaces the injected error...
        let err = store.save(key, 1, b"payload").unwrap_err();
        assert!(err.to_string().contains(site), "{site}: {err}");
        // ...the best-effort API absorbs it and counts it.
        store.save_best_effort(key, 1, b"payload");
        assert_eq!(store.session_write_errors(), 1, "{site}");
        // Nothing was published: the entry is a clean miss, and the
        // store's objects tree verifies clean.
        assert!(store.load(key, 1).is_none());
        let report = store.verify().unwrap();
        assert!(report.corrupt.is_empty(), "{site}: {report:?}");

        // Disarmed, the same store works again end to end.
        ndetect_chaos::disarm_all();
        store.save(key, 1, b"payload").unwrap();
        assert_eq!(store.load(key, 1).unwrap(), b"payload");
        let _ = fs::remove_dir_all(store.root());
    }
}

#[test]
fn torn_write_never_publishes_and_tmp_is_swept() {
    let _chaos = armed("store.save.write=torn-write");
    let store = temp_store("torn");
    let key = ArtifactKey(0x7041);
    store.save_best_effort(key, 1, &vec![0xabu8; 4096]);
    assert_eq!(store.session_write_errors(), 1);

    // The torn bytes exist — but only in tmp/, never in objects/.
    let tmp_files: Vec<_> = fs::read_dir(store.root().join("tmp"))
        .unwrap()
        .filter_map(Result::ok)
        .collect();
    assert_eq!(tmp_files.len(), 1, "torn staging file left behind");
    assert!(store.load(key, 1).is_none());
    assert!(store.verify().unwrap().corrupt.is_empty());
    assert!(store.repair().unwrap().quarantined.is_empty());

    // clear() sweeps the orphan like any crashed writer's leftovers.
    store.clear().unwrap();
    assert_eq!(fs::read_dir(store.root().join("tmp")).unwrap().count(), 0);
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn load_and_decode_failpoints_force_clean_misses() {
    let store = temp_store("load-miss");
    let key = ArtifactKey(0x10ad);
    store
        .save(key, 1, &encode_to_vec(&vec![1u64, 2, 3]))
        .unwrap();

    {
        let _chaos = armed("store.load=return-err");
        assert!(
            store.load(key, 1).is_none(),
            "injected read error is a miss"
        );
        assert_eq!(store.session_misses(), 1);
    }
    {
        let _chaos = armed("store.codec.decode=return-err");
        let bytes = store.load(key, 1).expect("load itself is unfailed");
        let decoded: Result<Vec<u64>, _> = decode_from_slice(&bytes);
        assert!(decoded
            .unwrap_err()
            .to_string()
            .contains("store.codec.decode"));
    }
    // Reality restored: the entry was never damaged.
    let decoded: Vec<u64> = decode_from_slice(&store.load(key, 1).unwrap()).unwrap();
    assert_eq!(decoded, vec![1, 2, 3]);
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn failed_flat_migration_still_returns_the_hit() {
    let _chaos = armed("store.migrate=return-err");
    let store = temp_store("migrate");
    let key = ArtifactKey(0xaa00_0000_0000_0077);
    // Plant a legacy flat entry: save sharded, move the file up.
    store.save(key, 1, b"legacy").unwrap();
    let flat = store
        .root()
        .join("objects")
        .join(format!("{}-k1.art", key.to_hex()));
    let sharded_dir = store.root().join("objects").join(&key.to_hex()[..2]);
    fs::rename(sharded_dir.join(format!("{}-k1.art", key.to_hex())), &flat).unwrap();
    let _ = fs::remove_dir(&sharded_dir);

    // The migration is suppressed but the caller still gets its data.
    assert_eq!(store.load(key, 1).unwrap(), b"legacy");
    assert!(flat.is_file(), "entry stays flat when migration fails");

    // Disarmed, the next hit migrates as usual.
    ndetect_chaos::disarm_all();
    assert_eq!(store.load(key, 1).unwrap(), b"legacy");
    assert!(!flat.exists(), "entry migrated into its shard");
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn counter_flush_failure_is_absorbed_and_counted() {
    let store = temp_store("flush");
    let key = ArtifactKey(0xf1u64);
    store.save(key, 1, b"x").unwrap();
    {
        let _chaos = armed("store.counters.flush=return-err");
        store.flush_counters(); // absorbs the injected failure
        assert!(
            !store.root().join("counters.bin").exists(),
            "failed flush persists nothing"
        );
        assert_eq!(store.session_write_errors(), 1);
    }
    // The next (unfailed) flush persists the absorbed error too.
    store.flush_counters();
    let stats = store.stats().unwrap();
    assert_eq!(stats.writes, 1);
    assert_eq!(stats.write_errors, 1);
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn one_shot_trigger_fails_exactly_one_save() {
    let _chaos = armed("store.save.rename=one-shot@2:return-err");
    let store = temp_store("oneshot");
    store.save_best_effort(ArtifactKey(1), 1, b"a"); // hit 1: passes
    store.save_best_effort(ArtifactKey(2), 1, b"b"); // hit 2: fails
    store.save_best_effort(ArtifactKey(3), 1, b"c"); // hit 3: passes
    assert_eq!(store.session_write_errors(), 1);
    assert!(store.load(ArtifactKey(1), 1).is_some());
    assert!(store.load(ArtifactKey(2), 1).is_none());
    assert!(store.load(ArtifactKey(3), 1).is_some());
    let _ = fs::remove_dir_all(store.root());
}
