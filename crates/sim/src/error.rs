//! Error type for simulation setup.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The circuit has too many inputs for exhaustive enumeration of its
    /// input space.
    TooManyInputs {
        /// The number of inputs requested.
        got: usize,
        /// The maximum supported ([`crate::MAX_EXHAUSTIVE_INPUTS`]).
        max: usize,
    },
    /// A vector index was outside the pattern space.
    VectorOutOfRange {
        /// The offending vector index.
        vector: usize,
        /// The number of vectors in the space.
        num_patterns: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyInputs { got, max } => write!(
                f,
                "circuit has {got} inputs; exhaustive simulation supports at most {max} \
                 (partition the circuit into output cones instead)"
            ),
            SimError::VectorOutOfRange {
                vector,
                num_patterns,
            } => write!(f, "vector {vector} outside pattern space of {num_patterns}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_partitioning_advice() {
        let e = SimError::TooManyInputs { got: 40, max: 24 };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("partition"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
