//! Reusable per-worker scratch buffers for frontier-pruned fault
//! propagation.
//!
//! The event-driven kernel in `ndetect-faults` re-simulates only the
//! nodes whose faulty values actually differ from the fault-free values:
//! it walks the fault site's precomputed CSR cone in topological order,
//! evaluates a gate only when some fanin joined the difference frontier,
//! and processes all 64-vector blocks of a gate as one contiguous
//! node-major row (so the inner loops are branch-free and vectorizable).
//! All the mutable state that needs — faulty rows, a row accumulator,
//! the detection row, and per-node frontier epoch stamps — lives here,
//! so a worker allocates it **once** and then simulates any number of
//! faults with zero further heap allocations.
//!
//! Epoch stamping replaces clearing: instead of zeroing `num_nodes`
//! stamps between faults, [`SimScratch::begin_fault`] bumps a 64-bit
//! epoch and a row is considered part of the frontier only when its
//! stamp equals the current epoch.

/// Per-worker mutable state for the event-driven fault-propagation
/// kernel: node-major faulty rows, the gate-evaluation accumulator, the
/// detection row, and frontier epoch stamps.
///
/// The fields are public because the kernel that drives them lives in
/// `ndetect-faults`; the invariants are simple and local:
///
/// * `rows[i*num_blocks..]` holds node `i`'s faulty words **only** when
///   `frontier[i] == epoch`; otherwise the fault-free words apply;
/// * `acc` and `det` are per-fault working rows of `num_blocks` words
///   (the kernel overwrites/zeroes the ranges it uses).
#[derive(Clone, Debug)]
pub struct SimScratch {
    /// Node-major faulty rows: node `i`'s words for blocks `0..B` are
    /// `rows[i*B..(i+1)*B]`, valid only while `frontier[i] == epoch`.
    pub rows: Vec<u64>,
    /// Gate-evaluation accumulator row (`num_blocks` words).
    pub acc: Vec<u64>,
    /// Detection row: per block, the OR of faulty-vs-good differences
    /// over all observed nodes (`num_blocks` words).
    pub det: Vec<u64>,
    /// Epoch stamp marking node `i`'s row as part of the current
    /// fault's difference frontier.
    pub frontier: Vec<u64>,
    /// The current fault's epoch. Starts at 0 (matching the stamp
    /// array, so nothing is on the frontier before the first
    /// [`Self::begin_fault`]).
    pub epoch: u64,
    /// Start of the block range `det` is valid for in the current fault
    /// (blocks outside `det_lo..det_hi` were never touched and read as
    /// zero).
    pub det_lo: usize,
    /// End of the valid `det` block range (exclusive).
    pub det_hi: usize,
}

impl SimScratch {
    /// Creates scratch state for a circuit with `num_nodes` nodes
    /// simulated over `num_blocks` 64-vector blocks.
    #[must_use]
    pub fn new(num_nodes: usize, num_blocks: usize) -> Self {
        SimScratch {
            rows: vec![0; num_nodes * num_blocks],
            acc: vec![0; num_blocks],
            det: vec![0; num_blocks],
            frontier: vec![0; num_nodes],
            epoch: 0,
            det_lo: 0,
            det_hi: 0,
        }
    }

    /// Starts a new fault: advances the epoch so every frontier stamp
    /// from previous faults becomes stale at once, without touching the
    /// arrays.
    pub fn begin_fault(&mut self) {
        // A u64 epoch cannot realistically wrap (2^64 faults).
        self.epoch += 1;
    }

    /// Whether this scratch matches a circuit's dimensions (used by
    /// debug assertions in the kernel).
    #[must_use]
    pub fn fits(&self, num_nodes: usize, num_blocks: usize) -> bool {
        self.frontier.len() == num_nodes
            && self.rows.len() == num_nodes * num_blocks
            && self.acc.len() == num_blocks
            && self.det.len() == num_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_scratch_has_empty_frontier() {
        let mut s = SimScratch::new(4, 3);
        assert!(s.fits(4, 3));
        assert!(!s.fits(5, 3));
        // Before the first begin_fault nothing can match the epoch...
        s.begin_fault();
        // ...and after it, stale stamps (all zero) still don't.
        assert!(s.frontier.iter().all(|&v| v != s.epoch));
    }

    #[test]
    fn begin_fault_invalidates_previous_stamps() {
        let mut s = SimScratch::new(2, 1);
        s.begin_fault();
        s.frontier[0] = s.epoch;
        assert_eq!(s.frontier[0], s.epoch);
        s.begin_fault();
        assert_ne!(s.frontier[0], s.epoch);
    }
}
