//! Reusable per-worker scratch buffers for frontier-pruned fault
//! propagation.
//!
//! The event-driven kernel in `ndetect-faults` re-simulates only the
//! nodes whose faulty values actually differ from the fault-free values:
//! it walks the fault site's precomputed CSR cone in topological order,
//! evaluates a gate only when some fanin joined the difference frontier,
//! and processes a gate's 64-vector blocks as one contiguous node-major
//! row (so the inner loops run on the chunked SIMD kernels of
//! [`crate::rows`]). All the mutable state that needs — faulty rows, a
//! row accumulator, the detection row, and per-node frontier epoch
//! stamps — lives here, so a worker allocates it **once** and then
//! simulates any number of faults with zero further heap allocations.
//!
//! Under a [`crate::MemoryBudget`], rows are **tiles**: `width` is the
//! tile width in blocks (≤ the space's block count), and the worker
//! additionally owns per-tile copies of the good-value transpose and the
//! per-edge `others` table ([`SimScratch::tile_good`] /
//! [`SimScratch::tile_others`]), regathered only when the worker moves
//! to a different tile ([`SimScratch::tile_start`] caches which one is
//! loaded). In the unbounded case `width == num_blocks`, the tile tables
//! stay empty, and the kernel reads the simulator's shared full-width
//! tables — the zero-overhead fast path.
//!
//! Epoch stamping replaces clearing: instead of zeroing `num_nodes`
//! stamps between faults, [`SimScratch::begin_fault`] bumps a 64-bit
//! epoch and a row is considered part of the frontier only when its
//! stamp equals the current epoch.

// Hot module: every word buffer comes from the `rows` data plane.
#![deny(clippy::disallowed_methods)]

use crate::rows::{zeroed_words, RowMatrix};

/// Sentinel for [`SimScratch::tile_start`]: no tile gathered yet.
pub const NO_TILE: usize = usize::MAX;

/// Per-worker mutable state for the event-driven fault-propagation
/// kernel: node-major faulty rows, the gate-evaluation accumulator, the
/// detection row, frontier epoch stamps, and (in tiled mode) the
/// worker's private tile of the good/others tables.
///
/// The fields are public because the kernel that drives them lives in
/// `ndetect-faults`; the invariants are simple and local:
///
/// * `rows.row(i)` holds node `i`'s faulty words **only** when
///   `frontier[i] == epoch`; otherwise the fault-free words apply;
/// * `acc` and `det` are per-fault working rows of `width` words (the
///   kernel overwrites/zeroes the ranges it uses);
/// * `det_lo..det_hi` are **global** block coordinates (columns are
///   `block - tile base`);
/// * `tile_good`/`tile_others` describe tile `tile_start..` only when
///   `tile_start != NO_TILE`, and are empty in full-width mode.
#[derive(Clone, Debug)]
pub struct SimScratch {
    /// Node-major faulty rows (`num_nodes × width`), row `i` valid only
    /// while `frontier[i] == epoch`.
    pub rows: RowMatrix,
    /// Gate-evaluation accumulator row (`width` words).
    pub acc: Vec<u64>,
    /// Detection row: per block column, the OR of faulty-vs-good
    /// differences over all observed nodes (`width` words).
    pub det: Vec<u64>,
    /// Epoch stamp marking node `i`'s row as part of the current
    /// fault's difference frontier.
    pub frontier: Vec<u64>,
    /// The current fault's epoch. Starts at 0 (matching the stamp
    /// array, so nothing is on the frontier before the first
    /// [`Self::begin_fault`]).
    pub epoch: u64,
    /// Start of the **global** block range `det` is valid for in the
    /// current fault (blocks outside `det_lo..det_hi` were never touched
    /// and read as zero).
    pub det_lo: usize,
    /// End of the valid `det` block range (exclusive, global).
    pub det_hi: usize,
    /// Tiled mode only: this worker's gathered slice of the good-value
    /// transpose (`num_nodes × width`), for the tile starting at block
    /// [`Self::tile_start`]. Empty in full-width mode.
    pub tile_good: RowMatrix,
    /// Tiled mode only: this worker's slice of the per-edge `others`
    /// table (`num_other_rows × width`). Empty in full-width mode.
    pub tile_others: RowMatrix,
    /// First global block of the tile currently loaded into
    /// `tile_good`/`tile_others`, or `NO_TILE` when none is.
    pub tile_start: usize,
}

impl SimScratch {
    /// Creates full-width scratch state for a circuit with `num_nodes`
    /// nodes simulated over `num_blocks` 64-vector blocks (no tile
    /// tables — the kernel reads the simulator's shared ones).
    #[must_use]
    pub fn new(num_nodes: usize, num_blocks: usize) -> Self {
        SimScratch {
            rows: RowMatrix::zeroed(num_nodes, num_blocks),
            acc: zeroed_words(num_blocks),
            det: zeroed_words(num_blocks),
            frontier: zeroed_words(num_nodes),
            epoch: 0,
            det_lo: 0,
            det_hi: 0,
            tile_good: RowMatrix::empty(),
            tile_others: RowMatrix::empty(),
            tile_start: NO_TILE,
        }
    }

    /// Creates tiled scratch state: rows are `width` blocks wide and the
    /// worker owns private `num_nodes × width` good and
    /// `num_other_rows × width` others tiles, gathered on demand by the
    /// kernel.
    #[must_use]
    pub fn new_tiled(num_nodes: usize, width: usize, num_other_rows: usize) -> Self {
        SimScratch {
            rows: RowMatrix::zeroed(num_nodes, width),
            acc: zeroed_words(width),
            det: zeroed_words(width),
            frontier: zeroed_words(num_nodes),
            epoch: 0,
            det_lo: 0,
            det_hi: 0,
            tile_good: RowMatrix::zeroed(num_nodes, width),
            tile_others: RowMatrix::zeroed(num_other_rows, width),
            tile_start: NO_TILE,
        }
    }

    /// The row width in words — the tile width in blocks (equals the
    /// space's block count in full-width mode).
    #[must_use]
    pub fn width(&self) -> usize {
        self.acc.len()
    }

    /// Whether this scratch carries private tile tables (tiled mode).
    #[must_use]
    pub fn is_tiled(&self) -> bool {
        !self.tile_good.is_empty()
    }

    /// Starts a new fault: advances the epoch so every frontier stamp
    /// from previous faults becomes stale at once, without touching the
    /// arrays.
    pub fn begin_fault(&mut self) {
        // A u64 epoch cannot realistically wrap (2^64 faults).
        self.epoch += 1;
    }

    /// Whether this scratch matches a circuit's dimensions for a given
    /// row width (used by debug assertions in the kernel).
    #[must_use]
    pub fn fits(&self, num_nodes: usize, width: usize) -> bool {
        self.frontier.len() == num_nodes
            && self.rows.num_rows() == num_nodes
            && self.rows.width() == width
            && self.acc.len() == width
            && self.det.len() == width
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may use raw vec! freely
mod tests {
    use super::*;

    #[test]
    fn fresh_scratch_has_empty_frontier() {
        let mut s = SimScratch::new(4, 3);
        assert!(s.fits(4, 3));
        assert!(!s.fits(5, 3));
        assert!(!s.is_tiled());
        assert_eq!(s.width(), 3);
        // Before the first begin_fault nothing can match the epoch...
        s.begin_fault();
        // ...and after it, stale stamps (all zero) still don't.
        assert!(s.frontier.iter().all(|&v| v != s.epoch));
    }

    #[test]
    fn begin_fault_invalidates_previous_stamps() {
        let mut s = SimScratch::new(2, 1);
        s.begin_fault();
        s.frontier[0] = s.epoch;
        assert_eq!(s.frontier[0], s.epoch);
        s.begin_fault();
        assert_ne!(s.frontier[0], s.epoch);
    }

    #[test]
    fn tiled_scratch_carries_tile_tables() {
        let s = SimScratch::new_tiled(6, 2, 9);
        assert!(s.is_tiled());
        assert!(s.fits(6, 2));
        assert_eq!(s.width(), 2);
        assert_eq!(s.tile_good.num_rows(), 6);
        assert_eq!(s.tile_good.width(), 2);
        assert_eq!(s.tile_others.num_rows(), 9);
        assert_eq!(s.tile_start, NO_TILE);
    }
}
