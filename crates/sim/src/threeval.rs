//! Three-valued (0/1/X) logic for partially specified vectors.
//!
//! The paper's Definition 2 asks whether the *common bits* of two tests
//! already detect a fault: the partial vector `tij` is specified where
//! `ti` and `tj` agree and unknown elsewhere, and is simulated with
//! pessimistic three-valued logic. This module supplies the value domain
//! ([`Trit`]), partial-vector construction ([`PartialVector`]), and
//! levelized evaluation ([`eval_trits_all`]).

use crate::space::PatternSpace;
use ndetect_netlist::{GateKind, Netlist};
use std::fmt;

/// A three-valued logic value: 0, 1, or unknown.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Trit {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / unspecified.
    #[default]
    X,
}

impl Trit {
    /// Converts a Boolean into a definite trit.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Returns the Boolean value if definite, `None` for `X`.
    #[must_use]
    pub fn to_option(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// Returns `true` if the value is `0` or `1`.
    #[must_use]
    pub fn is_definite(self) -> bool {
        self != Trit::X
    }

    /// Three-valued complement (`X` maps to `X`). An inherent method
    /// rather than `std::ops::Not` so call sites need no trait import.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            Trit::Zero => Trit::One,
            Trit::One => Trit::Zero,
            Trit::X => Trit::X,
        }
    }
}

impl From<bool> for Trit {
    fn from(b: bool) -> Self {
        Trit::from_bool(b)
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Trit::Zero => "0",
            Trit::One => "1",
            Trit::X => "X",
        })
    }
}

/// Evaluates one gate in pessimistic three-valued logic.
///
/// ```
/// use ndetect_netlist::GateKind;
/// use ndetect_sim::{eval_gate_trit, Trit};
/// // A controlling 0 forces an AND output even with an X present.
/// assert_eq!(eval_gate_trit(GateKind::And, &[Trit::Zero, Trit::X]), Trit::Zero);
/// assert_eq!(eval_gate_trit(GateKind::And, &[Trit::One, Trit::X]), Trit::X);
/// assert_eq!(eval_gate_trit(GateKind::Xor, &[Trit::One, Trit::X]), Trit::X);
/// ```
#[must_use]
pub fn eval_gate_trit(kind: GateKind, operands: &[Trit]) -> Trit {
    match kind {
        GateKind::Input => Trit::X,
        GateKind::Const0 => Trit::Zero,
        GateKind::Const1 => Trit::One,
        GateKind::Buf => operands[0],
        GateKind::Not => operands[0].not(),
        GateKind::And | GateKind::Nand => {
            let mut out = Trit::One;
            for &v in operands {
                match v {
                    Trit::Zero => {
                        out = Trit::Zero;
                        break;
                    }
                    Trit::X => out = Trit::X,
                    Trit::One => {}
                }
            }
            if kind == GateKind::Nand {
                out.not()
            } else {
                out
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut out = Trit::Zero;
            for &v in operands {
                match v {
                    Trit::One => {
                        out = Trit::One;
                        break;
                    }
                    Trit::X => out = Trit::X,
                    Trit::Zero => {}
                }
            }
            if kind == GateKind::Nor {
                out.not()
            } else {
                out
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut parity = false;
            let mut any_x = false;
            for &v in operands {
                match v {
                    Trit::X => any_x = true,
                    Trit::One => parity = !parity,
                    Trit::Zero => {}
                }
            }
            if any_x {
                Trit::X
            } else {
                let out = Trit::from_bool(parity);
                if kind == GateKind::Xnor {
                    out.not()
                } else {
                    out
                }
            }
        }
    }
}

/// Levelized three-valued evaluation of a whole netlist.
///
/// Returns the trit of every node, indexed by node id.
///
/// # Panics
///
/// Panics if `inputs.len() != netlist.num_inputs()`.
#[must_use]
pub fn eval_trits_all(netlist: &Netlist, inputs: &[Trit]) -> Vec<Trit> {
    assert_eq!(inputs.len(), netlist.num_inputs());
    let mut values = vec![Trit::X; netlist.num_nodes()];
    for (&pi, &v) in netlist.inputs().iter().zip(inputs) {
        values[pi.index()] = v;
    }
    let mut operands: Vec<Trit> = Vec::new();
    for &id in netlist.topo_order() {
        let node = netlist.node(id);
        if node.kind() == GateKind::Input {
            continue;
        }
        operands.clear();
        operands.extend(node.fanins().iter().map(|f| values[f.index()]));
        values[id.index()] = eval_gate_trit(node.kind(), &operands);
    }
    values
}

/// A partially specified input vector: each input is 0, 1, or unspecified.
///
/// The backing encoding follows the vector-integer convention of
/// [`PatternSpace`]: input `i`'s bit is bit `I-1-i`, so a fully specified
/// partial vector's `values` equal the vector index.
///
/// ```
/// use ndetect_sim::{PartialVector, PatternSpace, Trit};
/// let space = PatternSpace::new(4)?;
/// // Common bits of vectors 6 (0110) and 7 (0111): 011X.
/// let tij = PartialVector::common_bits(&space, 6, 7);
/// assert_eq!(tij.trit(0), Trit::Zero);
/// assert_eq!(tij.trit(1), Trit::One);
/// assert_eq!(tij.trit(2), Trit::One);
/// assert_eq!(tij.trit(3), Trit::X);
/// assert_eq!(tij.num_specified(), 3);
/// # Ok::<(), ndetect_sim::SimError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PartialVector {
    num_inputs: usize,
    /// Bit `I-1-i` set ⇔ input `i` is specified.
    cares: u64,
    /// Values on specified bits (0 elsewhere).
    values: u64,
}

impl PartialVector {
    /// The fully unspecified vector (all X).
    #[must_use]
    pub fn all_x(space: &PatternSpace) -> Self {
        PartialVector {
            num_inputs: space.num_inputs(),
            cares: 0,
            values: 0,
        }
    }

    /// A fully specified partial vector equal to `vector`.
    ///
    /// # Panics
    ///
    /// Panics if `vector` is outside the space.
    #[must_use]
    pub fn from_vector(space: &PatternSpace, vector: usize) -> Self {
        space.check_vector(vector).expect("vector out of range");
        let mask = if space.num_inputs() == 64 {
            u64::MAX
        } else {
            (1u64 << space.num_inputs()) - 1
        };
        PartialVector {
            num_inputs: space.num_inputs(),
            cares: mask,
            values: vector as u64,
        }
    }

    /// The paper's `tij`: specified where `ti` and `tj` agree (with their
    /// common value), unspecified elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if either vector is outside the space.
    #[must_use]
    pub fn common_bits(space: &PatternSpace, ti: usize, tj: usize) -> Self {
        space.check_vector(ti).expect("ti out of range");
        space.check_vector(tj).expect("tj out of range");
        let mask = if space.num_inputs() == 64 {
            u64::MAX
        } else {
            (1u64 << space.num_inputs()) - 1
        };
        let agree = !((ti ^ tj) as u64) & mask;
        PartialVector {
            num_inputs: space.num_inputs(),
            cares: agree,
            values: ti as u64 & agree,
        }
    }

    /// Number of inputs of the underlying space.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The trit assigned to input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    #[must_use]
    pub fn trit(&self, input: usize) -> Trit {
        assert!(input < self.num_inputs);
        let bit = self.num_inputs - 1 - input;
        if (self.cares >> bit) & 1 == 0 {
            Trit::X
        } else if (self.values >> bit) & 1 == 1 {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// All input trits, in input order (ready for [`eval_trits_all`]).
    #[must_use]
    pub fn trits(&self) -> Vec<Trit> {
        (0..self.num_inputs).map(|i| self.trit(i)).collect()
    }

    /// Number of specified (non-X) inputs.
    #[must_use]
    pub fn num_specified(&self) -> usize {
        self.cares.count_ones() as usize
    }

    /// Returns `true` if `vector` is consistent with every specified bit
    /// (i.e. `vector` is a completion of this partial vector).
    #[must_use]
    pub fn is_completion(&self, vector: usize) -> bool {
        (vector as u64 ^ self.values) & self.cares == 0
    }
}

impl fmt::Display for PartialVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.num_inputs {
            write!(f, "{}", self.trit(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_netlist::NetlistBuilder;

    #[test]
    fn trit_basics() {
        assert_eq!(Trit::from_bool(true), Trit::One);
        assert_eq!(Trit::One.not(), Trit::Zero);
        assert_eq!(Trit::X.not(), Trit::X);
        assert_eq!(Trit::X.to_option(), None);
        assert!(Trit::Zero.is_definite());
        assert!(!Trit::X.is_definite());
        assert_eq!(Trit::default(), Trit::X);
    }

    #[test]
    fn three_valued_eval_is_consistent_with_two_valued_on_definite_inputs() {
        for &kind in GateKind::all() {
            if kind.is_source() {
                continue;
            }
            let arity = if matches!(kind, GateKind::Buf | GateKind::Not) {
                1
            } else {
                3
            };
            for assign in 0..(1 << arity) {
                let bools: Vec<bool> = (0..arity).map(|j| (assign >> j) & 1 == 1).collect();
                let trits: Vec<Trit> = bools.iter().map(|&b| Trit::from_bool(b)).collect();
                assert_eq!(
                    eval_gate_trit(kind, &trits),
                    Trit::from_bool(kind.eval_bool(&bools)),
                    "{kind} {bools:?}"
                );
            }
        }
    }

    #[test]
    fn pessimism_is_sound_for_single_x() {
        // If the 3-valued result is definite, both completions of the X
        // must agree with it.
        for &kind in GateKind::all() {
            if kind.is_source() || matches!(kind, GateKind::Buf | GateKind::Not) {
                continue;
            }
            for fixed in 0..4u8 {
                let a = fixed & 1 == 1;
                let b = fixed >> 1 & 1 == 1;
                let trits = [Trit::from_bool(a), Trit::from_bool(b), Trit::X];
                let out = eval_gate_trit(kind, &trits);
                if let Some(v) = out.to_option() {
                    for x in [false, true] {
                        assert_eq!(kind.eval_bool(&[a, b, x]), v, "{kind} a={a} b={b} x={x}");
                    }
                }
            }
        }
    }

    #[test]
    fn common_bits_matches_paper_convention() {
        let space = PatternSpace::new(4).unwrap();
        // 6 = 0110, 12 = 1100 agree on inputs 1 (=1) and 3 (=0).
        let tij = PartialVector::common_bits(&space, 6, 12);
        assert_eq!(tij.trit(0), Trit::X);
        assert_eq!(tij.trit(1), Trit::One);
        assert_eq!(tij.trit(2), Trit::X);
        assert_eq!(tij.trit(3), Trit::Zero);
        assert!(tij.is_completion(6));
        assert!(tij.is_completion(12));
        assert!(!tij.is_completion(0));
        assert_eq!(tij.to_string(), "X1X0");
    }

    #[test]
    fn full_vector_is_fully_specified() {
        let space = PatternSpace::new(5).unwrap();
        let pv = PartialVector::from_vector(&space, 19);
        assert_eq!(pv.num_specified(), 5);
        assert!(pv.is_completion(19));
        assert!(!pv.is_completion(18));
        let space4 = PatternSpace::new(4).unwrap();
        let pv = PartialVector::from_vector(&space4, 6);
        assert_eq!(
            pv.trits(),
            vec![Trit::Zero, Trit::One, Trit::One, Trit::Zero]
        );
    }

    #[test]
    fn netlist_eval_with_x_inputs() {
        // g = AND(a, OR(b, c)): with a=0 the output is 0 regardless of X.
        let mut bld = NetlistBuilder::new("t");
        let a = bld.input("a");
        let b = bld.input("b");
        let c = bld.input("c");
        let o = bld.or("o", &[b, c]).unwrap();
        let g = bld.and("g", &[a, o]).unwrap();
        bld.output(g);
        let n = bld.build().unwrap();
        let vals = eval_trits_all(&n, &[Trit::Zero, Trit::X, Trit::X]);
        assert_eq!(vals[g.index()], Trit::Zero);
        let vals = eval_trits_all(&n, &[Trit::One, Trit::X, Trit::Zero]);
        assert_eq!(vals[g.index()], Trit::X);
        let vals = eval_trits_all(&n, &[Trit::One, Trit::One, Trit::X]);
        assert_eq!(vals[g.index()], Trit::One);
    }

    #[test]
    fn eval_trits_matches_bool_eval_when_fully_specified() {
        let mut bld = NetlistBuilder::new("t");
        let a = bld.input("a");
        let b = bld.input("b");
        let g1 = bld.nand("g1", &[a, b]).unwrap();
        let g2 = bld.xor("g2", &[g1, a]).unwrap();
        bld.output(g2);
        let n = bld.build().unwrap();
        for v in 0..4usize {
            let bits = [v >> 1 & 1 == 1, v & 1 == 1];
            let trits: Vec<Trit> = bits.iter().map(|&x| Trit::from_bool(x)).collect();
            let tv = eval_trits_all(&n, &trits);
            let bv = n.eval_bool_all(&bits);
            for id in n.node_ids() {
                assert_eq!(tv[id.index()], Trit::from_bool(bv[id.index()]));
            }
        }
    }
}
