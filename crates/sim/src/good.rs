//! Fault-free circuit values over the whole pattern space.

// Hot module: every word buffer comes from the `rows` data plane.
#![deny(clippy::disallowed_methods)]

use crate::rows::zeroed_words;
use crate::space::PatternSpace;
use crate::twoval::eval_gate_word;
use ndetect_netlist::{GateKind, Netlist, NodeId};

/// Fault-free ("good") values of every node on every vector of a pattern
/// space, stored block-major for cache-friendly reuse during serial fault
/// injection.
///
/// Computed once per circuit by a single levelized bit-parallel pass; the
/// fault simulators in `ndetect-faults` read (never recompute) these words
/// when evaluating activation conditions and when comparing faulty outputs
/// against good outputs.
///
/// ```
/// use ndetect_netlist::NetlistBuilder;
/// use ndetect_sim::{GoodValues, PatternSpace};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("xor2");
/// let a = b.input("a");
/// let c = b.input("c");
/// let g = b.xor("g", &[a, c])?;
/// b.output(g);
/// let n = b.build()?;
/// let space = PatternSpace::new(2)?;
/// let good = GoodValues::compute(&n, &space);
/// // Vectors 0..4 = (00,01,10,11); XOR = (0,1,1,0).
/// let outs: Vec<bool> = (0..4).map(|v| good.node_value(&space, g, v)).collect();
/// assert_eq!(outs, vec![false, true, true, false]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct GoodValues {
    /// `words[block * num_nodes + node]`.
    words: Vec<u64>,
    num_nodes: usize,
    num_blocks: usize,
}

impl GoodValues {
    /// Simulates the fault-free circuit over the entire space.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's input count disagrees with the space.
    #[must_use]
    pub fn compute(netlist: &Netlist, space: &PatternSpace) -> Self {
        Self::compute_with(netlist, space, 1)
    }

    /// Simulates the fault-free circuit with up to `num_threads` workers,
    /// sharding the 64-vector blocks across them. Blocks are independent,
    /// so the result is bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's input count disagrees with the space.
    #[must_use]
    pub fn compute_with(netlist: &Netlist, space: &PatternSpace, num_threads: usize) -> Self {
        assert_eq!(
            netlist.num_inputs(),
            space.num_inputs(),
            "netlist has {} inputs but space was built for {}",
            netlist.num_inputs(),
            space.num_inputs()
        );
        let num_nodes = netlist.num_nodes();
        let num_blocks = space.num_blocks();
        // Block-major layout: a worker's tile of blocks is one contiguous
        // run of words, so tiles concatenate back in block order.
        let words = crate::parallel::run_tiled(num_threads, num_blocks, |blocks| {
            let mut tile = zeroed_words(num_nodes * blocks.len());
            for (bi, block) in blocks.enumerate() {
                let buf = &mut tile[bi * num_nodes..(bi + 1) * num_nodes];
                for (i, &pi) in netlist.inputs().iter().enumerate() {
                    buf[pi.index()] = space.input_word(i, block);
                }
                for &id in netlist.topo_order() {
                    let node = netlist.node(id);
                    if node.kind() == GateKind::Input {
                        continue;
                    }
                    buf[id.index()] = eval_gate_word(node.kind(), node.fanins(), buf);
                }
            }
            tile
        });
        GoodValues {
            words,
            num_nodes,
            num_blocks,
        }
    }

    /// Number of simulation blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of nodes per block.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The 64 values of `node` across `block` (bit `b` is vector
    /// `block*64+b`).
    ///
    /// # Panics
    ///
    /// Panics if `block` or `node` is out of range.
    #[must_use]
    pub fn node_word(&self, block: usize, node: NodeId) -> u64 {
        self.words[block * self.num_nodes + node.index()]
    }

    /// All node words of one block (indexed by node id).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn block(&self, block: usize) -> &[u64] {
        &self.words[block * self.num_nodes..(block + 1) * self.num_nodes]
    }

    /// Direct read access to the block-major backing words
    /// (`words[block * num_nodes + node]`) — the serialization path of
    /// the on-disk artifact store.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds good values from backing words previously obtained via
    /// [`Self::words`]. Returns `None` when the word count is not
    /// exactly `num_nodes * num_blocks` — untrusted cache bytes must not
    /// be able to construct an inconsistent table.
    #[must_use]
    pub fn try_from_words(num_nodes: usize, num_blocks: usize, words: Vec<u64>) -> Option<Self> {
        if num_nodes.checked_mul(num_blocks)? != words.len() {
            return None;
        }
        Some(GoodValues {
            words,
            num_nodes,
            num_blocks,
        })
    }

    /// The good value of `node` on a single vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector is outside the space.
    #[must_use]
    pub fn node_value(&self, space: &PatternSpace, node: NodeId, vector: usize) -> bool {
        space.check_vector(vector).expect("vector out of range");
        (self.node_word(vector / 64, node) >> (vector % 64)) & 1 == 1
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may use raw vec! freely
mod tests {
    use super::*;
    use ndetect_netlist::NetlistBuilder;

    fn figure1() -> Netlist {
        let mut b = NetlistBuilder::new("figure1");
        let i1 = b.input("1");
        let i2 = b.input("2");
        let i3 = b.input("3");
        let i4 = b.input("4");
        let g9 = b.and("9", &[i1, i2]).unwrap();
        let g10 = b.and("10", &[i2, i3]).unwrap();
        let g11 = b.or("11", &[i3, i4]).unwrap();
        b.output(g9);
        b.output(g10);
        b.output(g11);
        b.build().unwrap()
    }

    #[test]
    fn matches_scalar_oracle_on_every_vector() {
        let n = figure1();
        let space = PatternSpace::new(4).unwrap();
        let good = GoodValues::compute(&n, &space);
        for v in 0..16 {
            let oracle = n.eval_bool_all(&space.vector_bits(v));
            for id in n.node_ids() {
                assert_eq!(
                    good.node_value(&space, id, v),
                    oracle[id.index()],
                    "node {} vector {v}",
                    n.node_name(id)
                );
            }
        }
    }

    #[test]
    fn multi_block_space_matches_oracle() {
        // 8-input parity chain => 4 blocks.
        let mut b = NetlistBuilder::new("parity8");
        let inputs: Vec<_> = (0..8).map(|i| b.input(format!("i{i}"))).collect();
        let g = b.xor("p", &inputs).unwrap();
        b.output(g);
        let n = b.build().unwrap();
        let space = PatternSpace::new(8).unwrap();
        let good = GoodValues::compute(&n, &space);
        assert_eq!(good.num_blocks(), 4);
        for v in 0..256 {
            let expect = (v as u32).count_ones() % 2 == 1;
            assert_eq!(good.node_value(&space, g, v), expect, "v={v}");
        }
    }

    #[test]
    fn threaded_compute_is_bit_identical() {
        // 9-input parity tree: 8 blocks to shard.
        let mut b = NetlistBuilder::new("parity9");
        let inputs: Vec<_> = (0..9).map(|i| b.input(format!("i{i}"))).collect();
        let g = b.xor("p", &inputs).unwrap();
        b.output(g);
        let n = b.build().unwrap();
        let space = PatternSpace::new(9).unwrap();
        let serial = GoodValues::compute_with(&n, &space, 1);
        for threads in [2, 3, 8, 64] {
            let sharded = GoodValues::compute_with(&n, &space, threads);
            for block in 0..space.num_blocks() {
                assert_eq!(
                    serial.block(block),
                    sharded.block(block),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn words_round_trip_through_try_from_words() {
        let n = figure1();
        let space = PatternSpace::new(4).unwrap();
        let good = GoodValues::compute(&n, &space);
        let back =
            GoodValues::try_from_words(good.num_nodes(), good.num_blocks(), good.words().to_vec())
                .unwrap();
        for block in 0..good.num_blocks() {
            assert_eq!(back.block(block), good.block(block));
        }
        assert!(GoodValues::try_from_words(3, 2, vec![0u64; 5]).is_none());
    }

    #[test]
    fn small_space_single_partial_block() {
        let mut b = NetlistBuilder::new("not1");
        let a = b.input("a");
        let g = b.not("g", a).unwrap();
        b.output(g);
        let n = b.build().unwrap();
        let space = PatternSpace::new(1).unwrap();
        let good = GoodValues::compute(&n, &space);
        assert!(good.node_value(&space, g, 0));
        assert!(!good.node_value(&space, g, 1));
    }
}
