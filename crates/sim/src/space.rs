//! The exhaustive input-vector space of a circuit.

use crate::error::SimError;

/// Upper bound on the number of inputs for which exhaustive simulation is
/// permitted (`2^24` = 16M vectors). The paper's analysis targets circuits
/// with "small numbers of inputs"; larger designs should be partitioned
/// into output cones (see `ndetect-core`'s partitioned analysis).
pub const MAX_EXHAUSTIVE_INPUTS: usize = 24;

/// Input-word masks for inputs whose value alternates within a 64-pattern
/// block. `WITHIN_WORD_MASKS[s]` is the word whose bit `b` equals bit `s`
/// of `b` — the value pattern of an input with shift `s < 6`.
const WITHIN_WORD_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA, // s = 0: period 2
    0xCCCC_CCCC_CCCC_CCCC, // s = 1: period 4
    0xF0F0_F0F0_F0F0_F0F0, // s = 2: period 8
    0xFF00_FF00_FF00_FF00, // s = 3: period 16
    0xFFFF_0000_FFFF_0000, // s = 4: period 32
    0xFFFF_FFFF_0000_0000, // s = 5: period 64
];

/// The exhaustive space `U` of all `2^I` input vectors of an `I`-input
/// circuit, organised in 64-vector blocks.
///
/// # Vector encoding
///
/// Vector `v ∈ 0..2^I` assigns input `i` (0-based, in primary-input order)
/// the value of bit `I-1-i` of `v`: **input 0 is the most significant
/// bit**. This matches the paper's decimal notation, where vector 6 of a
/// 4-input circuit is `0110` on inputs `(1,2,3,4)`.
///
/// ```
/// use ndetect_sim::PatternSpace;
/// let space = PatternSpace::new(4)?;
/// assert_eq!(space.num_patterns(), 16);
/// // Vector 6 = 0110: inputs 1 and 2 (0-based) are set.
/// assert!(!space.input_value(6, 0));
/// assert!(space.input_value(6, 1));
/// assert!(space.input_value(6, 2));
/// assert!(!space.input_value(6, 3));
/// # Ok::<(), ndetect_sim::SimError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternSpace {
    num_inputs: usize,
}

impl PatternSpace {
    /// Creates the exhaustive space for an `I`-input circuit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyInputs`] if `num_inputs` exceeds
    /// [`MAX_EXHAUSTIVE_INPUTS`].
    pub fn new(num_inputs: usize) -> Result<Self, SimError> {
        if num_inputs > MAX_EXHAUSTIVE_INPUTS {
            return Err(SimError::TooManyInputs {
                got: num_inputs,
                max: MAX_EXHAUSTIVE_INPUTS,
            });
        }
        Ok(PatternSpace { num_inputs })
    }

    /// Number of circuit inputs `I`.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of vectors, `2^I`.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        1usize << self.num_inputs
    }

    /// Number of 64-vector simulation blocks (at least 1).
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.num_patterns().div_ceil(64)
    }

    /// The word of values input `i` takes across the 64 vectors of `block`
    /// (bit `b` of the result is the input's value on vector
    /// `block*64 + b`).
    ///
    /// # Panics
    ///
    /// Panics if `input` or `block` is out of range (debug assertions).
    #[must_use]
    pub fn input_word(&self, input: usize, block: usize) -> u64 {
        debug_assert!(input < self.num_inputs);
        debug_assert!(block < self.num_blocks());
        let shift = self.num_inputs - 1 - input;
        if shift < 6 {
            WITHIN_WORD_MASKS[shift]
        } else if (block >> (shift - 6)) & 1 == 1 {
            u64::MAX
        } else {
            0
        }
    }

    /// Mask of valid vector bits in `block` (only the final block of a
    /// space with fewer than 64 vectors is partial).
    #[must_use]
    pub fn block_mask(&self, block: usize) -> u64 {
        debug_assert!(block < self.num_blocks());
        let n = self.num_patterns();
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// The value of input `i` on vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `input >= num_inputs` (debug assertions) .
    #[must_use]
    pub fn input_value(&self, vector: usize, input: usize) -> bool {
        debug_assert!(input < self.num_inputs);
        (vector >> (self.num_inputs - 1 - input)) & 1 == 1
    }

    /// Decodes a vector index into per-input values, in input order.
    #[must_use]
    pub fn vector_bits(&self, vector: usize) -> Vec<bool> {
        (0..self.num_inputs)
            .map(|i| self.input_value(vector, i))
            .collect()
    }

    /// Encodes per-input values into a vector index (inverse of
    /// [`Self::vector_bits`]).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != num_inputs`.
    #[must_use]
    pub fn vector_from_bits(&self, bits: &[bool]) -> usize {
        assert_eq!(bits.len(), self.num_inputs);
        bits.iter()
            .fold(0usize, |acc, &b| (acc << 1) | usize::from(b))
    }

    /// Validates that `vector` indexes a vector of this space.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::VectorOutOfRange`] otherwise.
    pub fn check_vector(&self, vector: usize) -> Result<(), SimError> {
        if vector < self.num_patterns() {
            Ok(())
        } else {
            Err(SimError::VectorOutOfRange {
                vector,
                num_patterns: self.num_patterns(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_oversized_spaces() {
        assert!(PatternSpace::new(MAX_EXHAUSTIVE_INPUTS).is_ok());
        assert_eq!(
            PatternSpace::new(MAX_EXHAUSTIVE_INPUTS + 1),
            Err(SimError::TooManyInputs {
                got: MAX_EXHAUSTIVE_INPUTS + 1,
                max: MAX_EXHAUSTIVE_INPUTS
            })
        );
    }

    #[test]
    fn block_counts() {
        assert_eq!(PatternSpace::new(4).unwrap().num_blocks(), 1);
        assert_eq!(PatternSpace::new(6).unwrap().num_blocks(), 1);
        assert_eq!(PatternSpace::new(7).unwrap().num_blocks(), 2);
        assert_eq!(PatternSpace::new(10).unwrap().num_blocks(), 16);
    }

    #[test]
    fn partial_block_mask() {
        let s = PatternSpace::new(4).unwrap();
        assert_eq!(s.block_mask(0), 0xFFFF);
        let s = PatternSpace::new(6).unwrap();
        assert_eq!(s.block_mask(0), u64::MAX);
    }

    #[test]
    fn input_word_agrees_with_input_value_everywhere() {
        for num_inputs in 1..=9 {
            let s = PatternSpace::new(num_inputs).unwrap();
            for block in 0..s.num_blocks() {
                for input in 0..num_inputs {
                    let w = s.input_word(input, block);
                    for bit in 0..64usize.min(s.num_patterns()) {
                        let v = block * 64 + bit;
                        if v >= s.num_patterns() {
                            break;
                        }
                        let from_word = (w >> bit) & 1 == 1;
                        assert_eq!(
                            from_word,
                            s.input_value(v, input),
                            "I={num_inputs} v={v} input={input}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vector_bits_round_trip() {
        let s = PatternSpace::new(5).unwrap();
        for v in 0..s.num_patterns() {
            assert_eq!(s.vector_from_bits(&s.vector_bits(v)), v);
        }
    }

    #[test]
    fn msb_first_convention_matches_paper() {
        // Paper: 4-input circuit, vector 6 is inputs (1,2,3,4) = 0,1,1,0.
        let s = PatternSpace::new(4).unwrap();
        assert_eq!(s.vector_bits(6), vec![false, true, true, false]);
        assert_eq!(s.vector_bits(12), vec![true, true, false, false]);
    }

    #[test]
    fn check_vector_bounds() {
        let s = PatternSpace::new(3).unwrap();
        assert!(s.check_vector(7).is_ok());
        assert!(s.check_vector(8).is_err());
    }
}
