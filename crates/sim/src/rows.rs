//! The unified block-tiled row data plane: memory budgets, tiled row
//! storage, and the chunked SIMD word kernels every hot loop in the
//! workspace runs on.
//!
//! The exhaustive spaces of the paper grow as `2^I`, so every node-major
//! table of the event-driven kernel — the good-value transpose, the
//! per-edge "other fanins" rows, the per-worker faulty rows — costs
//! `O(num_nodes × num_blocks)` words. Near the
//! [`crate::MAX_EXHAUSTIVE_INPUTS`] ceiling that is gigabytes *per
//! table*: the data plane, not the algorithm, becomes the scaling wall.
//! This module makes the data plane explicit:
//!
//! * [`MemoryBudget`] — a bound on the per-worker kernel working set.
//!   The tile width (in 64-vector blocks) is chosen as the largest `T`
//!   with `words_per_block × T × 8 ≤ budget`, so a worker streams the
//!   pattern space tile by tile instead of materializing full-width
//!   tables. `0`/unbounded keeps the PR-4 full-width fast path.
//! * [`RowMatrix`] — dense row-major `rows × width` word storage with
//!   disjoint-borrow row access, the one layout used for the transpose,
//!   the `others` table, and simulation scratch rows alike.
//! * The chunked ops ([`and_into`], [`or_diff_into`], [`popcount`], …) —
//!   an explicit SIMD inner layer: fixed-lane (`u64x4`/`u64x8`) chunks
//!   that LLVM lowers to vector instructions, with a scalar tail and a
//!   scalar (`LANES = 1`) fallback. The `*_lanes` variants expose the
//!   lane count for the `rows` micro-benchmark; production entry points
//!   are pinned to [`LANES`].
//!
//! When `std::simd` stabilizes, the `*_lanes` bodies are the single
//! place to swap `[u64; L]` chunks for `Simd<u64, L>` — see
//! the `portable_simd` feature.
//!
//! Hot modules are forbidden (by the `hot_path_lint` gate and a
//! `#![deny(clippy::disallowed_methods)]` opt-in) from allocating raw
//! `Vec<u64>` word buffers; [`zeroed_words`] and [`RowMatrix`] are the
//! sanctioned allocation points, so every word buffer in the system is
//! accounted to this data plane.

use std::fmt;

/// Environment variable providing the default memory budget when a
/// [`MemoryBudget::Auto`] is resolved (`NDETECT_MEM_BUDGET=64MiB`).
/// Accepts the same forms as [`MemoryBudget::parse`]; unparsable values
/// are ignored (auto stays unbounded).
pub const MEM_BUDGET_ENV: &str = "NDETECT_MEM_BUDGET";

/// Lane count of the production chunked kernels (`u64x8` — one AVX-512
/// register, two AVX2 registers, four NEON registers; LLVM splits the
/// fixed-size chunk to whatever the target offers).
pub const LANES: usize = 8;

/// A bound on the per-worker working set of the row kernels.
///
/// The budget governs the **kernel working set** — the node-major
/// good-value tile, the per-edge `others` tile, and the per-worker
/// scratch rows — by shrinking the tile width (see
/// [`MemoryBudget::tile_width`]). It does not bound the detection-set
/// output itself (dense bitsets of `2^I` bits per fault), which is the
/// result, not scratch.
///
/// `Auto` resolves through the [`MEM_BUDGET_ENV`] environment variable
/// and defaults to unbounded — so existing callers keep the full-width
/// fast path unless a budget is asked for. Like thread counts, budgets
/// never change results, only peak memory; they are excluded from
/// artifact-store keys.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MemoryBudget {
    /// Resolve via [`MEM_BUDGET_ENV`], else unbounded.
    #[default]
    Auto,
    /// No bound: full-width tables (the PR-4 behaviour).
    Unbounded,
    /// At most this many bytes of kernel working set per worker.
    Bytes(u64),
}

impl MemoryBudget {
    /// A budget of `bytes` bytes; `0` means unbounded.
    #[must_use]
    pub fn from_bytes(bytes: u64) -> Self {
        if bytes == 0 {
            MemoryBudget::Unbounded
        } else {
            MemoryBudget::Bytes(bytes)
        }
    }

    /// Parses a human-friendly budget: `unbounded` / `none` / `0`, a
    /// plain byte count, or a count with a binary suffix (`K`/`KiB`,
    /// `M`/`MB`/`MiB`, `G`/`GiB` — all powers of 1024,
    /// case-insensitive), e.g. `16MiB`, `1g`, `65536`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the value does not parse.
    pub fn parse(text: &str) -> Result<Self, String> {
        let t = text.trim();
        let lower = t.to_ascii_lowercase();
        if matches!(lower.as_str(), "unbounded" | "none" | "auto") {
            return Ok(if lower == "auto" {
                MemoryBudget::Auto
            } else {
                MemoryBudget::Unbounded
            });
        }
        let strip = |suffixes: &[&str]| {
            suffixes
                .iter()
                .find_map(|suf| lower.strip_suffix(suf))
                .map(str::trim)
        };
        let (digits, multiplier) = if let Some(d) = strip(&["kib", "kb", "k"]) {
            (d, 1u64 << 10)
        } else if let Some(d) = strip(&["mib", "mb", "m"]) {
            (d, 1u64 << 20)
        } else if let Some(d) = strip(&["gib", "gb", "g"]) {
            (d, 1u64 << 30)
        } else if let Some(d) = strip(&["b"]) {
            (d, 1u64)
        } else {
            (lower.as_str(), 1u64)
        };
        let value: u64 = digits
            .parse()
            .map_err(|_| format!("bad memory budget `{text}` (try 16MiB, 1G, or a byte count)"))?;
        let bytes = value
            .checked_mul(multiplier)
            .ok_or_else(|| format!("memory budget `{text}` overflows"))?;
        Ok(MemoryBudget::from_bytes(bytes))
    }

    /// The effective byte bound: `None` when unbounded. `Auto` consults
    /// [`MEM_BUDGET_ENV`] (unparsable or empty values mean unbounded).
    #[must_use]
    pub fn resolve(self) -> Option<u64> {
        match self {
            MemoryBudget::Auto => match std::env::var(MEM_BUDGET_ENV) {
                Ok(raw) => MemoryBudget::parse(&raw)
                    .ok()
                    .and_then(MemoryBudget::resolve),
                Err(_) => None,
            },
            MemoryBudget::Unbounded => None,
            MemoryBudget::Bytes(b) => Some(b),
        }
    }

    /// Whether a resolved budget actually constrains anything.
    #[must_use]
    pub fn is_bounded(self) -> bool {
        self.resolve().is_some()
    }

    /// The tile width in 64-vector blocks for a kernel whose working
    /// set costs `words_per_block` 8-byte words per block: the largest
    /// `T ≤ num_blocks` with `words_per_block × T × 8 ≤ budget`,
    /// floored at 1 (a kernel always gets at least one block of
    /// working set, even under an impossibly small budget).
    #[must_use]
    pub fn tile_width(self, words_per_block: usize, num_blocks: usize) -> usize {
        let full = num_blocks.max(1);
        match self.resolve() {
            None => full,
            Some(bytes) => {
                let per_block = (words_per_block.max(1) as u64).saturating_mul(8);
                usize::try_from(bytes / per_block)
                    .unwrap_or(usize::MAX)
                    .clamp(1, full)
            }
        }
    }
}

impl fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryBudget::Auto => write!(f, "auto"),
            MemoryBudget::Unbounded => write!(f, "unbounded"),
            MemoryBudget::Bytes(b) => {
                if b % (1 << 30) == 0 {
                    write!(f, "{}GiB", b >> 30)
                } else if b % (1 << 20) == 0 {
                    write!(f, "{}MiB", b >> 20)
                } else if b % (1 << 10) == 0 {
                    write!(f, "{}KiB", b >> 10)
                } else {
                    write!(f, "{b}B")
                }
            }
        }
    }
}

/// The cumulative data-plane allocation meter: every byte allocated
/// through the sanctioned points below, exposed as
/// `data_plane_bytes_allocated_total` in the global metrics registry.
fn allocated_bytes() -> &'static ndetect_obs::Counter {
    static CELL: std::sync::OnceLock<std::sync::Arc<ndetect_obs::Counter>> =
        std::sync::OnceLock::new();
    CELL.get_or_init(|| ndetect_obs::global().counter("data_plane_bytes_allocated_total"))
}

/// Allocates a zeroed word buffer — the **single sanctioned allocation
/// point** for simulation word buffers. Hot modules are denied raw
/// `vec![0u64; …]` allocation (see the `hot_path_lint` gate); routing
/// every word buffer through here keeps the whole data plane visible in
/// one place (and metered: see `data_plane_bytes_allocated_total`).
#[must_use]
#[allow(clippy::disallowed_methods)]
pub fn zeroed_words(len: usize) -> Vec<u64> {
    allocated_bytes().add(8 * len as u64);
    vec![0u64; len]
}

/// Allocates a zeroed `u32` counter buffer — the sanctioned allocation
/// point for per-vector counter rows (e.g. the generator's gain pass),
/// the data plane's other bulk buffer shape. Same rationale as
/// [`zeroed_words`].
#[must_use]
#[allow(clippy::disallowed_methods)]
pub fn zeroed_counts(len: usize) -> Vec<u32> {
    allocated_bytes().add(4 * len as u64);
    vec![0u32; len]
}

/// Dense row-major `rows × width` word storage: the one tile layout
/// under the good-value transpose, the per-edge `others` table, and the
/// per-worker faulty-row arena.
///
/// `width` is a tile width in 64-vector blocks; row `r`'s words are
/// contiguous, so kernels stream a node's values across the tile with
/// unit stride.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowMatrix {
    words: Vec<u64>,
    rows: usize,
    width: usize,
}

impl RowMatrix {
    /// A zeroed `rows × width` matrix.
    #[must_use]
    pub fn zeroed(rows: usize, width: usize) -> Self {
        RowMatrix {
            words: zeroed_words(rows * width),
            rows,
            width,
        }
    }

    /// A `0 × 0` matrix (the placeholder for tables a kernel mode does
    /// not use — e.g. per-scratch tile tables in full-width mode).
    #[must_use]
    pub fn empty() -> Self {
        RowMatrix {
            words: Vec::new(),
            rows: 0,
            width: 0,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Row width in words (the tile width in blocks).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether the matrix holds no words at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Row `r` as a word slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.width..(r + 1) * self.width]
    }

    /// Row `r` as a mutable word slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.words[r * self.width..(r + 1) * self.width]
    }

    /// The same column window `cols` of two **distinct** rows: `src`
    /// read-only, `dst` mutable — the disjoint split the fused gate
    /// update needs (changed-fanin row in, gate row out).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either row/column range is out of
    /// bounds.
    #[inline]
    pub fn row_window_pair(
        &mut self,
        src: usize,
        dst: usize,
        cols: std::ops::Range<usize>,
    ) -> (&[u64], &mut [u64]) {
        assert_ne!(src, dst, "row windows alias");
        assert!(cols.end <= self.width, "column window out of range");
        let (s0, d0) = (src * self.width, dst * self.width);
        if s0 < d0 {
            let (a, b) = self.words.split_at_mut(d0);
            (
                &a[s0 + cols.start..s0 + cols.end],
                &mut b[cols.start..cols.end],
            )
        } else {
            let (a, b) = self.words.split_at_mut(s0);
            (
                &b[cols.start..cols.end],
                &mut a[d0 + cols.start..d0 + cols.end],
            )
        }
    }

    /// All backing words, row-major.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// All backing words, mutable.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Rebuilds a matrix from row-major backing words; `None` when the
    /// word count is not exactly `rows × width`.
    #[must_use]
    pub fn from_words(rows: usize, width: usize, words: Vec<u64>) -> Option<Self> {
        if rows.checked_mul(width)? != words.len() {
            return None;
        }
        Some(RowMatrix { words, rows, width })
    }
}

// ---------------------------------------------------------------------
// Chunked SIMD kernels.
//
// Each op processes `L`-word chunks through a fixed-size array, which
// LLVM lowers to `L`-lane vector instructions (u64x4 ≈ AVX2, u64x8 ≈
// AVX-512 / unrolled AVX2), then finishes the remainder with a scalar
// tail. `L = 1` is the pure-scalar fallback. Production entry points pin
// `L =` [`LANES`]; the `*_lanes` variants exist for the `rows`
// micro-benchmark and for targets where a narrower width wins.
// ---------------------------------------------------------------------

/// `dst[i] = f(dst[i], src[i])` in `L`-lane chunks.
#[inline(always)]
fn zip_with_lanes<const L: usize>(dst: &mut [u64], src: &[u64], f: impl Fn(u64, u64) -> u64) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    let split = dst.len() - dst.len() % L;
    let (dh, dt) = dst.split_at_mut(split);
    let (sh, st) = src.split_at(split);
    for (dc, sc) in dh.chunks_exact_mut(L).zip(sh.chunks_exact(L)) {
        for (d, &s) in dc.iter_mut().zip(sc) {
            *d = f(*d, s);
        }
    }
    for (d, &s) in dt.iter_mut().zip(st) {
        *d = f(*d, s);
    }
}

/// Lane-parameterized `dst &= src`.
#[inline]
pub fn and_into_lanes<const L: usize>(dst: &mut [u64], src: &[u64]) {
    zip_with_lanes::<L>(dst, src, |a, b| a & b);
}

/// Lane-parameterized `dst |= src`.
#[inline]
pub fn or_into_lanes<const L: usize>(dst: &mut [u64], src: &[u64]) {
    zip_with_lanes::<L>(dst, src, |a, b| a | b);
}

/// Lane-parameterized `dst ^= src`.
#[inline]
pub fn xor_into_lanes<const L: usize>(dst: &mut [u64], src: &[u64]) {
    zip_with_lanes::<L>(dst, src, |a, b| a ^ b);
}

/// Lane-parameterized `dst &= !src`.
#[inline]
pub fn andnot_into_lanes<const L: usize>(dst: &mut [u64], src: &[u64]) {
    zip_with_lanes::<L>(dst, src, |a, b| a & !b);
}

/// Lane-parameterized popcount over a word row.
#[inline]
#[must_use]
pub fn popcount_lanes<const L: usize>(row: &[u64]) -> u64 {
    let split = row.len() - row.len() % L;
    let (head, tail) = row.split_at(split);
    let mut lanes = [0u64; L];
    for chunk in head.chunks_exact(L) {
        for (acc, &w) in lanes.iter_mut().zip(chunk) {
            *acc += u64::from(w.count_ones());
        }
    }
    let mut sum: u64 = lanes.iter().sum();
    for &w in tail {
        sum += u64::from(w.count_ones());
    }
    sum
}

/// Lane-parameterized `popcount(a & b)` (the paper's `M(g,f)` inner
/// loop).
#[inline]
#[must_use]
pub fn and_popcount_lanes<const L: usize>(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "row length mismatch");
    let split = a.len() - a.len() % L;
    let mut lanes = [0u64; L];
    for (ca, cb) in a[..split].chunks_exact(L).zip(b[..split].chunks_exact(L)) {
        for ((acc, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *acc += u64::from((x & y).count_ones());
        }
    }
    let mut sum: u64 = lanes.iter().sum();
    for (&x, &y) in a[split..].iter().zip(&b[split..]) {
        sum += u64::from((x & y).count_ones());
    }
    sum
}

/// Lane-parameterized `popcount(a & !b)` (the gain pass's
/// `|T(f) \ chosen|`).
#[inline]
#[must_use]
pub fn andnot_popcount_lanes<const L: usize>(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "row length mismatch");
    let split = a.len() - a.len() % L;
    let mut lanes = [0u64; L];
    for (ca, cb) in a[..split].chunks_exact(L).zip(b[..split].chunks_exact(L)) {
        for ((acc, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *acc += u64::from((x & !y).count_ones());
        }
    }
    let mut sum: u64 = lanes.iter().sum();
    for (&x, &y) in a[split..].iter().zip(&b[split..]) {
        sum += u64::from((x & !y).count_ones());
    }
    sum
}

/// Lane-parameterized bitwise select: `dst[i] = (a[i] & mask[i]) |
/// (b[i] & !mask[i])` — take `a` where the mask is set, else `b`.
#[inline]
pub fn select_into_lanes<const L: usize>(dst: &mut [u64], mask: &[u64], a: &[u64], b: &[u64]) {
    assert!(
        dst.len() == mask.len() && dst.len() == a.len() && dst.len() == b.len(),
        "row length mismatch"
    );
    let split = dst.len() - dst.len() % L;
    let (dh, dt) = dst.split_at_mut(split);
    let chunks = dh
        .chunks_exact_mut(L)
        .zip(mask[..split].chunks_exact(L))
        .zip(a[..split].chunks_exact(L))
        .zip(b[..split].chunks_exact(L));
    for (((dc, mc), ca), cb) in chunks {
        for (((d, &m), &x), &y) in dc.iter_mut().zip(mc).zip(ca).zip(cb) {
            *d = (x & m) | (y & !m);
        }
    }
    let tail = dt
        .iter_mut()
        .zip(&mask[split..])
        .zip(&a[split..])
        .zip(&b[split..]);
    for (((d, &m), &x), &y) in tail {
        *d = (x & m) | (y & !m);
    }
}

/// Lane-parameterized difference-accumulate: `det[i] |= a[i] ^ b[i]`,
/// returning the OR-fold of all differences (zero ⇒ the rows are
/// identical) — the detection/frontier primitive of the event kernel.
#[inline]
pub fn or_diff_into_lanes<const L: usize>(det: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
    assert!(
        det.len() == a.len() && det.len() == b.len(),
        "row length mismatch"
    );
    let split = det.len() - det.len() % L;
    let (dh, dt) = det.split_at_mut(split);
    let mut lanes = [0u64; L];
    let chunks = dh
        .chunks_exact_mut(L)
        .zip(a[..split].chunks_exact(L))
        .zip(b[..split].chunks_exact(L));
    for ((dc, ca), cb) in chunks {
        for (((d, acc), &x), &y) in dc.iter_mut().zip(lanes.iter_mut()).zip(ca).zip(cb) {
            let diff = x ^ y;
            *acc |= diff;
            *d |= diff;
        }
    }
    let mut any = lanes.iter().fold(0, |acc, &l| acc | l);
    for ((d, &x), &y) in dt.iter_mut().zip(&a[split..]).zip(&b[split..]) {
        let diff = x ^ y;
        any |= diff;
        *d |= diff;
    }
    any
}

/// Lane-parameterized `OR-fold of a ^ b` without accumulation (the
/// "did anything change" probe).
#[inline]
#[must_use]
pub fn diff_any_lanes<const L: usize>(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "row length mismatch");
    let split = a.len() - a.len() % L;
    let mut lanes = [0u64; L];
    for (ca, cb) in a[..split].chunks_exact(L).zip(b[..split].chunks_exact(L)) {
        for ((acc, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *acc |= x ^ y;
        }
    }
    let mut any = lanes.iter().fold(0, |acc, &l| acc | l);
    for (&x, &y) in a[split..].iter().zip(&b[split..]) {
        any |= x ^ y;
    }
    any
}

// Production entry points, pinned to `LANES`.

/// `dst &= src`.
#[inline]
pub fn and_into(dst: &mut [u64], src: &[u64]) {
    and_into_lanes::<LANES>(dst, src);
}

/// `dst |= src`.
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    or_into_lanes::<LANES>(dst, src);
}

/// `dst ^= src`.
#[inline]
pub fn xor_into(dst: &mut [u64], src: &[u64]) {
    xor_into_lanes::<LANES>(dst, src);
}

/// `dst &= !src`.
#[inline]
pub fn andnot_into(dst: &mut [u64], src: &[u64]) {
    andnot_into_lanes::<LANES>(dst, src);
}

/// In-place complement of a row.
#[inline]
pub fn not_in_place(row: &mut [u64]) {
    for w in row {
        *w = !*w;
    }
}

/// Popcount of a row.
#[inline]
#[must_use]
pub fn popcount(row: &[u64]) -> u64 {
    popcount_lanes::<LANES>(row)
}

/// `popcount(a & b)`.
#[inline]
#[must_use]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    and_popcount_lanes::<LANES>(a, b)
}

/// `popcount(a & !b)`.
#[inline]
#[must_use]
pub fn andnot_popcount(a: &[u64], b: &[u64]) -> u64 {
    andnot_popcount_lanes::<LANES>(a, b)
}

/// Bitwise select (see [`select_into_lanes`]).
#[inline]
pub fn select_into(dst: &mut [u64], mask: &[u64], a: &[u64], b: &[u64]) {
    select_into_lanes::<LANES>(dst, mask, a, b);
}

/// `det |= a ^ b`, returning the OR-fold of the differences.
#[inline]
pub fn or_diff_into(det: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
    or_diff_into_lanes::<LANES>(det, a, b)
}

/// OR-fold of `a ^ b`.
#[inline]
#[must_use]
pub fn diff_any(a: &[u64], b: &[u64]) -> u64 {
    diff_any_lanes::<LANES>(a, b)
}

/// The fused single-pass gate update of the event kernel's fast path:
/// `dst[i] = op(others[i], changed[i])`, OR the difference against
/// `good` into `det` when observing, and return the OR-fold of all
/// differences (zero ⇒ the gate stays off the frontier). One streaming
/// pass over four rows instead of three.
#[inline]
pub fn fused_gate_update(
    others: &[u64],
    changed: &[u64],
    good: &[u64],
    dst: &mut [u64],
    det: Option<&mut [u64]>,
    op: impl Fn(u64, u64) -> u64,
) -> u64 {
    let mut any = 0u64;
    match det {
        Some(det) => {
            for i in 0..dst.len() {
                let out = op(others[i], changed[i]);
                let diff = out ^ good[i];
                any |= diff;
                det[i] |= diff;
                dst[i] = out;
            }
        }
        None => {
            for i in 0..dst.len() {
                let out = op(others[i], changed[i]);
                any |= out ^ good[i];
                dst[i] = out;
            }
        }
    }
    any
}

/// Pairwise fold step over two rows: `dst[i] = f(dst[i], src[i])` —
/// the generic building block of the `others`-table exclusive scans.
#[inline]
pub fn fold_into(dst: &mut [u64], src: &[u64], f: impl Fn(u64, u64) -> u64) {
    zip_with_lanes::<LANES>(dst, src, f);
}

/// Hook for `std::simd`: when portable SIMD stabilizes, implementing
/// this module (behind a `portable_simd` cfg) with `Simd<u64, L>`
/// loads/stores replaces the `[u64; L]` chunk bodies above without
/// touching any call site — the lane-parameterized API is already the
/// shape `Simd` wants.
#[cfg(portable_simd)]
pub mod portable_simd {
    // Intentionally empty: `--cfg portable_simd` is reserved until
    // `std::simd` ships on stable. The chunked kernels above are the
    // stable-toolchain implementation of the same contract.
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn budget_parsing_accepts_human_forms() {
        assert_eq!(MemoryBudget::parse("0").unwrap(), MemoryBudget::Unbounded);
        assert_eq!(
            MemoryBudget::parse("unbounded").unwrap(),
            MemoryBudget::Unbounded
        );
        assert_eq!(MemoryBudget::parse("auto").unwrap(), MemoryBudget::Auto);
        assert_eq!(
            MemoryBudget::parse("65536").unwrap(),
            MemoryBudget::Bytes(65536)
        );
        assert_eq!(
            MemoryBudget::parse("16MiB").unwrap(),
            MemoryBudget::Bytes(16 << 20)
        );
        assert_eq!(
            MemoryBudget::parse("16mb").unwrap(),
            MemoryBudget::Bytes(16 << 20)
        );
        assert_eq!(
            MemoryBudget::parse("2k").unwrap(),
            MemoryBudget::Bytes(2048)
        );
        assert_eq!(
            MemoryBudget::parse("1G").unwrap(),
            MemoryBudget::Bytes(1 << 30)
        );
        assert!(MemoryBudget::parse("zebra").is_err());
        assert!(MemoryBudget::parse("12QiB").is_err());
    }

    #[test]
    fn budget_display_round_trips() {
        for b in [
            MemoryBudget::Auto,
            MemoryBudget::Unbounded,
            MemoryBudget::Bytes(16 << 20),
            MemoryBudget::Bytes(3 << 10),
            MemoryBudget::Bytes(1 << 30),
            MemoryBudget::Bytes(1234),
        ] {
            let text = b.to_string();
            assert_eq!(MemoryBudget::parse(&text).unwrap(), b, "{text}");
        }
    }

    #[test]
    fn tile_width_fits_the_budget() {
        // 100 words/block = 800 bytes/block; 4 KiB fits 5 blocks.
        let b = MemoryBudget::Bytes(4096);
        assert_eq!(b.tile_width(100, 64), 5);
        // Never wider than the space, never narrower than 1.
        assert_eq!(b.tile_width(100, 3), 3);
        assert_eq!(MemoryBudget::Bytes(1).tile_width(100, 64), 1);
        assert_eq!(MemoryBudget::Unbounded.tile_width(100, 64), 64);
        // Zero blocks still yields a sane width.
        assert_eq!(MemoryBudget::Unbounded.tile_width(100, 0), 1);
    }

    #[test]
    fn row_matrix_shapes_and_access() {
        let mut m = RowMatrix::zeroed(3, 4);
        assert_eq!((m.num_rows(), m.width()), (3, 4));
        m.row_mut(1).fill(7);
        assert_eq!(m.row(0), &[0; 4]);
        assert_eq!(m.row(1), &[7; 4]);
        let (src, dst) = m.row_window_pair(1, 2, 1..3);
        assert_eq!(src, &[7, 7]);
        dst.copy_from_slice(src);
        assert_eq!(m.row(2), &[0, 7, 7, 0]);
        // Reverse order split (src above dst).
        let (src, dst) = m.row_window_pair(2, 0, 0..4);
        dst.copy_from_slice(src);
        assert_eq!(m.row(0), &[0, 7, 7, 0]);
        assert!(RowMatrix::from_words(2, 3, vec![0; 6]).is_some());
        assert!(RowMatrix::from_words(2, 3, vec![0; 5]).is_none());
        assert!(RowMatrix::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "alias")]
    fn row_window_pair_rejects_aliasing() {
        let mut m = RowMatrix::zeroed(2, 2);
        let _ = m.row_window_pair(1, 1, 0..2);
    }

    /// Every lane width must agree with the scalar reference on an
    /// awkward length (not a multiple of any lane count).
    #[test]
    fn all_lane_widths_agree_with_scalar() {
        fn pattern(n: usize, salt: u64) -> Vec<u64> {
            (0..n as u64)
                .map(|i| {
                    (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt).wrapping_add(i.rotate_left(13))
                })
                .collect()
        }
        let n = 37;
        let a = pattern(n, 0xDEAD);
        let b = pattern(n, 0xBEEF);
        let c = pattern(n, 0x1234);

        macro_rules! check_zip {
            ($f:ident, $scalar:expr) => {{
                let reference: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| $scalar(x, y)).collect();
                let mut d1 = a.clone();
                $f::<1>(&mut d1, &b);
                let mut d4 = a.clone();
                $f::<4>(&mut d4, &b);
                let mut d8 = a.clone();
                $f::<8>(&mut d8, &b);
                assert_eq!(d1, reference, stringify!($f));
                assert_eq!(d4, reference, stringify!($f));
                assert_eq!(d8, reference, stringify!($f));
            }};
        }
        check_zip!(and_into_lanes, |x: u64, y: u64| x & y);
        check_zip!(or_into_lanes, |x: u64, y: u64| x | y);
        check_zip!(xor_into_lanes, |x: u64, y: u64| x ^ y);
        check_zip!(andnot_into_lanes, |x: u64, y: u64| x & !y);

        let pop_ref: u64 = a.iter().map(|w| u64::from(w.count_ones())).sum();
        assert_eq!(popcount_lanes::<1>(&a), pop_ref);
        assert_eq!(popcount_lanes::<4>(&a), pop_ref);
        assert_eq!(popcount_lanes::<8>(&a), pop_ref);

        let andpop_ref: u64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| u64::from((x & y).count_ones()))
            .sum();
        assert_eq!(and_popcount_lanes::<1>(&a, &b), andpop_ref);
        assert_eq!(and_popcount_lanes::<4>(&a, &b), andpop_ref);
        assert_eq!(and_popcount_lanes::<8>(&a, &b), andpop_ref);

        let andnotpop_ref: u64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| u64::from((x & !y).count_ones()))
            .sum();
        assert_eq!(andnot_popcount_lanes::<1>(&a, &b), andnotpop_ref);
        assert_eq!(andnot_popcount_lanes::<4>(&a, &b), andnotpop_ref);
        assert_eq!(andnot_popcount_lanes::<8>(&a, &b), andnotpop_ref);

        let sel_ref: Vec<u64> = (0..n).map(|i| (b[i] & a[i]) | (c[i] & !a[i])).collect();
        for lanes in [1usize, 4, 8] {
            let mut d = zeroed_words(n);
            match lanes {
                1 => select_into_lanes::<1>(&mut d, &a, &b, &c),
                4 => select_into_lanes::<4>(&mut d, &a, &b, &c),
                _ => select_into_lanes::<8>(&mut d, &a, &b, &c),
            }
            assert_eq!(d, sel_ref, "select lanes={lanes}");
        }

        let any_ref = a.iter().zip(&b).fold(0u64, |acc, (&x, &y)| acc | (x ^ y));
        assert_eq!(diff_any_lanes::<1>(&a, &b), any_ref);
        assert_eq!(diff_any_lanes::<4>(&a, &b), any_ref);
        assert_eq!(diff_any_lanes::<8>(&a, &b), any_ref);

        for lanes in [1usize, 4, 8] {
            let mut det = c.clone();
            let any = match lanes {
                1 => or_diff_into_lanes::<1>(&mut det, &a, &b),
                4 => or_diff_into_lanes::<4>(&mut det, &a, &b),
                _ => or_diff_into_lanes::<8>(&mut det, &a, &b),
            };
            assert_eq!(any, any_ref, "or_diff lanes={lanes}");
            let det_ref: Vec<u64> = (0..n).map(|i| c[i] | (a[i] ^ b[i])).collect();
            assert_eq!(det, det_ref, "or_diff det lanes={lanes}");
        }
    }

    #[test]
    fn fused_gate_update_matches_naive() {
        let others = [0b1100u64, 0b1010, u64::MAX];
        let changed = [0b1010u64, 0b0110, 0];
        let good = [0b1000u64, 0b0010, 0];
        let mut dst = [0u64; 3];
        let mut det = [0u64; 3];
        let any = fused_gate_update(
            &others,
            &changed,
            &good,
            &mut dst,
            Some(&mut det),
            |e, v| e & v,
        );
        assert_eq!(dst, [0b1000, 0b0010, 0]);
        assert_eq!(det, [0, 0, 0]);
        assert_eq!(any, 0);
        // A differing case accumulates and reports.
        let any = fused_gate_update(
            &others,
            &changed,
            &good,
            &mut dst,
            Some(&mut det),
            |e, v| e | v,
        );
        assert_ne!(any, 0);
        assert_eq!(det[0], (0b1100 | 0b1010) ^ 0b1000);
        // Without a det row the fold result is the same.
        let any2 = fused_gate_update(&others, &changed, &good, &mut dst, None, |e, v| e | v);
        assert_eq!(any2, any);
    }

    #[test]
    fn zeroed_words_is_zeroed() {
        assert_eq!(zeroed_words(5), vec![0u64; 5]);
        assert!(zeroed_words(0).is_empty());
    }

    #[test]
    fn env_resolution_prefers_explicit_budgets() {
        // Explicit budgets never consult the environment.
        assert_eq!(MemoryBudget::Bytes(10).resolve(), Some(10));
        assert_eq!(MemoryBudget::Unbounded.resolve(), None);
    }
}
