//! Dense bitsets over the vectors of a pattern space.

// Hot module: every word buffer comes from the `rows` data plane.
#![deny(clippy::disallowed_methods)]

use crate::rows;
use std::fmt;

/// A set of input vectors, stored as a dense bitset over a
/// [`crate::PatternSpace`].
///
/// This is the workspace's representation of the paper's `T(f)` (the
/// vectors detecting fault `f`) and of test sets under construction. All
/// set operations the analysis needs — membership, cardinality
/// (`N(f)`), intersection cardinality (`M(g,f)`), emptiness of
/// intersections — are O(`2^I`/64) word operations.
///
/// ```
/// use ndetect_sim::VectorSet;
/// let mut t = VectorSet::new(16);
/// t.insert(6);
/// t.insert(7);
/// assert_eq!(t.len(), 2);
/// assert!(t.contains(6));
///
/// let mut u = VectorSet::new(16);
/// u.insert(7);
/// u.insert(12);
/// assert_eq!(t.intersection_count(&u), 1);
/// assert!(t.intersects(&u));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VectorSet {
    num_patterns: usize,
    words: Vec<u64>,
}

impl VectorSet {
    /// Creates an empty set over a space of `num_patterns` vectors.
    #[must_use]
    pub fn new(num_patterns: usize) -> Self {
        VectorSet {
            num_patterns,
            words: rows::zeroed_words(num_patterns.div_ceil(64).max(1)),
        }
    }

    /// Creates a set from an iterator of vector indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= num_patterns`.
    #[must_use]
    pub fn from_vectors(num_patterns: usize, vectors: impl IntoIterator<Item = usize>) -> Self {
        let mut set = VectorSet::new(num_patterns);
        for v in vectors {
            set.insert(v);
        }
        set
    }

    /// The size of the underlying pattern space.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Adds a vector. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `vector >= num_patterns`.
    pub fn insert(&mut self, vector: usize) -> bool {
        assert!(
            vector < self.num_patterns,
            "vector {vector} outside space of {}",
            self.num_patterns
        );
        let word = &mut self.words[vector / 64];
        let bit = 1u64 << (vector % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes a vector. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `vector >= num_patterns`.
    pub fn remove(&mut self, vector: usize) -> bool {
        assert!(vector < self.num_patterns);
        let word = &mut self.words[vector / 64];
        let bit = 1u64 << (vector % 64);
        let present = *word & bit != 0;
        *word &= !bit;
        present
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, vector: usize) -> bool {
        if vector >= self.num_patterns {
            return false;
        }
        (self.words[vector / 64] >> (vector % 64)) & 1 == 1
    }

    /// Cardinality (the paper's `N(f)` when the set is `T(f)`).
    #[must_use]
    pub fn len(&self) -> usize {
        rows::popcount(&self.words) as usize
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `|self ∩ other|` (the paper's `M(g,f)`).
    ///
    /// # Panics
    ///
    /// Panics if the sets are over different spaces.
    #[must_use]
    pub fn intersection_count(&self, other: &VectorSet) -> usize {
        assert_eq!(self.num_patterns, other.num_patterns);
        rows::and_popcount(&self.words, &other.words) as usize
    }

    /// Whether the sets share any vector (early-exits on the first hit).
    ///
    /// # Panics
    ///
    /// Panics if the sets are over different spaces.
    #[must_use]
    pub fn intersects(&self, other: &VectorSet) -> bool {
        assert_eq!(self.num_patterns, other.num_patterns);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the sets are over different spaces.
    pub fn union_with(&mut self, other: &VectorSet) {
        assert_eq!(self.num_patterns, other.num_patterns);
        rows::or_into(&mut self.words, &other.words);
    }

    /// Removes every vector present in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets are over different spaces.
    pub fn subtract(&mut self, other: &VectorSet) {
        assert_eq!(self.num_patterns, other.num_patterns);
        rows::andnot_into(&mut self.words, &other.words);
    }

    /// Clears the set.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates the vectors in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    None
                } else {
                    let bit = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Collects the vectors into a sorted `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Iterates the vectors of `self` not present in `other`, ascending
    /// (the paper's `T(f) − Tk`), without allocating — the accounting
    /// primitive of the set-cover test generator, whose gain pass walks
    /// `T(f) \ chosen` for every still-deficient fault each round.
    ///
    /// # Panics
    ///
    /// Panics if the sets are over different spaces.
    pub fn iter_difference<'a>(&'a self, other: &'a VectorSet) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.num_patterns, other.num_patterns);
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(|(wi, (a, b))| {
                let mut rem = a & !b;
                std::iter::from_fn(move || {
                    if rem == 0 {
                        None
                    } else {
                        let bit = rem.trailing_zeros() as usize;
                        rem &= rem - 1;
                        Some(wi * 64 + bit)
                    }
                })
            })
    }

    /// `|self \ other|` — how many detections of `self` remain available
    /// outside `other` (word-parallel popcount, no iteration).
    ///
    /// # Panics
    ///
    /// Panics if the sets are over different spaces.
    #[must_use]
    pub fn difference_count(&self, other: &VectorSet) -> usize {
        assert_eq!(self.num_patterns, other.num_patterns);
        rows::andnot_popcount(&self.words, &other.words) as usize
    }

    /// The vectors of `self` not present in `other`, ascending (the
    /// paper's `T(f) − Tk`).
    ///
    /// # Panics
    ///
    /// Panics if the sets are over different spaces.
    #[must_use]
    pub fn difference_vec(&self, other: &VectorSet) -> Vec<usize> {
        self.iter_difference(other).collect()
    }

    /// Direct read access to the backing words (bit `v%64` of word `v/64`
    /// is vector `v`).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from backing words previously obtained via
    /// [`Self::words`] (the deserialization path of the on-disk artifact
    /// store). Returns `None` if the word count does not match the space
    /// or any bit beyond `num_patterns` is set — untrusted inputs must
    /// not be able to construct an inconsistent set.
    #[must_use]
    pub fn try_from_words(num_patterns: usize, words: Vec<u64>) -> Option<Self> {
        if words.len() != num_patterns.div_ceil(64).max(1) {
            return None;
        }
        if num_patterns % 64 != 0 || num_patterns == 0 {
            let tail = words[words.len() - 1];
            let mask = if num_patterns == 0 {
                0
            } else {
                (1u64 << (num_patterns % 64)) - 1
            };
            if tail & !mask != 0 {
                return None;
            }
        }
        Some(VectorSet {
            num_patterns,
            words,
        })
    }

    /// Builds a set directly from per-block detection words in block
    /// order, taking ownership of the buffer — the zero-copy assembly
    /// path of the fault simulators (`words[b]` holds the outcomes of
    /// vectors `b*64..b*64+64`). Bits beyond `num_patterns` in the final
    /// word are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` is not the block count of the space.
    #[must_use]
    pub fn from_block_words(num_patterns: usize, mut words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            num_patterns.div_ceil(64).max(1),
            "block count mismatch for a space of {num_patterns}"
        );
        if num_patterns % 64 != 0 {
            let tail = words.len() - 1;
            let mask = (1u64 << (num_patterns % 64)) - 1;
            words[tail] &= mask;
        } else if num_patterns == 0 {
            words[0] = 0;
        }
        VectorSet {
            num_patterns,
            words,
        }
    }

    /// Sets the backing word at index `word_index` (used by the
    /// bit-parallel fault simulator to store 64 detection outcomes at
    /// once). Bits beyond `num_patterns` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `word_index` is out of range.
    pub fn set_word(&mut self, word_index: usize, word: u64) {
        let mask = if (word_index + 1) * 64 <= self.num_patterns {
            u64::MAX
        } else if word_index * 64 >= self.num_patterns {
            0
        } else {
            (1u64 << (self.num_patterns - word_index * 64)) - 1
        };
        self.words[word_index] = word & mask;
    }
}

impl fmt::Debug for VectorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VectorSet({}/{}; ", self.len(), self.num_patterns)?;
        let mut first = true;
        for v in self.iter().take(16) {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        if self.len() > 16 {
            write!(f, ",…")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for VectorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for VectorSet {
    /// Builds a set sized to the maximum element + 1, rounded up to a
    /// power of two (convenient in tests; production code should use
    /// [`VectorSet::from_vectors`] with the true space size).
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let vectors: Vec<usize> = iter.into_iter().collect();
        let max = vectors.iter().copied().max().unwrap_or(0);
        let num_patterns = (max + 1).next_power_of_two();
        VectorSet::from_vectors(num_patterns, vectors)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may use raw vec! freely
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = VectorSet::new(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn paper_example_counts() {
        // T(f0) = {4,5,6,7}, T(g0) = {6,7}: N=4, M=2.
        let t_f0 = VectorSet::from_vectors(16, [4, 5, 6, 7]);
        let t_g0 = VectorSet::from_vectors(16, [6, 7]);
        assert_eq!(t_f0.len(), 4);
        assert_eq!(t_f0.intersection_count(&t_g0), 2);
        // nmin(g0,f0) = N - M + 1 = 3.
        assert_eq!(t_f0.len() - t_f0.intersection_count(&t_g0) + 1, 3);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = VectorSet::from_vectors(256, [200, 3, 64, 63, 65]);
        assert_eq!(s.to_vec(), vec![3, 63, 64, 65, 200]);
    }

    #[test]
    fn difference_vec_matches_manual() {
        let a = VectorSet::from_vectors(128, [1, 2, 3, 70, 90]);
        let b = VectorSet::from_vectors(128, [2, 70]);
        assert_eq!(a.difference_vec(&b), vec![1, 3, 90]);
        assert_eq!(a.difference_count(&b), 3);
        assert_eq!(a.iter_difference(&b).collect::<Vec<_>>(), vec![1, 3, 90]);
        // Difference with self is empty; with the empty set, identity.
        assert_eq!(a.difference_count(&a), 0);
        let empty = VectorSet::new(128);
        assert_eq!(a.difference_count(&empty), a.len());
        assert_eq!(a.iter_difference(&empty).collect::<Vec<_>>(), a.to_vec());
    }

    #[test]
    fn union_and_subtract() {
        let mut a = VectorSet::from_vectors(64, [1, 2]);
        let b = VectorSet::from_vectors(64, [2, 3]);
        a.union_with(&b);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        a.subtract(&b);
        assert_eq!(a.to_vec(), vec![1]);
    }

    #[test]
    fn set_word_masks_tail() {
        let mut s = VectorSet::new(16);
        s.set_word(0, u64::MAX);
        assert_eq!(s.len(), 16);
        assert!(!s.contains(16));
    }

    #[test]
    fn from_block_words_equals_set_word_assembly() {
        // Partial final word: garbage above the tail must be masked.
        let direct = VectorSet::from_block_words(100, vec![u64::MAX, u64::MAX]);
        let mut looped = VectorSet::new(100);
        looped.set_word(0, u64::MAX);
        looped.set_word(1, u64::MAX);
        assert_eq!(direct, looped);
        assert_eq!(direct.len(), 100);
        // Exact multiple of 64: nothing masked.
        let full = VectorSet::from_block_words(128, vec![3, 5]);
        assert_eq!(full.to_vec(), vec![0, 1, 64, 66]);
    }

    #[test]
    #[should_panic(expected = "block count mismatch")]
    fn from_block_words_rejects_wrong_shape() {
        let _ = VectorSet::from_block_words(100, vec![0u64; 3]);
    }

    #[test]
    fn try_from_words_validates_shape_and_tail() {
        let s = VectorSet::from_vectors(100, [0, 63, 64, 99]);
        let back = VectorSet::try_from_words(100, s.words().to_vec()).unwrap();
        assert_eq!(back, s);
        // Wrong word count.
        assert!(VectorSet::try_from_words(100, vec![0u64; 3]).is_none());
        // Set bit beyond num_patterns.
        assert!(VectorSet::try_from_words(100, vec![0, 1u64 << 40]).is_none());
        // Exact multiple of 64 needs no tail check.
        assert!(VectorSet::try_from_words(128, vec![u64::MAX; 2]).is_some());
    }

    #[test]
    fn from_iterator_sizes_to_power_of_two() {
        let s: VectorSet = [0usize, 9].into_iter().collect();
        assert_eq!(s.num_patterns(), 16);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_and_debug() {
        let s = VectorSet::from_vectors(16, [6, 7]);
        assert_eq!(s.to_string(), "{6, 7}");
        assert!(format!("{s:?}").contains("VectorSet(2/16"));
    }

    #[test]
    fn intersects_early_exit_is_consistent() {
        let a = VectorSet::from_vectors(256, [255]);
        let b = VectorSet::from_vectors(256, [255]);
        let c = VectorSet::from_vectors(256, [0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }
}
