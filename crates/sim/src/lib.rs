//! Bit-parallel logic simulation over exhaustive input spaces.
//!
//! The n-detection analysis of Pomeranz & Reddy (DATE 2005) is defined over
//! `U`, the set of **all** input vectors of a circuit. This crate provides
//! the machinery to work with `U` efficiently:
//!
//! * [`PatternSpace`] — the exhaustive space of `2^I` input vectors of an
//!   `I`-input circuit, organised as 64-vector blocks for bit-parallel
//!   simulation. Vector `v`'s value on input `i` is bit `I-1-i` of `v`
//!   (input 0 is the most significant bit, matching the paper's decimal
//!   vector notation).
//! * [`VectorSet`] — a dense bitset over the vectors of a space; the
//!   representation of the detection sets `T(f)` and of test sets.
//! * [`GoodValues`] — fault-free values of every node on every vector,
//!   computed once by levelized bit-parallel simulation and reused by all
//!   fault injections.
//! * [`SimScratch`] — reusable per-worker buffers (faulty words, epoch
//!   stamps, level-indexed frontier queues) for the event-driven fault
//!   kernel in `ndetect-faults`, so hot simulation loops perform zero
//!   heap allocations.
//! * [`rows`] — the unified block-tiled row data plane: [`RowMatrix`]
//!   tile storage, [`MemoryBudget`] working-set bounds (CLI
//!   `--mem-budget` / `NDETECT_MEM_BUDGET`), and the chunked SIMD word
//!   kernels (and/or/xor/andnot/popcount/select/diff) every hot loop in
//!   the workspace — simulation, universe build, gain pass, analysis —
//!   runs on.
//! * [`parallel`] — a scoped-thread worker pool shared by every
//!   data-parallel loop in the workspace (fault-tile and pattern-block
//!   sharding, Procedure-1 test-set construction), with one `0 = auto`
//!   thread-count convention (`NDETECT_THREADS`, then the machine).
//! * [`Trit`] / [`PartialVector`] and three-valued evaluation — the
//!   pessimistic 0/1/X logic needed by the paper's Definition 2 ("two tests
//!   count as different detections only if their common bits do not already
//!   detect the fault").
//!
//! # Example
//!
//! ```
//! use ndetect_netlist::NetlistBuilder;
//! use ndetect_sim::{GoodValues, PatternSpace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new("and2");
//! let a = b.input("a");
//! let c = b.input("c");
//! let g = b.and("g", &[a, c])?;
//! b.output(g);
//! let n = b.build()?;
//!
//! let space = PatternSpace::new(n.num_inputs())?;
//! let good = GoodValues::compute(&n, &space);
//! // Vector 3 = binary 11 -> AND output is 1.
//! assert!(good.node_value(&space, g, 3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod good;
pub mod parallel;
pub mod rows;
mod scratch;
mod set;
mod space;
mod threeval;
mod twoval;

pub use error::SimError;
pub use good::GoodValues;
pub use rows::{MemoryBudget, RowMatrix, MEM_BUDGET_ENV};
pub use scratch::SimScratch;
pub use set::VectorSet;
pub use space::{PatternSpace, MAX_EXHAUSTIVE_INPUTS};
pub use threeval::{eval_gate_trit, eval_trits_all, PartialVector, Trit};
pub use twoval::{eval_gate_word, eval_gate_word_pin_override};
