//! Two-valued bit-parallel gate evaluation.

use ndetect_netlist::{GateKind, NodeId};

/// Evaluates one gate over 64 vectors at once.
///
/// `values` is the per-node word buffer for the current block; `fanins`
/// selects the operand words. Sources (`Input`) must never be evaluated —
/// their words are filled from the pattern space by the caller.
///
/// ```
/// use ndetect_netlist::{GateKind, NodeId};
/// use ndetect_sim::eval_gate_word;
/// let values = [0b1100u64, 0b1010u64];
/// let fanins = [NodeId::new(0), NodeId::new(1)];
/// assert_eq!(eval_gate_word(GateKind::And, &fanins, &values) & 0xF, 0b1000);
/// assert_eq!(eval_gate_word(GateKind::Xor, &fanins, &values) & 0xF, 0b0110);
/// ```
///
/// # Panics
///
/// Panics (debug) if called for a source kind.
#[must_use]
pub fn eval_gate_word(kind: GateKind, fanins: &[NodeId], values: &[u64]) -> u64 {
    let mut ops = fanins.iter().map(|f| values[f.index()]);
    match kind {
        GateKind::Input => {
            debug_assert!(false, "inputs are filled by the pattern space");
            0
        }
        GateKind::Const0 => 0,
        GateKind::Const1 => u64::MAX,
        GateKind::Buf => ops.next().unwrap_or(0),
        GateKind::Not => !ops.next().unwrap_or(0),
        GateKind::And => ops.fold(u64::MAX, |acc, w| acc & w),
        GateKind::Nand => !ops.fold(u64::MAX, |acc, w| acc & w),
        GateKind::Or => ops.fold(0, |acc, w| acc | w),
        GateKind::Nor => !ops.fold(0, |acc, w| acc | w),
        GateKind::Xor => ops.fold(0, |acc, w| acc ^ w),
        GateKind::Xnor => !ops.fold(0, |acc, w| acc ^ w),
    }
}

/// Evaluates one gate over 64 vectors with the operand on pin `pin`
/// replaced by `pin_word` — the injection primitive for branch (gate-pin)
/// stuck-at faults, needing no temporary operand buffers.
///
/// All other operands are read from `values` as in [`eval_gate_word`].
///
/// # Panics
///
/// Panics (debug) if called for a source kind or with `pin` out of
/// range.
#[must_use]
pub fn eval_gate_word_pin_override(
    kind: GateKind,
    fanins: &[NodeId],
    values: &[u64],
    pin: usize,
    pin_word: u64,
) -> u64 {
    debug_assert!(pin < fanins.len(), "pin {pin} out of range");
    let mut ops = fanins.iter().enumerate().map(|(i, f)| {
        if i == pin {
            pin_word
        } else {
            values[f.index()]
        }
    });
    match kind {
        GateKind::Input => {
            debug_assert!(false, "inputs are filled by the pattern space");
            0
        }
        GateKind::Const0 => 0,
        GateKind::Const1 => u64::MAX,
        GateKind::Buf => ops.next().unwrap_or(0),
        GateKind::Not => !ops.next().unwrap_or(0),
        GateKind::And => ops.fold(u64::MAX, |acc, w| acc & w),
        GateKind::Nand => !ops.fold(u64::MAX, |acc, w| acc & w),
        GateKind::Or => ops.fold(0, |acc, w| acc | w),
        GateKind::Nor => !ops.fold(0, |acc, w| acc | w),
        GateKind::Xor => ops.fold(0, |acc, w| acc ^ w),
        GateKind::Xnor => !ops.fold(0, |acc, w| acc ^ w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_netlist::GateKind;

    fn ids(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn word_eval_matches_bool_eval_for_all_kinds_and_operands() {
        // Exhaustive check: for every gate kind with 1..=3 operands, every
        // combination of operand bits in a 8-bit window must match the
        // scalar oracle.
        for &kind in GateKind::all() {
            if kind.is_source() {
                continue;
            }
            for arity in 1..=3usize {
                if kind == GateKind::Buf || kind == GateKind::Not {
                    if arity != 1 {
                        continue;
                    }
                } else if arity < 1 {
                    continue;
                }
                // Operand words: operand j's bit p = bit j of p (so the 2^arity
                // possible operand combinations all appear among p values).
                let values: Vec<u64> = (0..arity)
                    .map(|j| {
                        let mut w = 0u64;
                        for p in 0..64u64 {
                            if (p >> j) & 1 == 1 {
                                w |= 1 << p;
                            }
                        }
                        w
                    })
                    .collect();
                let word = eval_gate_word(kind, &ids(arity), &values);
                for p in 0..64usize {
                    let operands: Vec<bool> = (0..arity).map(|j| (p >> j) & 1 == 1).collect();
                    let expect = kind.eval_bool(&operands);
                    assert_eq!((word >> p) & 1 == 1, expect, "{kind} arity={arity} p={p:b}");
                }
            }
        }
    }

    #[test]
    fn constants() {
        assert_eq!(eval_gate_word(GateKind::Const0, &[], &[]), 0);
        assert_eq!(eval_gate_word(GateKind::Const1, &[], &[]), u64::MAX);
    }

    #[test]
    fn pin_override_matches_buffer_substitution() {
        // For every kind/arity/pin: overriding pin p must equal building
        // the operand buffer by hand and calling eval_gate_word.
        let values = [0b1100_1010u64, 0b1111_0000, 0b0101_0101];
        for &kind in GateKind::all() {
            if kind.is_source() {
                continue;
            }
            let max_arity = if matches!(kind, GateKind::Buf | GateKind::Not) {
                1
            } else {
                3
            };
            for arity in 1..=max_arity {
                for pin in 0..arity {
                    for word in [0u64, u64::MAX, 0xDEAD_BEEF] {
                        let fanins = ids(arity);
                        let fast = eval_gate_word_pin_override(kind, &fanins, &values, pin, word);
                        let mut patched = values.to_vec();
                        // Route the overridden pin to a fresh slot.
                        patched.push(word);
                        let mut alt = fanins.clone();
                        alt[pin] = NodeId::new(patched.len() - 1);
                        let slow = eval_gate_word(kind, &alt, &patched);
                        assert_eq!(fast, slow, "{kind} arity={arity} pin={pin}");
                    }
                }
            }
        }
    }
}
