//! A small scoped-thread worker pool for data-parallel simulation loops.
//!
//! The whole workspace parallelizes the same way: a read-only problem
//! (`&FaultSimulator`, `&FaultUniverse`, …) is shared across workers,
//! each worker produces results for a contiguous tile of the index
//! space, and tiles are reassembled in index order — so results are
//! **bit-identical to the serial order for any thread count**. Workers
//! pull tiles from a shared atomic cursor, which keeps cores busy even
//! when per-item cost varies wildly (e.g. bridging faults whose
//! activation condition prunes most blocks).
//!
//! Thread counts follow one convention everywhere: `0` means "auto" —
//! the [`THREADS_ENV`] environment variable if set, otherwise
//! [`std::thread::available_parallelism`]. CLI `--threads` flags and
//! config fields pass their value straight to [`resolve_threads`].

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the "auto" worker count
/// (`NDETECT_THREADS=4`). Ignored when unparsable or zero.
pub const THREADS_ENV: &str = "NDETECT_THREADS";

/// How many tiles each worker gets on average; more tiles improve load
/// balance at the cost of a little scheduling traffic.
const TILES_PER_WORKER: usize = 8;

/// Resolves a requested worker count to an effective one: any positive
/// request is honoured as-is; `0` consults [`THREADS_ENV`] and then the
/// machine's available parallelism (never less than 1).
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over `0..len` split into contiguous tiles, concatenating the
/// per-tile outputs in index order.
///
/// `f` receives a sub-range and returns its outputs for that range;
/// outputs are reassembled in ascending range order, so the result is
/// identical to `f(0..len)` whenever `f` is itself index-local. With
/// `num_threads <= 1` (or a trivially small `len`) the call degrades to
/// exactly that serial invocation — no threads, no overhead.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated).
pub fn run_tiled<O, F>(num_threads: usize, len: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(Range<usize>) -> Vec<O> + Sync,
{
    run_tiled_with(num_threads, len, || (), |(), range| f(range))
}

/// Like [`run_tiled`], but each worker owns a mutable state created by
/// `init` exactly once and reused across every tile it pulls — the hook
/// that lets simulation kernels keep per-worker scratch buffers
/// allocation-free across an entire run.
///
/// The state never influences which tile a worker pulls, so results are
/// still bit-identical to the serial order for any thread count
/// (provided `f` is index-local, as for [`run_tiled`]).
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated).
pub fn run_tiled_with<S, O, I, F>(num_threads: usize, len: usize, init: I, f: F) -> Vec<O>
where
    O: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, Range<usize>) -> Vec<O> + Sync,
{
    let workers = num_threads.max(1).min(len);
    if workers <= 1 {
        let mut state = init();
        return f(&mut state, 0..len);
    }
    let tile = len.div_ceil(workers * TILES_PER_WORKER).max(1);
    let num_tiles = len.div_ceil(tile);
    let cursor = AtomicUsize::new(0);

    let mut parts: Vec<(usize, Vec<O>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut state = init();
                    let mut local: Vec<(usize, Vec<O>)> = Vec::new();
                    loop {
                        let t = cursor.fetch_add(1, Ordering::Relaxed);
                        if t >= num_tiles {
                            break;
                        }
                        let start = t * tile;
                        let end = (start + tile).min(len);
                        local.push((t, f(&mut state, start..end)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    parts.sort_unstable_by_key(|&(t, _)| t);
    // `f` may emit several outputs per index (e.g. one word per node per
    // block), so size the buffer from the parts, not from `len`.
    let total: usize = parts.iter().map(|(_, p)| p.len()).sum();
    let mut out = Vec::with_capacity(total);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    out
}

/// Parallel order-preserving map over a slice: `out[i] == f(i, &items[i])`
/// for every `i`, computed on up to `num_threads` workers.
pub fn parallel_map<T, O, F>(num_threads: usize, items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(usize, &T) -> O + Sync,
{
    run_tiled(num_threads, items.len(), |range| {
        range.map(|i| f(i, &items[i])).collect()
    })
}

/// Like [`parallel_map`], but each worker owns a mutable state created
/// by `init` once and passed to every `f` call it makes (see
/// [`run_tiled_with`]): `out[i] == f(&mut state, i, &items[i])`.
pub fn parallel_map_with<S, T, O, I, F>(num_threads: usize, items: &[T], init: I, f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> O + Sync,
{
    run_tiled_with(num_threads, items.len(), init, |state, range| {
        range.map(|i| f(state, i, &items[i])).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_for_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [0, 1, 2, 3, 7, 64] {
            let got = parallel_map(resolve_threads(threads), &items, |_, &x| x * 3 + 1);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn run_tiled_handles_degenerate_lengths() {
        let empty: Vec<usize> = run_tiled(4, 0, |r| r.collect());
        assert!(empty.is_empty());
        let one: Vec<usize> = run_tiled(4, 1, |r| r.collect());
        assert_eq!(one, vec![0]);
        let uneven: Vec<usize> = run_tiled(3, 100, |r| r.collect());
        assert_eq!(uneven, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn run_tiled_covers_every_index_exactly_once() {
        // Ranges handed to workers partition 0..len.
        let marks: Vec<usize> = run_tiled(5, 237, Iterator::collect);
        assert_eq!(marks, (0..237).collect::<Vec<_>>());
    }

    #[test]
    fn run_tiled_with_reuses_worker_state_and_preserves_order() {
        // Each worker counts its own calls in its state; outputs must be
        // order-identical to the serial map regardless of how tiles land.
        for threads in [1, 2, 5] {
            let out: Vec<usize> = run_tiled_with(
                threads,
                100,
                || 0usize,
                |calls, range| {
                    *calls += 1;
                    range.map(|i| i * 2).collect()
                },
            );
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_with_matches_parallel_map() {
        let items: Vec<usize> = (0..257).collect();
        let plain = parallel_map(3, &items, |_, &x| x + 7);
        let with_state = parallel_map_with(3, &items, || (), |(), _, &x| x + 7);
        assert_eq!(plain, with_state);
    }

    #[test]
    fn resolve_threads_honours_explicit_requests() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(0) >= 1);
    }
}
