//! Property tests for the simulation substrate: `VectorSet` against a
//! `BTreeSet` model, pattern-word consistency, and three-valued
//! pessimism.

use ndetect_sim::{eval_gate_trit, PartialVector, PatternSpace, Trit, VectorSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    /// VectorSet agrees with a BTreeSet model under a random operation
    /// sequence.
    #[test]
    fn vector_set_matches_model(
        ops in prop::collection::vec((0usize..256, prop::bool::ANY), 1..200)
    ) {
        let mut subject = VectorSet::new(256);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(subject.insert(v), model.insert(v));
            } else {
                prop_assert_eq!(subject.remove(v), model.remove(&v));
            }
        }
        prop_assert_eq!(subject.len(), model.len());
        prop_assert_eq!(subject.to_vec(), model.iter().copied().collect::<Vec<_>>());
        for v in 0..256 {
            prop_assert_eq!(subject.contains(v), model.contains(&v));
        }
    }

    /// Intersection counts agree with the model.
    #[test]
    fn intersection_count_matches_model(
        a in prop::collection::btree_set(0usize..512, 0..64),
        b in prop::collection::btree_set(0usize..512, 0..64),
    ) {
        let sa = VectorSet::from_vectors(512, a.iter().copied());
        let sb = VectorSet::from_vectors(512, b.iter().copied());
        let expect = a.intersection(&b).count();
        prop_assert_eq!(sa.intersection_count(&sb), expect);
        prop_assert_eq!(sa.intersects(&sb), expect > 0);
        let diff: Vec<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(sa.difference_vec(&sb), diff);
    }

    /// `input_word` and `input_value` agree on every (vector, input).
    #[test]
    fn pattern_words_match_scalar_bits(num_inputs in 1usize..=10) {
        let space = PatternSpace::new(num_inputs).expect("small");
        for block in 0..space.num_blocks() {
            for input in 0..num_inputs {
                let w = space.input_word(input, block);
                for bit in 0..64 {
                    let v = block * 64 + bit;
                    if v >= space.num_patterns() { break; }
                    prop_assert_eq!((w >> bit) & 1 == 1, space.input_value(v, input));
                }
            }
        }
    }

    /// Vector encoding round-trips through bits.
    #[test]
    fn vector_bits_round_trip(num_inputs in 1usize..=12, seed in any::<u64>()) {
        let space = PatternSpace::new(num_inputs).expect("small");
        let v = (seed as usize) % space.num_patterns();
        prop_assert_eq!(space.vector_from_bits(&space.vector_bits(v)), v);
    }

    /// Three-valued gate evaluation is the pessimistic abstraction of
    /// two-valued evaluation: whenever the trit result is definite, every
    /// completion of the X inputs agrees with it; whenever all inputs are
    /// definite, the results coincide.
    #[test]
    fn threeval_is_a_sound_abstraction(
        kind_idx in 0usize..8,
        trits in prop::collection::vec(0u8..3, 1..=4),
    ) {
        use ndetect_netlist::GateKind;
        const KINDS: [GateKind; 8] = [
            GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor,
            GateKind::Xor, GateKind::Xnor, GateKind::Buf, GateKind::Not,
        ];
        let kind = KINDS[kind_idx];
        let trits: Vec<Trit> = if matches!(kind, GateKind::Buf | GateKind::Not) {
            vec![match trits[0] { 0 => Trit::Zero, 1 => Trit::One, _ => Trit::X }]
        } else if trits.len() < 2 {
            return Ok(());
        } else {
            trits.iter().map(|&t| match t { 0 => Trit::Zero, 1 => Trit::One, _ => Trit::X }).collect()
        };
        let out = eval_gate_trit(kind, &trits);
        // Enumerate all completions.
        let x_positions: Vec<usize> = trits.iter().enumerate()
            .filter(|(_, t)| **t == Trit::X).map(|(i, _)| i).collect();
        let mut seen = Vec::new();
        for combo in 0..(1u32 << x_positions.len()) {
            let mut bools: Vec<bool> = trits.iter().map(|t| *t == Trit::One).collect();
            for (k, &pos) in x_positions.iter().enumerate() {
                bools[pos] = (combo >> k) & 1 == 1;
            }
            seen.push(kind.eval_bool(&bools));
        }
        match out.to_option() {
            Some(v) => prop_assert!(seen.iter().all(|&s| s == v), "{kind:?} {trits:?}"),
            None => {
                // Pessimism may report X even when completions agree (for
                // XOR-family gates it never does, but AND/OR masking can);
                // X is always *allowed*.
            }
        }
    }

    /// Common-bits vectors are exactly the specified-where-agreeing
    /// partial vectors, and both endpoints complete them.
    #[test]
    fn common_bits_properties(num_inputs in 1usize..=10, a in any::<u64>(), b in any::<u64>()) {
        let space = PatternSpace::new(num_inputs).expect("small");
        let ti = (a as usize) % space.num_patterns();
        let tj = (b as usize) % space.num_patterns();
        let tij = PartialVector::common_bits(&space, ti, tj);
        prop_assert!(tij.is_completion(ti));
        prop_assert!(tij.is_completion(tj));
        for i in 0..num_inputs {
            let vi = space.input_value(ti, i);
            let vj = space.input_value(tj, i);
            match tij.trit(i) {
                Trit::X => prop_assert_ne!(vi, vj),
                t => {
                    prop_assert_eq!(vi, vj);
                    prop_assert_eq!(t, Trit::from_bool(vi));
                }
            }
        }
        // Symmetry.
        prop_assert_eq!(tij, PartialVector::common_bits(&space, tj, ti));
    }
}
