//! The greedy set-cover n-detection generator.

use crate::artifact::{generated_key, KIND_GENERATED_SET};
use crate::compact::compact;
use ndetect_faults::FaultUniverse;
use ndetect_sim::{parallel, VectorSet};
use ndetect_store::{decode_from_slice, encode_to_vec, Store};
use std::fmt;

/// Configuration for [`generate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GenOptions {
    /// Detection target: every target fault `f` must be detected
    /// `min(n, |T(f)|)` times.
    pub n: u32,
    /// Run the reverse-order redundant-vector elimination passes after
    /// generation (never breaks the n-detection property, usually
    /// shrinks the set a little).
    pub compact: bool,
    /// Tie-breaking seed. `None` breaks equal-gain ties toward the
    /// smallest vector index; `Some(s)` breaks them by a seeded hash
    /// rank, giving a different (still deterministic) set per seed —
    /// useful for generating diverse sets of the same quality.
    pub seed: Option<u64>,
    /// Worker threads for the gain pass; `0` means auto
    /// (`NDETECT_THREADS`, then the machine's available parallelism).
    /// Results are bit-identical for every thread count.
    pub threads: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            n: 1,
            compact: false,
            seed: None,
            threads: 0,
        }
    }
}

impl GenOptions {
    /// The defaults with an explicit detection target.
    #[must_use]
    pub fn with_n(n: u32) -> Self {
        GenOptions {
            n,
            ..GenOptions::default()
        }
    }
}

/// A generated n-detection test set: vectors in insertion order, the
/// membership bitset, per-target detection counts, and the options that
/// produced it.
///
/// Invariant (established by [`generate`], preserved by [`compact`],
/// revalidated when loading from the artifact store): every target
/// fault `f` is detected at least `min(n, |T(f)|)` times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneratedSet {
    pub(crate) n: u32,
    pub(crate) seed: Option<u64>,
    pub(crate) compacted: bool,
    pub(crate) vectors: Vec<u32>,
    pub(crate) members: VectorSet,
    pub(crate) target_counts: Vec<u32>,
}

impl GeneratedSet {
    /// The detection target `n` the set was generated for.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The tie-breaking seed the set was generated with.
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Whether the compaction passes ran on this set.
    #[must_use]
    pub fn is_compacted(&self) -> bool {
        self.compacted
    }

    /// The test vectors, in insertion order.
    #[must_use]
    pub fn vectors(&self) -> &[u32] {
        &self.vectors
    }

    /// The membership bitset over the pattern space.
    #[must_use]
    pub fn as_vector_set(&self) -> &VectorSet {
        &self.members
    }

    /// Number of tests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` if the set has no tests (every target was
    /// undetectable).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The size of the underlying pattern space `|U|`.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.members.num_patterns()
    }

    /// `|T(f) ∩ T|` for target index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn target_count(&self, i: usize) -> u32 {
        self.target_counts[i]
    }

    /// All per-target detection counts, parallel to the universe's
    /// target list.
    #[must_use]
    pub fn target_counts(&self) -> &[u32] {
        &self.target_counts
    }

    /// Checks the n-detection invariant against a universe: every
    /// target `f` is detected at least `min(n, |T(f)|)` times (and the
    /// recorded counts match the membership bitset).
    #[must_use]
    pub fn satisfies(&self, universe: &FaultUniverse) -> bool {
        universe.target_sets().len() == self.target_counts.len()
            && universe
                .target_sets()
                .iter()
                .zip(&self.target_counts)
                .all(|(t_f, &count)| {
                    count as usize == t_f.intersection_count(&self.members)
                        && count as usize >= t_f.len().min(self.n as usize)
                })
    }

    /// Recomputes `target_counts` from the membership bitset (called
    /// after generation and after compaction mutates the set).
    pub(crate) fn recount(&mut self, universe: &FaultUniverse) {
        self.target_counts = universe
            .target_sets()
            .iter()
            .map(|t_f| t_f.intersection_count(&self.members) as u32)
            .collect();
    }
}

impl fmt::Display for GeneratedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.vectors.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// SplitMix64 finalizer — the seeded tie-breaking rank.
fn mix(seed: u64, v: u64) -> u64 {
    let mut z = seed ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Picks the highest-gain vector; ties go to the smallest index
/// (`seed = None`) or the smallest seeded hash rank.
fn pick_best(gain: &[u32], seed: Option<u64>) -> usize {
    let rank = |v: usize| seed.map_or(v as u64, |s| mix(s, v as u64));
    let mut best = 0usize;
    let mut best_rank = rank(0);
    for (v, &g) in gain.iter().enumerate().skip(1) {
        if g < gain[best] {
            continue;
        }
        let r = rank(v);
        if g > gain[best] || r < best_rank {
            best = v;
            best_rank = r;
        }
    }
    best
}

/// Builds a compact n-detection test set for the universe's target
/// faults by greedy set cover.
///
/// Each round accumulates, over fault tiles on the shared worker pool,
/// the **gain** of every candidate vector — how many still-deficient
/// targets it would push one detection closer to `min(n, |T(f)|)` — by
/// walking `T(f) \ chosen` word-parallel on the detection bitsets; the
/// highest-gain vector joins the set. The construction is deterministic
/// for every thread count (tiles are reassembled in index order and the
/// argmax scan is serial), and seeded tie-breaking yields deterministic
/// *diverse* sets. With `options.compact` the reverse-order
/// redundant-vector elimination passes run before returning.
///
/// Undetectable targets (empty `T(f)`) impose no requirement. The
/// greedy invariant guarantees termination: while any target is
/// deficient, some uncovered vector of its detection set has gain ≥ 1.
///
/// # Panics
///
/// Panics if `options.n == 0`.
#[must_use]
pub fn generate(universe: &FaultUniverse, options: &GenOptions) -> GeneratedSet {
    assert!(options.n >= 1, "n must be at least 1");
    let threads = parallel::resolve_threads(options.threads);
    let targets = universe.target_sets();
    let num_patterns = universe.space().num_patterns();

    // Outstanding detections per target: min(n, |T(f)|) minus the
    // detections already provided by the chosen set (0 at the start).
    let goal: Vec<u32> = targets
        .iter()
        .map(|t| (options.n as usize).min(t.len()) as u32)
        .collect();
    let mut deficit = goal;
    // Targets still short of their goal — the only ones the gain pass
    // scans; shrinks every round.
    let mut active: Vec<u32> = deficit
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d > 0)
        .map(|(fi, _)| fi as u32)
        .collect();

    let mut members = VectorSet::new(num_patterns);
    let mut vectors: Vec<u32> = Vec::new();

    while !active.is_empty() {
        // Fault-tiled gain accumulation: each worker chunk walks its
        // targets' remaining detection words (T(f) \ chosen) and scores
        // every still-available vector into one gain row. Per-fault
        // cost is uniform (every set spans the same block count), so
        // one static chunk per worker balances fine and keeps the
        // per-round allocation at `workers` rows rather than one per
        // load-balancing tile. Partial rows are summed in chunk order,
        // so the totals are identical for any thread count.
        let workers = threads.min(active.len()).max(1);
        let chunk = active.len().div_ceil(workers);
        let partials: Vec<Vec<u32>> = parallel::run_tiled(workers, workers, |chunks| {
            chunks
                .map(|w| {
                    let mut gain = vec![0u32; num_patterns];
                    // Ceil chunking can leave trailing chunks empty
                    // (e.g. 5 faults over 4 workers): clamp both ends.
                    let start = (w * chunk).min(active.len());
                    let end = ((w + 1) * chunk).min(active.len());
                    let faults = &active[start..end];
                    for &fi in faults {
                        for v in targets[fi as usize].iter_difference(&members) {
                            gain[v] += 1;
                        }
                    }
                    gain
                })
                .collect()
        });
        let gain = partials
            .into_iter()
            .reduce(|mut acc, part| {
                for (a, p) in acc.iter_mut().zip(part) {
                    *a += p;
                }
                acc
            })
            .expect("at least one chunk");
        // Vectors already chosen contribute nothing by construction
        // (iter_difference masks them), so the argmax scans `gain`
        // directly.
        let best = pick_best(&gain, options.seed);
        if gain[best] == 0 {
            // Defensively unreachable: a deficient target always has an
            // unchosen vector left in T(f).
            break;
        }
        members.insert(best);
        vectors.push(best as u32);
        active.retain(|&fi| {
            let fi = fi as usize;
            if targets[fi].contains(best) {
                deficit[fi] -= 1;
            }
            deficit[fi] > 0
        });
    }

    let mut set = GeneratedSet {
        n: options.n,
        seed: options.seed,
        compacted: false,
        vectors,
        members,
        target_counts: Vec::new(),
    };
    set.recount(universe);
    if options.compact {
        compact(&mut set, universe);
    }
    debug_assert!(set.satisfies(universe));
    set
}

/// Like [`generate`], with the content-addressed on-disk store as a
/// fast path: a valid cache entry (same universe, same semantic
/// options) skips the construction entirely; a miss generates normally
/// and populates the store best-effort. Corrupt, stale, or
/// property-violating entries are silently treated as misses.
///
/// # Panics
///
/// Panics if `options.n == 0`.
#[must_use]
pub fn generate_stored(
    universe: &FaultUniverse,
    options: &GenOptions,
    store: Option<&Store>,
) -> GeneratedSet {
    assert!(options.n >= 1, "n must be at least 1");
    let Some(store) = store else {
        return generate(universe, options);
    };
    let key = generated_key(universe, options);
    if let Some(payload) = store.load(key, KIND_GENERATED_SET) {
        if let Ok(set) = decode_from_slice::<GeneratedSet>(&payload) {
            if set.is_consistent_with(universe, options) {
                return set;
            }
        }
    }
    let set = generate(universe, options);
    let _ = store.save(key, KIND_GENERATED_SET, &encode_to_vec(&set));
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_circuits::figure1;

    fn universe() -> FaultUniverse {
        FaultUniverse::build(&figure1::netlist()).unwrap()
    }

    #[test]
    fn generated_sets_meet_the_detection_requirement() {
        let u = universe();
        for n in [1, 2, 4, 16] {
            let set = generate(&u, &GenOptions::with_n(n));
            assert!(set.satisfies(&u), "n={n}");
            for (fi, t_f) in u.target_sets().iter().enumerate() {
                assert!(
                    set.target_count(fi) as usize >= t_f.len().min(n as usize),
                    "n={n} target {fi}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_across_thread_counts() {
        let u = universe();
        let base = GenOptions::with_n(3);
        let one = generate(&u, &GenOptions { threads: 1, ..base });
        for threads in [2, 4, 7] {
            let multi = generate(&u, &GenOptions { threads, ..base });
            assert_eq!(one, multi, "threads={threads}");
        }
    }

    #[test]
    fn seeded_tie_breaking_is_deterministic_and_diverse() {
        let u = universe();
        let a = generate(
            &u,
            &GenOptions {
                n: 2,
                seed: Some(7),
                ..GenOptions::default()
            },
        );
        let b = generate(
            &u,
            &GenOptions {
                n: 2,
                seed: Some(7),
                ..GenOptions::default()
            },
        );
        assert_eq!(a, b);
        assert!(a.satisfies(&u));
        // A different seed still satisfies the property (the sets may
        // or may not differ on a circuit this small).
        let c = generate(
            &u,
            &GenOptions {
                n: 2,
                seed: Some(8),
                ..GenOptions::default()
            },
        );
        assert!(c.satisfies(&u));
    }

    #[test]
    fn sets_grow_with_n_and_stay_below_the_exhaustive_space() {
        let u = universe();
        let s1 = generate(&u, &GenOptions::with_n(1));
        let s4 = generate(&u, &GenOptions::with_n(4));
        assert!(s1.len() <= s4.len());
        assert!(s1.len() < u.space().num_patterns());
        // figure1's 16 targets are 1-coverable by a handful of vectors.
        assert!(s1.len() <= 8, "got {}", s1.len());
    }

    #[test]
    fn n_beyond_every_detection_set_saturates() {
        let u = universe();
        // n = |U| forces every target to its full detection set: the
        // union of all T(f) is required.
        let all = generate(&u, &GenOptions::with_n(u.space().num_patterns() as u32));
        for (fi, t_f) in u.target_sets().iter().enumerate() {
            assert_eq!(all.target_count(fi) as usize, t_f.len(), "target {fi}");
        }
    }

    #[test]
    #[should_panic(expected = "n must be at least 1")]
    fn zero_n_is_rejected() {
        let u = universe();
        let _ = generate(&u, &GenOptions::with_n(0));
    }

    #[test]
    fn display_lists_vectors_in_order() {
        let u = universe();
        let set = generate(&u, &GenOptions::with_n(1));
        let text = set.to_string();
        assert!(text.starts_with('[') && text.ends_with(']'));
        assert_eq!(
            text.trim_matches(['[', ']']).split_whitespace().count(),
            set.len()
        );
    }
}
