//! The greedy set-cover n-detection generator.

// Hot module: per-round gain rows are the generator's bulk memory and
// must come from the budgeted data plane (`ndetect_sim::rows`).
#![deny(clippy::disallowed_methods)]

use crate::artifact::{generated_key, KIND_GENERATED_SET};
use crate::compact::compact;
use ndetect_faults::FaultUniverse;
use ndetect_obs::trace;
use ndetect_sim::{parallel, rows, MemoryBudget, VectorSet};
use ndetect_store::{decode_from_slice, encode_to_vec, Store};
use std::fmt;
use std::ops::Range;

/// Configuration for [`generate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GenOptions {
    /// Detection target: every target fault `f` must be detected
    /// `min(n, |T(f)|)` times.
    pub n: u32,
    /// Run the reverse-order redundant-vector elimination passes after
    /// generation (never breaks the n-detection property, usually
    /// shrinks the set a little).
    pub compact: bool,
    /// Tie-breaking seed. `None` breaks equal-gain ties toward the
    /// smallest vector index; `Some(s)` breaks them by a seeded hash
    /// rank, giving a different (still deterministic) set per seed —
    /// useful for generating diverse sets of the same quality.
    pub seed: Option<u64>,
    /// Worker threads for the gain pass; `0` means auto
    /// (`NDETECT_THREADS`, then the machine's available parallelism).
    /// Results are bit-identical for every thread count.
    pub threads: usize,
    /// Per-worker memory budget for the gain pass: gain rows are
    /// accumulated over budget-sized spans of the pattern space instead
    /// of one full-width row per worker. A performance knob like
    /// [`Self::threads`] — generated sets are bit-identical for every
    /// budget, so it is excluded from the store key. `Auto` consults
    /// `NDETECT_MEM_BUDGET` and defaults to unbounded.
    pub mem_budget: MemoryBudget,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            n: 1,
            compact: false,
            seed: None,
            threads: 0,
            mem_budget: MemoryBudget::Auto,
        }
    }
}

impl GenOptions {
    /// The defaults with an explicit detection target.
    #[must_use]
    pub fn with_n(n: u32) -> Self {
        GenOptions {
            n,
            ..GenOptions::default()
        }
    }
}

/// A generated n-detection test set: vectors in insertion order, the
/// membership bitset, per-target detection counts, and the options that
/// produced it.
///
/// Invariant (established by [`generate`], preserved by [`compact`],
/// revalidated when loading from the artifact store): every target
/// fault `f` is detected at least `min(n, |T(f)|)` times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneratedSet {
    pub(crate) n: u32,
    pub(crate) seed: Option<u64>,
    pub(crate) compacted: bool,
    pub(crate) vectors: Vec<u32>,
    pub(crate) members: VectorSet,
    pub(crate) target_counts: Vec<u32>,
}

impl GeneratedSet {
    /// The detection target `n` the set was generated for.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The tie-breaking seed the set was generated with.
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Whether the compaction passes ran on this set.
    #[must_use]
    pub fn is_compacted(&self) -> bool {
        self.compacted
    }

    /// The test vectors, in insertion order.
    #[must_use]
    pub fn vectors(&self) -> &[u32] {
        &self.vectors
    }

    /// The membership bitset over the pattern space.
    #[must_use]
    pub fn as_vector_set(&self) -> &VectorSet {
        &self.members
    }

    /// Number of tests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` if the set has no tests (every target was
    /// undetectable).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The size of the underlying pattern space `|U|`.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.members.num_patterns()
    }

    /// `|T(f) ∩ T|` for target index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn target_count(&self, i: usize) -> u32 {
        self.target_counts[i]
    }

    /// All per-target detection counts, parallel to the universe's
    /// target list.
    #[must_use]
    pub fn target_counts(&self) -> &[u32] {
        &self.target_counts
    }

    /// Checks the n-detection invariant against a universe: every
    /// target `f` is detected at least `min(n, |T(f)|)` times (and the
    /// recorded counts match the membership bitset).
    #[must_use]
    pub fn satisfies(&self, universe: &FaultUniverse) -> bool {
        universe.target_sets().len() == self.target_counts.len()
            && universe
                .target_sets()
                .iter()
                .zip(&self.target_counts)
                .all(|(t_f, &count)| {
                    count as usize == t_f.intersection_count(&self.members)
                        && count as usize >= t_f.len().min(self.n as usize)
                })
    }

    /// Recomputes `target_counts` from the membership bitset (called
    /// after generation and after compaction mutates the set).
    pub(crate) fn recount(&mut self, universe: &FaultUniverse) {
        self.target_counts = universe
            .target_sets()
            .iter()
            .map(|t_f| t_f.intersection_count(&self.members) as u32)
            .collect();
    }
}

impl fmt::Display for GeneratedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.vectors.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// SplitMix64 finalizer — the seeded tie-breaking rank.
fn mix(seed: u64, v: u64) -> u64 {
    let mut z = seed ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Running argmax of the gain scan: `(vector, gain, tie-break rank)`.
type Argmax = (usize, u32, u64);

/// Folds one span of gain values (vector indices `base..base + len`)
/// into the running argmax. Spans must be folded in ascending vector
/// order; the result is then identical to a single scan of the
/// concatenated row — the highest gain wins, ties go to the smallest
/// index (`seed = None`) or the smallest seeded hash rank.
fn pick_best_span(gain: &[u32], base: usize, seed: Option<u64>, best: &mut Option<Argmax>) {
    let rank = |v: usize| seed.map_or(v as u64, |s| mix(s, v as u64));
    let mut it = gain.iter().enumerate();
    if best.is_none() {
        if let Some((v, &g)) = it.next() {
            *best = Some((base + v, g, rank(base + v)));
        }
    }
    let Some((best_v, best_gain, best_rank)) = best.as_mut() else {
        return;
    };
    for (v, &g) in it {
        if g < *best_gain {
            continue;
        }
        let r = rank(base + v);
        if g > *best_gain || r < *best_rank {
            *best_v = base + v;
            *best_gain = g;
            *best_rank = r;
        }
    }
}

/// One 64-vector block's worth of gain counters (64 × `u32`) in u64
/// words — the unit the memory budget meters the gain pass in: a
/// worker's span row costs `8 · GAIN_WORDS_PER_BLOCK · span_blocks`
/// bytes.
const GAIN_WORDS_PER_BLOCK: usize = 32;

/// Accumulates the gain of every candidate vector in one span of
/// 64-vector blocks: each worker chunk of the active fault list walks
/// its targets' remaining detection words (`T(f) \ chosen`) restricted
/// to the span and scores them into a span-local gain row. Per-fault
/// cost is uniform (every set spans the same block count), so one
/// static chunk per worker balances fine and keeps the per-span
/// allocation at `workers` rows. Partial rows are summed in chunk
/// order, so the totals are identical for any thread count.
fn gain_for_span(
    targets: &[VectorSet],
    active: &[u32],
    members: &VectorSet,
    threads: usize,
    span: Range<usize>,
) -> Vec<u32> {
    let len = span.len() * 64;
    let base = span.start * 64;
    let workers = threads.min(active.len()).max(1);
    let chunk = active.len().div_ceil(workers);
    let partials: Vec<Vec<u32>> = parallel::run_tiled(workers, workers, |chunks| {
        chunks
            .map(|w| {
                let mut gain = rows::zeroed_counts(len);
                // Ceil chunking can leave trailing chunks empty
                // (e.g. 5 faults over 4 workers): clamp both ends.
                let start = (w * chunk).min(active.len());
                let end = ((w + 1) * chunk).min(active.len());
                for &fi in &active[start..end] {
                    let t_words = targets[fi as usize].words();
                    let m_words = members.words();
                    for b in span.clone() {
                        // Tail bits past |U| are zero by the VectorSet
                        // invariant, so they never score.
                        let mut word = t_words[b] & !m_words[b];
                        while word != 0 {
                            gain[b * 64 + word.trailing_zeros() as usize - base] += 1;
                            word &= word - 1;
                        }
                    }
                }
                gain
            })
            .collect()
    });
    partials
        .into_iter()
        .reduce(|mut acc, part| {
            for (a, p) in acc.iter_mut().zip(part) {
                *a += p;
            }
            acc
        })
        .expect("at least one chunk")
}

/// Builds a compact n-detection test set for the universe's target
/// faults by greedy set cover.
///
/// Each round accumulates, over fault tiles on the shared worker pool,
/// the **gain** of every candidate vector — how many still-deficient
/// targets it would push one detection closer to `min(n, |T(f)|)` — by
/// walking `T(f) \ chosen` word-parallel on the detection bitsets; the
/// highest-gain vector joins the set. Under a bounded
/// [`GenOptions::mem_budget`] the gain rows are streamed over
/// budget-sized spans of the pattern space instead of held full-width
/// per worker. The construction is deterministic for every thread count
/// and budget (tiles are reassembled in index order, spans are folded
/// into the argmax in ascending vector order, and the argmax scan is
/// serial), and seeded tie-breaking yields deterministic *diverse*
/// sets. With `options.compact` the reverse-order redundant-vector
/// elimination passes run before returning.
///
/// Undetectable targets (empty `T(f)`) impose no requirement. The
/// greedy invariant guarantees termination: while any target is
/// deficient, some uncovered vector of its detection set has gain ≥ 1.
///
/// # Panics
///
/// Panics if `options.n == 0`.
#[must_use]
pub fn generate(universe: &FaultUniverse, options: &GenOptions) -> GeneratedSet {
    assert!(options.n >= 1, "n must be at least 1");
    let threads = parallel::resolve_threads(options.threads);
    let targets = universe.target_sets();
    let num_patterns = universe.space().num_patterns();

    // Outstanding detections per target: min(n, |T(f)|) minus the
    // detections already provided by the chosen set (0 at the start).
    let goal: Vec<u32> = targets
        .iter()
        .map(|t| (options.n as usize).min(t.len()) as u32)
        .collect();
    let mut deficit = goal;
    // Targets still short of their goal — the only ones the gain pass
    // scans; shrinks every round.
    let mut active: Vec<u32> = deficit
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d > 0)
        .map(|(fi, _)| fi as u32)
        .collect();

    let mut members = VectorSet::new(num_patterns);
    let mut vectors: Vec<u32> = Vec::new();

    // Budget-sized block spans for the gain rows: unbounded budgets get
    // one full-width span per round (the fast path); bounded budgets
    // stream the pattern space through span-local rows, folding each
    // span into the running argmax — bit-identical either way, since
    // spans are visited in ascending vector order.
    let num_blocks = universe.space().num_blocks();
    let span_blocks = options
        .mem_budget
        .tile_width(GAIN_WORDS_PER_BLOCK, num_blocks);

    let mut gen_span = trace::span("gen.generate");
    gen_span.field("n", options.n);
    gen_span.field("targets", targets.len());
    while !active.is_empty() {
        // Per-round span: gain-pass time, candidates scanned, and the
        // gain of the vector the round chose — the per-round cost data
        // the set-cover analysis (PAPERS.md, Cui) predicts shifts in.
        let mut round_span = trace::span("gen.round");
        round_span.field("active", active.len());
        let mut running: Option<Argmax> = None;
        let mut start = 0;
        while start < num_blocks {
            let end = num_blocks.min(start + span_blocks);
            let gain = gain_for_span(targets, &active, &members, threads, start..end);
            // Vectors already chosen contribute nothing by construction
            // (chosen words are masked out), so the argmax folds `gain`
            // directly.
            pick_best_span(&gain, start * 64, options.seed, &mut running);
            start = end;
        }
        let (best, best_gain, _) = running.expect("at least one block");
        if best_gain == 0 {
            // Defensively unreachable: a deficient target always has an
            // unchosen vector left in T(f).
            break;
        }
        round_span.field("gain", best_gain);
        members.insert(best);
        vectors.push(best as u32);
        active.retain(|&fi| {
            let fi = fi as usize;
            if targets[fi].contains(best) {
                deficit[fi] -= 1;
            }
            deficit[fi] > 0
        });
        ndetect_obs::global().counter("gen_rounds_total").inc();
    }
    gen_span.field("vectors", vectors.len());
    drop(gen_span);
    ndetect_obs::global().counter("gen_sets_total").inc();

    let mut set = GeneratedSet {
        n: options.n,
        seed: options.seed,
        compacted: false,
        vectors,
        members,
        target_counts: Vec::new(),
    };
    set.recount(universe);
    if options.compact {
        let _span = trace::span("gen.compact");
        compact(&mut set, universe);
    }
    debug_assert!(set.satisfies(universe));
    set
}

/// Like [`generate`], with the content-addressed on-disk store as a
/// fast path: a valid cache entry (same universe, same semantic
/// options) skips the construction entirely; a miss generates normally
/// and populates the store best-effort. Corrupt, stale, or
/// property-violating entries are silently treated as misses.
///
/// # Panics
///
/// Panics if `options.n == 0`.
#[must_use]
pub fn generate_stored(
    universe: &FaultUniverse,
    options: &GenOptions,
    store: Option<&Store>,
) -> GeneratedSet {
    assert!(options.n >= 1, "n must be at least 1");
    let Some(store) = store else {
        return generate(universe, options);
    };
    let key = generated_key(universe, options);
    if let Some(payload) = store.load(key, KIND_GENERATED_SET) {
        if let Ok(set) = decode_from_slice::<GeneratedSet>(&payload) {
            if set.is_consistent_with(universe, options) {
                return set;
            }
        }
    }
    let set = generate(universe, options);
    store.save_best_effort(key, KIND_GENERATED_SET, &encode_to_vec(&set));
    set
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may use raw vec! freely
mod tests {
    use super::*;
    use ndetect_circuits::figure1;

    fn universe() -> FaultUniverse {
        FaultUniverse::build(&figure1::netlist()).unwrap()
    }

    #[test]
    fn generated_sets_meet_the_detection_requirement() {
        let u = universe();
        for n in [1, 2, 4, 16] {
            let set = generate(&u, &GenOptions::with_n(n));
            assert!(set.satisfies(&u), "n={n}");
            for (fi, t_f) in u.target_sets().iter().enumerate() {
                assert!(
                    set.target_count(fi) as usize >= t_f.len().min(n as usize),
                    "n={n} target {fi}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_across_thread_counts() {
        let u = universe();
        let base = GenOptions::with_n(3);
        let one = generate(&u, &GenOptions { threads: 1, ..base });
        for threads in [2, 4, 7] {
            let multi = generate(&u, &GenOptions { threads, ..base });
            assert_eq!(one, multi, "threads={threads}");
        }
    }

    #[test]
    fn generation_is_deterministic_across_memory_budgets() {
        // ripple_adder(3) has 7 inputs -> 128 patterns -> 2 blocks, so a
        // 1-byte budget genuinely splits the gain rows into spans.
        let u = FaultUniverse::build(&ndetect_circuits::extra::ripple_adder(3)).unwrap();
        for (n, seed) in [(1, None), (3, None), (3, Some(17))] {
            let base = GenOptions {
                n,
                seed,
                ..GenOptions::default()
            };
            let unbounded = generate(&u, &base);
            // 1 byte forces single-block gain spans; 2 threads crosses
            // the tiling with the fault chunking.
            for (budget, threads) in [(MemoryBudget::Bytes(1), 1), (MemoryBudget::Bytes(1), 2)] {
                let tiled = generate(
                    &u,
                    &GenOptions {
                        threads,
                        mem_budget: budget,
                        ..base
                    },
                );
                assert_eq!(unbounded, tiled, "n={n} seed={seed:?} threads={threads}");
            }
        }
    }

    #[test]
    fn seeded_tie_breaking_is_deterministic_and_diverse() {
        let u = universe();
        let a = generate(
            &u,
            &GenOptions {
                n: 2,
                seed: Some(7),
                ..GenOptions::default()
            },
        );
        let b = generate(
            &u,
            &GenOptions {
                n: 2,
                seed: Some(7),
                ..GenOptions::default()
            },
        );
        assert_eq!(a, b);
        assert!(a.satisfies(&u));
        // A different seed still satisfies the property (the sets may
        // or may not differ on a circuit this small).
        let c = generate(
            &u,
            &GenOptions {
                n: 2,
                seed: Some(8),
                ..GenOptions::default()
            },
        );
        assert!(c.satisfies(&u));
    }

    #[test]
    fn sets_grow_with_n_and_stay_below_the_exhaustive_space() {
        let u = universe();
        let s1 = generate(&u, &GenOptions::with_n(1));
        let s4 = generate(&u, &GenOptions::with_n(4));
        assert!(s1.len() <= s4.len());
        assert!(s1.len() < u.space().num_patterns());
        // figure1's 16 targets are 1-coverable by a handful of vectors.
        assert!(s1.len() <= 8, "got {}", s1.len());
    }

    #[test]
    fn n_beyond_every_detection_set_saturates() {
        let u = universe();
        // n = |U| forces every target to its full detection set: the
        // union of all T(f) is required.
        let all = generate(&u, &GenOptions::with_n(u.space().num_patterns() as u32));
        for (fi, t_f) in u.target_sets().iter().enumerate() {
            assert_eq!(all.target_count(fi) as usize, t_f.len(), "target {fi}");
        }
    }

    #[test]
    #[should_panic(expected = "n must be at least 1")]
    fn zero_n_is_rejected() {
        let u = universe();
        let _ = generate(&u, &GenOptions::with_n(0));
    }

    #[test]
    fn display_lists_vectors_in_order() {
        let u = universe();
        let set = generate(&u, &GenOptions::with_n(1));
        let text = set.to_string();
        assert!(text.starts_with('[') && text.ends_with(']'));
        assert_eq!(
            text.trim_matches(['[', ']']).split_whitespace().count(),
            set.len()
        );
    }
}
