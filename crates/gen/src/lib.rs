//! n-detection test-set **generation**: the constructive counterpart of
//! the workspace's worst-/average-case analyses.
//!
//! The paper analyzes properties of n-detection test sets; this crate
//! *produces* them. [`generate`] runs a deterministic greedy set-cover
//! construction over a [`ndetect_faults::FaultUniverse`]: each round it
//! picks the input vector that satisfies the most still-outstanding
//! (fault, remaining-detections) pairs, with the gain pass accumulated
//! over fault tiles on the `ndetect_sim::parallel` worker pool and all
//! per-fault accounting done word-parallel on the universe's detection
//! bitsets. Optional [`compact`] passes then eliminate redundant vectors
//! in reverse insertion order without ever breaking the n-detection
//! property.
//!
//! The result is a [`GeneratedSet`] — vectors in insertion order plus
//! per-target detection counts and the options that produced it — which
//! round-trips through the `ndetect-store` artifact cache
//! ([`generate_stored`], [`KIND_GENERATED_SET`]) so warm re-generation
//! is a disk hit instead of a rebuild.
//!
//! ```
//! use ndetect_circuits::figure1;
//! use ndetect_faults::FaultUniverse;
//! use ndetect_gen::{generate, GenOptions};
//!
//! let universe = FaultUniverse::build(&figure1::netlist()).unwrap();
//! let set = generate(&universe, &GenOptions { n: 3, compact: true, ..GenOptions::default() });
//! // Every detectable target is detected min(3, |T(f)|) times.
//! for (i, t_f) in universe.target_sets().iter().enumerate() {
//!     assert!(set.target_count(i) as usize >= t_f.len().min(3));
//! }
//! assert!(set.len() < universe.space().num_patterns());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod compact;
mod generate;

pub use artifact::{generated_key, KIND_GENERATED_SET};
pub use compact::compact;
pub use generate::{generate, generate_stored, GenOptions, GeneratedSet};
