//! Reverse-order compaction: redundant-vector elimination that
//! preserves the n-detection property.

use crate::generate::GeneratedSet;
use ndetect_faults::FaultUniverse;

/// Eliminates redundant vectors from a generated set, preserving the
/// n-detection property exactly.
///
/// A vector is redundant when removing it leaves every target fault at
/// `min(n, |T(f)|)` detections or more. Vectors are scanned in
/// **reverse insertion order** — the classical static-compaction order:
/// late greedy picks patched small deficits and are the most likely to
/// have been obsoleted by earlier, higher-gain picks. Because a removal
/// only lowers detection counts, it can never make another vector
/// *newly* redundant, so the reverse pass converges in one sweep; a
/// confirming pass runs anyway and the loop exits on the first sweep
/// that removes nothing.
///
/// Returns the number of vectors removed. The set's per-target counts
/// are recomputed from the membership bitset before returning, and the
/// `compacted` flag is set.
pub fn compact(set: &mut GeneratedSet, universe: &FaultUniverse) -> usize {
    let targets = universe.target_sets();
    let n = set.n as usize;
    // Per-target requirement and current detection counts.
    let goal: Vec<u32> = targets.iter().map(|t| n.min(t.len()) as u32).collect();
    let mut counts: Vec<u32> = targets
        .iter()
        .map(|t| t.intersection_count(&set.members) as u32)
        .collect();

    let mut removed_total = 0usize;
    loop {
        let mut removed_this_pass = 0usize;
        for idx in (0..set.vectors.len()).rev() {
            let v = set.vectors[idx] as usize;
            // v must stay if any target is exactly at its requirement
            // and counts v among its detections.
            let blocked = targets
                .iter()
                .enumerate()
                .any(|(fi, t_f)| counts[fi] <= goal[fi] && goal[fi] > 0 && t_f.contains(v));
            if blocked {
                continue;
            }
            for (fi, t_f) in targets.iter().enumerate() {
                if t_f.contains(v) {
                    counts[fi] -= 1;
                }
            }
            set.members.remove(v);
            set.vectors.remove(idx);
            removed_this_pass += 1;
        }
        removed_total += removed_this_pass;
        if removed_this_pass == 0 {
            break;
        }
    }

    set.compacted = true;
    set.recount(universe);
    debug_assert!(set.satisfies(universe));
    removed_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenOptions};
    use ndetect_circuits::figure1;
    use ndetect_sim::VectorSet;

    fn universe() -> FaultUniverse {
        FaultUniverse::build(&figure1::netlist()).unwrap()
    }

    #[test]
    fn compaction_preserves_the_property_and_never_grows() {
        let u = universe();
        for n in [1, 2, 3, 8] {
            let raw = generate(&u, &GenOptions::with_n(n));
            let mut compacted = raw.clone();
            let removed = compact(&mut compacted, &u);
            assert_eq!(compacted.len() + removed, raw.len(), "n={n}");
            assert!(compacted.satisfies(&u), "n={n}");
            assert!(compacted.is_compacted());
        }
    }

    #[test]
    fn compaction_strips_a_deliberately_padded_set() {
        let u = universe();
        let mut set = generate(&u, &GenOptions::with_n(1));
        let baseline = set.len();
        // Pad with every vector of the space not already present: all of
        // them are redundant on top of a satisfying set... except where
        // they now carry requirements already met. Compaction must get
        // back to something no larger than the padded set and still
        // satisfying.
        let space = u.space().num_patterns();
        let mut members = set.as_vector_set().clone();
        for v in 0..space {
            if members.insert(v) {
                set.vectors.push(v as u32);
            }
        }
        set.members = members;
        set.recount(&u);
        assert_eq!(set.len(), space);
        let removed = compact(&mut set, &u);
        assert!(removed > 0);
        assert!(set.satisfies(&u));
        // The compacted result is no larger than a from-scratch greedy
        // set would ever need to be: every vector left is load-bearing.
        assert!(set.len() <= space - removed);
        assert!(set.len() <= baseline.max(space - removed));
        // Minimality: removing any single remaining vector breaks the
        // property.
        let goal: Vec<usize> = u.target_sets().iter().map(|t| t.len().min(1)).collect();
        for &v in set.vectors() {
            let mut without = VectorSet::new(space);
            for &w in set.vectors() {
                if w != v {
                    without.insert(w as usize);
                }
            }
            let still_fine = u
                .target_sets()
                .iter()
                .zip(&goal)
                .all(|(t_f, &g)| t_f.intersection_count(&without) >= g);
            assert!(!still_fine, "vector {v} was redundant after compaction");
        }
    }

    #[test]
    fn generate_with_compact_option_matches_explicit_compaction() {
        let u = universe();
        let via_option = generate(
            &u,
            &GenOptions {
                n: 3,
                compact: true,
                ..GenOptions::default()
            },
        );
        let mut explicit = generate(&u, &GenOptions::with_n(3));
        let _ = compact(&mut explicit, &u);
        assert_eq!(via_option, explicit);
    }
}
