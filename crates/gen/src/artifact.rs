//! Serialization of generated test sets for the content-addressed
//! on-disk artifact store.
//!
//! The cache key mixes the universe's own store key with the semantic
//! generation options (`n`, `compact`, `seed` — `threads` and
//! `mem_budget` are excluded: generation is bit-identical for every
//! worker count and memory budget), so warm re-generation of the same
//! set is a disk hit. Decoding is defensive:
//! the membership bitset is rebuilt from the vector list (rejecting
//! duplicates and out-of-range indices) and the caller revalidates the
//! per-target counts and the n-detection property against the live
//! universe before trusting an entry.

use crate::generate::{GenOptions, GeneratedSet};
use ndetect_faults::FaultUniverse;
use ndetect_sim::VectorSet;
use ndetect_store::{
    ArtifactKey, ArtifactKind, CodecError, Decode, Decoder, Encode, Encoder, Fnv64, CODEC_VERSION,
};

/// Store kind tag for serialized generated test sets.
pub const KIND_GENERATED_SET: ArtifactKind = 3;

/// The content-addressed key of a generated set: the universe key mixed
/// with a generation salt, the semantic options, and the codec version.
#[must_use]
pub fn generated_key(universe: &FaultUniverse, options: &GenOptions) -> ArtifactKey {
    let mut h = Fnv64::new();
    h.update(b"ndetect.generated");
    h.update_u64(u64::from(CODEC_VERSION));
    h.update_u64(universe.store_key().0);
    h.update_u64(u64::from(options.n));
    h.update(&[u8::from(options.compact)]);
    match options.seed {
        None => h.update(&[0]),
        Some(seed) => {
            h.update(&[1]);
            h.update_u64(seed);
        }
    }
    ArtifactKey(h.finish())
}

impl Encode for GeneratedSet {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.members.num_patterns());
        e.put_u32(self.n);
        self.seed.encode(e);
        e.put_bool(self.compacted);
        self.vectors.encode(e);
        self.target_counts.encode(e);
    }
}

impl Decode for GeneratedSet {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let num_patterns = d.get_usize()?;
        // Bound the membership-bitset allocation before trusting the
        // wire: no pattern space can exceed the exhaustive-simulation
        // ceiling, so anything larger is corruption (decoding must
        // degrade to a miss, not attempt a giant allocation).
        if num_patterns > 1 << ndetect_sim::MAX_EXHAUSTIVE_INPUTS {
            return Err(CodecError::new("pattern space exceeds exhaustive ceiling"));
        }
        let n = d.get_u32()?;
        let seed = Option::<u64>::decode(d)?;
        let compacted = d.get_bool()?;
        let vectors = Vec::<u32>::decode(d)?;
        let target_counts = Vec::<u32>::decode(d)?;
        let mut members = VectorSet::new(num_patterns);
        for &v in &vectors {
            let v = v as usize;
            if v >= num_patterns {
                return Err(CodecError::new("generated vector outside pattern space"));
            }
            if !members.insert(v) {
                return Err(CodecError::new("duplicate generated vector"));
            }
        }
        Ok(GeneratedSet {
            n,
            seed,
            compacted,
            vectors,
            members,
            target_counts,
        })
    }
}

impl GeneratedSet {
    /// Validates a decoded set against the universe and options it is
    /// being loaded for: the shape must match, the recorded options
    /// must agree, the per-target counts must equal the membership
    /// intersection, and the n-detection property must hold. `false`
    /// means the entry is stale or colliding and must be a miss.
    #[must_use]
    pub(crate) fn is_consistent_with(
        &self,
        universe: &FaultUniverse,
        options: &GenOptions,
    ) -> bool {
        self.members.num_patterns() == universe.space().num_patterns()
            && self.n == options.n
            && self.seed == options.seed
            && self.compacted == options.compact
            && self.satisfies(universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use ndetect_circuits::figure1;
    use ndetect_store::{decode_from_slice, encode_to_vec};

    fn universe() -> FaultUniverse {
        FaultUniverse::build(&figure1::netlist()).unwrap()
    }

    #[test]
    fn generated_set_round_trips_through_the_codec() {
        let u = universe();
        for options in [
            GenOptions::with_n(1),
            GenOptions {
                n: 3,
                compact: true,
                seed: Some(42),
                ..GenOptions::default()
            },
        ] {
            let set = generate(&u, &options);
            let back: GeneratedSet = decode_from_slice(&encode_to_vec(&set)).unwrap();
            assert_eq!(back, set);
            assert!(back.is_consistent_with(&u, &options));
        }
    }

    #[test]
    fn decode_rejects_an_absurd_pattern_space_without_allocating() {
        // A corrupt/crafted num_patterns field must be a CodecError
        // (silent cache miss), never an attempted giant allocation.
        let mut e = ndetect_store::Encoder::new();
        e.put_usize(1 << 60); // num_patterns far beyond the sim ceiling
        e.put_u32(1);
        None::<u64>.encode(&mut e);
        e.put_bool(false);
        Vec::<u32>::new().encode(&mut e);
        Vec::<u32>::new().encode(&mut e);
        assert!(decode_from_slice::<GeneratedSet>(&e.finish()).is_err());
        // The exact ceiling still decodes (shape checks happen later).
        let mut e = ndetect_store::Encoder::new();
        e.put_usize(1 << ndetect_sim::MAX_EXHAUSTIVE_INPUTS);
        e.put_u32(1);
        None::<u64>.encode(&mut e);
        e.put_bool(false);
        Vec::<u32>::new().encode(&mut e);
        Vec::<u32>::new().encode(&mut e);
        assert!(decode_from_slice::<GeneratedSet>(&e.finish()).is_ok());
    }

    #[test]
    fn decode_rejects_duplicate_and_out_of_range_vectors() {
        let u = universe();
        let mut set = generate(&u, &GenOptions::with_n(1));
        let first = set.vectors[0];
        set.vectors.push(first); // duplicate
        assert!(decode_from_slice::<GeneratedSet>(&encode_to_vec(&set)).is_err());
        set.vectors.pop();
        set.vectors.push(u16::MAX as u32); // out of range for 16 patterns
        assert!(decode_from_slice::<GeneratedSet>(&encode_to_vec(&set)).is_err());
    }

    #[test]
    fn consistency_rejects_option_and_count_mismatches() {
        let u = universe();
        let options = GenOptions::with_n(2);
        let set = generate(&u, &options);
        assert!(set.is_consistent_with(&u, &options));
        assert!(!set.is_consistent_with(&u, &GenOptions::with_n(3)));
        assert!(!set.is_consistent_with(
            &u,
            &GenOptions {
                seed: Some(1),
                ..options
            }
        ));
        let mut tampered = set.clone();
        tampered.target_counts[0] += 1;
        assert!(!tampered.is_consistent_with(&u, &options));
    }

    #[test]
    fn key_depends_on_options_but_not_threads() {
        let u = universe();
        let base = GenOptions::with_n(5);
        let k1 = generated_key(&u, &base);
        assert_eq!(k1, generated_key(&u, &GenOptions { threads: 8, ..base }));
        assert_ne!(k1, generated_key(&u, &GenOptions::with_n(6)));
        assert_ne!(
            k1,
            generated_key(
                &u,
                &GenOptions {
                    compact: true,
                    ..base
                }
            )
        );
        assert_ne!(
            k1,
            generated_key(
                &u,
                &GenOptions {
                    seed: Some(0),
                    ..base
                }
            )
        );
    }
}
