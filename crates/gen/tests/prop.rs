//! Property suite for the n-detection generator, verified against the
//! **full-cone oracle** (the retained reference kernel) rather than the
//! event-driven detection sets the generator itself consumes — so a
//! kernel bug and a generator bug cannot cancel out:
//!
//! * for every suite circuit and `n ∈ {1, 3, 10}`, the generated set
//!   detects each target fault `min(n, |T(f)|)` times;
//! * compaction never breaks the property and never grows the set;
//! * `|T|` at `n = 1` stays at or below the exhaustive-space size on
//!   all three corpus circuits;
//! * the same properties hold on randomly generated netlists, seeded
//!   and unseeded.

use ndetect_faults::{FaultUniverse, UniverseOptions};
use ndetect_gen::{compact, generate, GenOptions};
use ndetect_netlist::{bench_format, Netlist};
use ndetect_sim::VectorSet;
use ndetect_testutil::arb_netlist_sized;
use proptest::prelude::*;
use std::path::PathBuf;

/// Builds the targets-only universe (bridging faults are irrelevant to
/// the n-detection requirement and dominate build time).
fn targets_universe(netlist: &Netlist) -> FaultUniverse {
    FaultUniverse::build_with(
        netlist,
        UniverseOptions {
            include_bridges: false,
            ..UniverseOptions::default()
        },
    )
    .expect("circuit fits exhaustive simulation")
}

/// Recomputes every target detection set through the full-cone
/// reference kernel.
fn full_cone_oracle(netlist: &Netlist, universe: &FaultUniverse) -> Vec<VectorSet> {
    universe
        .targets()
        .iter()
        .map(|&f| {
            universe
                .simulator()
                .detection_set_stuck_full_cone(netlist, f)
        })
        .collect()
}

/// Asserts the n-detection property of `members` against the oracle
/// sets: every target detected `min(n, |T(f)|)` times.
fn assert_oracle_property(
    circuit: &str,
    n: u32,
    oracle: &[VectorSet],
    members: &VectorSet,
    label: &str,
) {
    for (fi, t_f) in oracle.iter().enumerate() {
        let want = t_f.len().min(n as usize);
        let got = t_f.intersection_count(members);
        assert!(
            got >= want,
            "{circuit}: {label} set detects target {fi} only {got} < {want} times at n={n}"
        );
    }
}

#[test]
fn every_suite_circuit_meets_the_oracle_requirement() {
    for spec in ndetect_circuits::suite() {
        let netlist = ndetect_circuits::build(spec.name()).expect("suite circuit builds");
        let universe = targets_universe(&netlist);
        let oracle = full_cone_oracle(&netlist, &universe);
        for n in [1u32, 3, 10] {
            let raw = generate(&universe, &GenOptions::with_n(n));
            assert!(raw.satisfies(&universe), "{}: n={n}", spec.name());
            assert_oracle_property(spec.name(), n, &oracle, raw.as_vector_set(), "raw");

            let mut compacted = raw.clone();
            let removed = compact(&mut compacted, &universe);
            assert_eq!(compacted.len() + removed, raw.len());
            assert!(compacted.satisfies(&universe), "{}: n={n}", spec.name());
            assert_oracle_property(
                spec.name(),
                n,
                &oracle,
                compacted.as_vector_set(),
                "compacted",
            );
        }
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/corpus")
}

#[test]
fn corpus_one_detection_sets_beat_the_exhaustive_baseline() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "bench"))
        .collect();
    paths.sort();
    assert_eq!(paths.len(), 4, "four corpus circuits");
    let mut combinational = 0;
    for path in paths {
        let name = path.file_stem().and_then(|s| s.to_str()).expect("utf8");
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        // The sequential fixture (s27) is exercised through its
        // time-frame expansion elsewhere; this oracle is combinational.
        let netlist = match bench_format::parse(name, &text) {
            Ok(n) => n,
            Err(ndetect_netlist::NetlistError::Sequential { .. }) => continue,
            Err(e) => panic!("corpus file parses: {e}"),
        };
        combinational += 1;
        let universe = targets_universe(&netlist);
        let oracle = full_cone_oracle(&netlist, &universe);
        let set = generate(
            &universe,
            &GenOptions {
                n: 1,
                compact: true,
                ..GenOptions::default()
            },
        );
        assert_oracle_property(name, 1, &oracle, set.as_vector_set(), "compacted");
        // The exhaustive space is the trivial 1-detection set; the
        // generated set must never be larger (and on these circuits it
        // is far smaller).
        let exhaustive = universe.space().num_patterns();
        assert!(
            set.len() <= exhaustive,
            "{name}: |T| = {} > |U| = {exhaustive}",
            set.len()
        );
        assert!(
            set.len() * 2 <= exhaustive,
            "{name}: a compact 1-detection set should be well below |U| ({} vs {exhaustive})",
            set.len()
        );
    }
    assert_eq!(combinational, 3, "three combinational corpus circuits");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_netlists_meet_the_oracle_requirement(
        netlist in arb_netlist_sized(5, 16),
        n in 1u32..=4,
        seed_raw in any::<u64>(),
    ) {
        // The vendored proptest has no Option strategy; derive one.
        let seed = (seed_raw % 2 == 1).then_some(seed_raw);
        let universe = targets_universe(&netlist);
        let oracle = full_cone_oracle(&netlist, &universe);
        let options = GenOptions { n, seed, ..GenOptions::default() };
        let raw = generate(&universe, &options);
        prop_assert!(raw.satisfies(&universe));
        assert_oracle_property(netlist.name(), n, &oracle, raw.as_vector_set(), "raw");

        let mut compacted = raw.clone();
        let removed = compact(&mut compacted, &universe);
        prop_assert_eq!(compacted.len() + removed, raw.len());
        prop_assert!(compacted.satisfies(&universe));
        assert_oracle_property(netlist.name(), n, &oracle, compacted.as_vector_set(), "compacted");
    }

    #[test]
    fn warm_generation_is_bit_identical_to_cold(
        netlist in arb_netlist_sized(4, 10),
        n in 1u32..=3,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "ndetect-gen-prop-{}-{}",
            std::process::id(),
            netlist.name(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ndetect_store::Store::open(&dir).expect("temp store opens");
        let universe = targets_universe(&netlist);
        let options = GenOptions { n, compact: true, ..GenOptions::default() };
        let cold = ndetect_gen::generate_stored(&universe, &options, Some(&store));
        let warm = ndetect_gen::generate_stored(&universe, &options, Some(&store));
        prop_assert_eq!(&cold, &warm);
        prop_assert!(store.session_hits() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
