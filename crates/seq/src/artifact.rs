//! Serialization of expanded models for the content-addressed artifact
//! store.
//!
//! The payload carries the expanded netlist as `.bench` text plus the
//! lowered fault population. Because [`crate::expand`] canonicalizes
//! node numbering through the same `.bench` writer/parser round trip,
//! a decoded model is bit-identical to a fresh expansion — same
//! `LineId`s, same names, same canonical bytes — so universes and
//! derived artifacts built from either agree.
//!
//! Decoding is defensive: shapes are validated against the expected
//! canonical bytes and the parsed netlist, and any mismatch is treated
//! as a store miss (re-expand, overwrite).

use crate::error::SeqError;
use crate::expand::{canonical_for, expand, ExpandedModel, FaultModel, TransitionFault};
use ndetect_netlist::{bench_format, LineId, SeqNetlist};
use ndetect_store::{
    decode_from_slice, encode_to_vec, ArtifactKey, ArtifactKind, CodecError, Decode, Decoder,
    Encode, Encoder, Fnv64, Store, CODEC_VERSION,
};

/// Store kind tag for serialized expanded models.
pub const KIND_EXPANDED: ArtifactKind = 5;

/// The content-addressed key of an expanded model: hashes the
/// **sequential** netlist's canonical bytes plus the fault-model tag
/// and expansion version (via [`canonical_for`]), so the key survives
/// any refactor of the expansion that preserves semantics-relevant
/// versioning.
#[must_use]
pub fn expanded_key(seq: &SeqNetlist, model: FaultModel) -> ArtifactKey {
    let mut h = Fnv64::new();
    h.update(b"ndetect.seq.expanded");
    h.update_u64(u64::from(CODEC_VERSION));
    h.update(&canonical_for(seq, model));
    ArtifactKey(h.finish())
}

struct ExpandedArtifact {
    seq_name: String,
    model_tag: u8,
    num_true_inputs: usize,
    num_true_outputs: usize,
    num_state_bits: usize,
    bench_text: String,
    targets: Vec<(usize, bool)>,
    transition_faults: Vec<(String, bool)>,
    bridge_stems: Vec<usize>,
    canonical: Vec<u8>,
}

impl Encode for ExpandedArtifact {
    fn encode(&self, e: &mut Encoder) {
        self.seq_name.encode(e);
        e.put_u8(self.model_tag);
        e.put_usize(self.num_true_inputs);
        e.put_usize(self.num_true_outputs);
        e.put_usize(self.num_state_bits);
        self.bench_text.encode(e);
        self.targets.encode(e);
        self.transition_faults.encode(e);
        self.bridge_stems.encode(e);
        self.canonical.encode(e);
    }
}

impl Decode for ExpandedArtifact {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ExpandedArtifact {
            seq_name: String::decode(d)?,
            model_tag: d.get_u8()?,
            num_true_inputs: d.get_usize()?,
            num_true_outputs: d.get_usize()?,
            num_state_bits: d.get_usize()?,
            bench_text: String::decode(d)?,
            targets: Vec::decode(d)?,
            transition_faults: Vec::decode(d)?,
            bridge_stems: Vec::decode(d)?,
            canonical: Vec::decode(d)?,
        })
    }
}

/// Encodes an expanded model into the `KIND_EXPANDED` wire format.
#[must_use]
pub fn encode_expanded(model: &ExpandedModel) -> Vec<u8> {
    let artifact = ExpandedArtifact {
        seq_name: model.seq_name().to_string(),
        model_tag: model.fault_model().tag(),
        num_true_inputs: model.num_true_inputs(),
        num_true_outputs: model.num_true_outputs(),
        num_state_bits: model.num_state_bits(),
        bench_text: bench_format::write(model.netlist()),
        targets: model
            .targets()
            .iter()
            .map(|f| (f.line.index(), f.value))
            .collect(),
        transition_faults: model
            .transition_faults()
            .iter()
            .map(|t| (t.node.clone(), t.rising))
            .collect(),
        bridge_stems: model.bridge_stems().iter().map(|l| l.index()).collect(),
        canonical: model.canonical().to_vec(),
    };
    encode_to_vec(&artifact)
}

/// Decodes and validates a `KIND_EXPANDED` payload. `None` means the
/// entry is stale or corrupt — callers treat it as a store miss.
#[must_use]
pub fn decode_expanded(payload: &[u8], expected_canonical: &[u8]) -> Option<ExpandedModel> {
    let a: ExpandedArtifact = decode_from_slice(payload).ok()?;
    if a.canonical != expected_canonical {
        return None;
    }
    let fault_model = match a.model_tag {
        0 => FaultModel::StuckAt,
        1 => FaultModel::Transition,
        _ => return None,
    };
    let netlist = bench_format::parse(&format!("{}.x2", a.seq_name), &a.bench_text).ok()?;
    let num_lines = netlist.lines().len();
    if netlist.num_inputs() != a.num_true_inputs + a.num_state_bits
        || netlist.num_outputs() < a.num_true_outputs
        || a.targets.iter().any(|&(line, _)| line >= num_lines)
        || a.bridge_stems.iter().any(|&line| line >= num_lines)
    {
        return None;
    }
    match fault_model {
        FaultModel::Transition => {
            if a.transition_faults.len() != a.targets.len() {
                return None;
            }
        }
        FaultModel::StuckAt => {
            if !a.transition_faults.is_empty() {
                return None;
            }
        }
    }
    let targets = a
        .targets
        .iter()
        .map(|&(line, value)| ndetect_faults::StuckAtFault::new(LineId::new(line), value))
        .collect();
    let transition_faults = a
        .transition_faults
        .into_iter()
        .map(|(node, rising)| TransitionFault { node, rising })
        .collect();
    let bridge_stems = a.bridge_stems.into_iter().map(LineId::new).collect();
    Some(ExpandedModel::assemble(
        a.seq_name,
        fault_model,
        netlist,
        targets,
        transition_faults,
        bridge_stems,
        a.canonical,
        a.num_true_inputs,
        a.num_true_outputs,
        a.num_state_bits,
    ))
}

/// Expands `seq` with store-layer caching: a valid cached entry is
/// decoded without re-running the expansion (the `seq_expansions_total`
/// counter does not move on warm loads); a miss expands fresh and
/// saves best-effort.
///
/// # Errors
///
/// Propagates [`expand`] errors; store I/O problems silently degrade to
/// cold behaviour.
pub fn expand_stored(
    seq: &SeqNetlist,
    model: FaultModel,
    store: Option<&Store>,
) -> Result<ExpandedModel, SeqError> {
    let Some(store) = store else {
        return expand(seq, model);
    };
    let key = expanded_key(seq, model);
    let expected = canonical_for(seq, model);
    if let Some(payload) = store.load(key, KIND_EXPANDED) {
        if let Some(model) = decode_expanded(&payload, &expected) {
            return Ok(model);
        }
    }
    let expanded = expand(seq, model)?;
    store.save_best_effort(key, KIND_EXPANDED, &encode_expanded(&expanded));
    Ok(expanded)
}
