//! Broadside two-frame time-frame expansion and fault lowering.
//!
//! [`expand`] turns a [`SeqNetlist`] into an [`ExpandedModel`]: a purely
//! combinational netlist holding two copies (frames) of the sequential
//! circuit's combinational core, plus a fault population lowered onto it
//! that the existing exhaustive analyses consume unchanged.
//!
//! # Expansion semantics
//!
//! * **Frame 1** is a copy of the core whose state inputs (`q.s1`) are
//!   free pseudo-primary-inputs — the circuit may start in any state.
//! * **Frame 2** reads each flip-flop's value from the frame-1 copy of
//!   that flip-flop's next-state function (the FF boundary), modelling
//!   one clock edge between the two frames.
//! * True primary inputs are **shared** between the frames (broadside /
//!   launch-on-capture): one vector is applied and held across the
//!   clock edge, so the expanded input count is `|PI| + |FF|` and the
//!   exhaustive pattern space stays `2^(|PI|+|FF|)`.
//! * **Observed outputs** are the frame-2 true primary outputs followed
//!   by the frame-2 next-state functions (flip-flop D inputs) — what a
//!   tester sees on the pins plus what it can unload from the scan
//!   chain after the capture cycle. Frame-1 outputs are *not* observed;
//!   frame 1 exists only to launch transitions and supply state.
//!
//! # Transition-delay lowering
//!
//! A naive "stuck-at on the frame-2 copy" misses the launch condition:
//! a slow-to-rise fault at `n` is only excited when frame 1 holds `n=0`
//! *and* frame 2 wants `n=1`. Each eligible node `n` is therefore
//! wrapped in an enable gadget on its frame-2 value:
//!
//! ```text
//! s_r = AND(NOT(n.f1), n.f2raw, en_r)    en_r = CONST0
//! m   = XOR(n.f2raw, s_r)                 ⇒ m == n.f2raw fault-free
//! ```
//!
//! With `en_r` stuck at 1 the gadget forces `m = n.f1 AND n.f2raw` —
//! exactly the slow-to-rise behaviour (the rise never happens, the old
//! value leaks into frame 2). A mirrored gadget with `s_f =
//! AND(n.f1, NOT(n.f2raw), en_f)` gives slow-to-fall as `en_f`
//! stuck-at-1. The lowered targets are ordinary [`StuckAtFault`]s on
//! the enable stems, so `FaultUniverse`, the worst-case/average-case
//! analyses, and the test generator work on day one.
//!
//! Eligible nodes are every core gate and every flip-flop output; true
//! primary inputs are skipped (under broadside they cannot launch — the
//! same vector feeds both frames) and constant nodes are skipped (they
//! never transition).
//!
//! # Determinism
//!
//! Generated names are a pure function of core node names (`x.f1`,
//! `x.f2`, `q.s1`, gadget suffixes `.tr.*`/`.tf.*`), and the expanded
//! netlist is canonicalized through the `.bench` writer/parser round
//! trip before fault lowering, so node and line numbering — and hence
//! every `LineId` in the lowered fault list — is identical whether the
//! model was expanded fresh or decoded from the artifact store.

use crate::error::SeqError;
use ndetect_chaos::{failpoint, Injected};
use ndetect_faults::{CollapsedFaults, ExplicitTargets, StuckAtFault};
use ndetect_netlist::{
    bench_format, GateKind, LineId, Netlist, NetlistBuilder, NodeId, SeqNetlist,
};
use ndetect_obs::trace;
use std::fmt;

/// Version byte mixed into [`ExpandedModel::canonical`] — bump when the
/// expansion construction changes shape so stale store entries miss.
pub const EXPANSION_VERSION: u8 = 1;

/// Which fault population to lower onto the expanded netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum FaultModel {
    /// Transition-delay faults (slow-to-rise / slow-to-fall) at every
    /// FF-bounded core node, lowered via the enable gadget. The default
    /// for sequential circuits: n-detection of transition faults is the
    /// natural reading of the paper's metrics under time-frame
    /// expansion.
    #[default]
    Transition,
    /// Plain collapsed stuck-at faults on the expanded netlist — the
    /// combinational model applied verbatim to the two-frame circuit.
    StuckAt,
}

impl FaultModel {
    /// Stable one-byte tag for canonical bytes and store keys.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            FaultModel::Transition => 1,
            FaultModel::StuckAt => 0,
        }
    }

    /// Human-readable label (`transition` / `stuck-at`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultModel::Transition => "transition",
            FaultModel::StuckAt => "stuck-at",
        }
    }

    /// Parses a CLI spelling. Accepts `transition`/`tdf` and
    /// `stuck`/`stuck-at`/`stuckat` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "transition" | "tdf" => Some(FaultModel::Transition),
            "stuck" | "stuck-at" | "stuckat" => Some(FaultModel::StuckAt),
            _ => None,
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A transition-delay fault at a core node, named in **sequential**
/// circuit terms so reports round-trip to the pre-expansion netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionFault {
    /// Core node name (gate output or flip-flop output).
    pub node: String,
    /// `true` = slow-to-rise, `false` = slow-to-fall.
    pub rising: bool,
}

impl fmt::Display for TransitionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.rising {
            "slow-to-rise"
        } else {
            "slow-to-fall"
        };
        write!(f, "{} {kind}", self.node)
    }
}

/// The product of [`expand`]: the two-frame combinational netlist plus
/// the fault population lowered onto it.
///
/// The expanded netlist's inputs are the sequential circuit's true
/// primary inputs (original names, shared across frames) followed by
/// one `q.s1` pseudo-input per flip-flop — so an exhaustive pattern
/// index splits as `pi_bits = index & (2^num_true_inputs - 1)` low
/// bits, state bits above.
#[derive(Clone, Debug)]
pub struct ExpandedModel {
    seq_name: String,
    fault_model: FaultModel,
    netlist: Netlist,
    targets: Vec<StuckAtFault>,
    transition_faults: Vec<TransitionFault>,
    bridge_stems: Vec<LineId>,
    canonical: Vec<u8>,
    num_true_inputs: usize,
    num_true_outputs: usize,
    num_state_bits: usize,
}

impl ExpandedModel {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        seq_name: String,
        fault_model: FaultModel,
        netlist: Netlist,
        targets: Vec<StuckAtFault>,
        transition_faults: Vec<TransitionFault>,
        bridge_stems: Vec<LineId>,
        canonical: Vec<u8>,
        num_true_inputs: usize,
        num_true_outputs: usize,
        num_state_bits: usize,
    ) -> Self {
        ExpandedModel {
            seq_name,
            fault_model,
            netlist,
            targets,
            transition_faults,
            bridge_stems,
            canonical,
            num_true_inputs,
            num_true_outputs,
            num_state_bits,
        }
    }

    /// Name of the sequential circuit this model was expanded from.
    #[must_use]
    pub fn seq_name(&self) -> &str {
        &self.seq_name
    }

    /// The fault population lowered onto the expansion.
    #[must_use]
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// The two-frame combinational netlist (named `<seq>.x2`).
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Lowered target faults, in deterministic order. Under
    /// [`FaultModel::Transition`] entry `i` corresponds to
    /// [`Self::transition_faults`]`[i]`.
    #[must_use]
    pub fn targets(&self) -> &[StuckAtFault] {
        &self.targets
    }

    /// Sequential-level descriptors parallel to [`Self::targets`]
    /// (empty under [`FaultModel::StuckAt`]).
    #[must_use]
    pub fn transition_faults(&self) -> &[TransitionFault] {
        &self.transition_faults
    }

    /// Stems eligible for untargeted bridging faults: both frame copies
    /// of every multi-input core gate (frame 1 first). Gadget
    /// instrumentation is excluded.
    #[must_use]
    pub fn bridge_stems(&self) -> &[LineId] {
        &self.bridge_stems
    }

    /// Canonical identity bytes: the **sequential** netlist's canonical
    /// bytes plus the fault-model tag and [`EXPANSION_VERSION`]. All
    /// derived store artifacts (universe, worst-case, generated sets)
    /// key off these bytes, not the expanded netlist.
    #[must_use]
    pub fn canonical(&self) -> &[u8] {
        &self.canonical
    }

    /// Number of true primary inputs (the low expanded input slots).
    #[must_use]
    pub fn num_true_inputs(&self) -> usize {
        self.num_true_inputs
    }

    /// Number of true primary outputs (the low expanded output slots).
    #[must_use]
    pub fn num_true_outputs(&self) -> usize {
        self.num_true_outputs
    }

    /// Number of flip-flops = number of `q.s1` pseudo-inputs.
    #[must_use]
    pub fn num_state_bits(&self) -> usize {
        self.num_state_bits
    }

    /// The explicit fault population in the form
    /// [`ndetect_faults::FaultUniverse::build_explicit`] consumes.
    #[must_use]
    pub fn explicit_targets(&self) -> ExplicitTargets {
        ExplicitTargets {
            targets: self.targets.clone(),
            bridge_stems: self.bridge_stems.clone(),
            canonical: self.canonical.clone(),
        }
    }

    /// Human-readable label for target fault `index`: the sequential
    /// transition-fault name under [`FaultModel::Transition`], the
    /// expanded stuck-at line name otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn target_label(&self, index: usize) -> String {
        match self.fault_model {
            FaultModel::Transition => self.transition_faults[index].to_string(),
            FaultModel::StuckAt => self.targets[index].name(&self.netlist),
        }
    }
}

impl fmt::Display for ExpandedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: 2 frames, {} inputs ({} PI + {} state), {} gates, {} target faults",
            self.seq_name,
            self.fault_model,
            self.netlist.num_inputs(),
            self.num_true_inputs,
            self.num_state_bits,
            self.netlist.num_gates(),
            self.targets.len(),
        )
    }
}

/// Canonical identity bytes for an expansion of `seq` under `model` —
/// shared by [`expand`] and the store layer so keys agree.
#[must_use]
pub fn canonical_for(seq: &SeqNetlist, model: FaultModel) -> Vec<u8> {
    let mut bytes = seq.canonical_bytes();
    bytes.push(model.tag());
    bytes.push(EXPANSION_VERSION);
    bytes
}

fn mapped(map: &[Option<NodeId>], id: NodeId) -> NodeId {
    map[id.index()].expect("topological order guarantees fanins are mapped first")
}

/// Expands `seq` into a two-frame broadside combinational model and
/// lowers the `model` fault population onto it. Deterministic: the same
/// input always yields byte-identical canonical bytes, netlist text,
/// and fault lists.
///
/// # Errors
///
/// Returns [`SeqError::Netlist`] when generated frame names collide
/// with user node names (e.g. a core node literally named `x.f1`), and
/// [`SeqError::Expand`] when the `seq.expand` chaos failpoint injects a
/// failure.
pub fn expand(seq: &SeqNetlist, model: FaultModel) -> Result<ExpandedModel, SeqError> {
    if let Some(Injected::ReturnErr | Injected::TornWrite) = failpoint!("seq.expand") {
        return Err(SeqError::Expand {
            message: ndetect_chaos::io_error("seq.expand").to_string(),
        });
    }

    let core = seq.core();
    let n = core.num_nodes();

    // --- FF-boundary extraction -------------------------------------
    let mut span = trace::span("seq.extract");
    span.field("circuit", seq.name());
    span.field("ffs", seq.num_ffs());
    span.field("true_inputs", seq.num_true_inputs());
    let mut state_index: Vec<Option<usize>> = vec![None; n];
    for (i, &q) in seq.state_inputs().iter().enumerate() {
        state_index[q.index()] = Some(i);
    }
    let next_drivers: Vec<NodeId> = seq.next_state_outputs().to_vec();
    drop(span);

    // --- Two-frame unrolling ----------------------------------------
    let mut span = trace::span("seq.expand");
    span.field("circuit", seq.name());
    let mut b = NetlistBuilder::new(format!("{}.x2", seq.name()));

    // Frame 1: true PIs keep their names; state bits become free
    // `q.s1` pseudo-inputs; every gate is copied as `x.f1`.
    let mut f1: Vec<Option<NodeId>> = vec![None; n];
    for &pi in seq.true_inputs() {
        f1[pi.index()] = Some(b.try_input(core.node_name(pi))?);
    }
    for &q in seq.state_inputs() {
        f1[q.index()] = Some(b.try_input(format!("{}.s1", core.node_name(q)))?);
    }
    for &id in core.topo_order() {
        let node = core.node(id);
        if node.kind() == GateKind::Input {
            continue;
        }
        let fanins: Vec<NodeId> = node.fanins().iter().map(|&x| mapped(&f1, x)).collect();
        let name = format!("{}.f1", core.node_name(id));
        f1[id.index()] = Some(b.gate(node.kind(), name, &fanins)?);
    }

    // Frame 2: state inputs read the frame-1 next-state functions
    // (the clock edge); true PIs are shared; gates are copied as
    // `x.f2`; under the transition model each eligible node's frame-2
    // value is routed through the enable gadget.
    let mut f2: Vec<Option<NodeId>> = vec![None; n];
    let mut instrumented: Vec<String> = Vec::new();
    for &id in core.topo_order() {
        let node = core.node(id);
        let name = core.node_name(id);
        let raw = match node.kind() {
            GateKind::Input => match state_index[id.index()] {
                Some(i) => mapped(&f1, next_drivers[i]),
                None => {
                    // Broadside: shared between frames, cannot launch.
                    f2[id.index()] = f1[id.index()];
                    continue;
                }
            },
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|&x| mapped(&f2, x)).collect();
                b.gate(kind, format!("{name}.f2"), &fanins)?
            }
        };
        let can_transition = !matches!(node.kind(), GateKind::Const0 | GateKind::Const1);
        if model == FaultModel::Transition && can_transition {
            let x1 = mapped(&f1, id);
            let n1 = b.not(format!("{name}.tr.n1"), x1)?;
            let en_r = b.gate(GateKind::Const0, format!("{name}.tr.en"), &[])?;
            let s_r = b.and(format!("{name}.tr.and"), &[n1, raw, en_r])?;
            let m1 = b.xor(format!("{name}.tr.x"), &[raw, s_r])?;
            let n2 = b.not(format!("{name}.tf.n2"), raw)?;
            let en_f = b.gate(GateKind::Const0, format!("{name}.tf.en"), &[])?;
            let s_f = b.and(format!("{name}.tf.and"), &[x1, n2, en_f])?;
            let m = b.xor(format!("{name}.tf.m"), &[m1, s_f])?;
            f2[id.index()] = Some(m);
            instrumented.push(name.to_string());
        } else {
            f2[id.index()] = Some(raw);
        }
    }

    // Observed outputs: frame-2 true POs, then frame-2 next-state.
    for &po in seq.true_outputs() {
        b.output(mapped(&f2, po));
    }
    for &d in seq.next_state_outputs() {
        b.output(mapped(&f2, d));
    }
    let built = b.build()?;
    // Canonicalize node/line numbering through the `.bench` round trip
    // so a fresh expansion is bit-identical to a store-decoded one.
    let netlist = bench_format::parse(built.name(), &bench_format::write(&built))?;
    span.field("expanded_gates", netlist.num_gates());
    drop(span);

    // --- Fault lowering ---------------------------------------------
    let mut span = trace::span("seq.lower");
    span.field("model", model.label());
    let lookup = |name: &str| -> NodeId {
        netlist
            .node_by_name(name)
            .expect("generated node survives the bench round trip")
    };
    let mut targets = Vec::new();
    let mut transition_faults = Vec::new();
    match model {
        FaultModel::Transition => {
            for name in &instrumented {
                let en_r = lookup(&format!("{name}.tr.en"));
                targets.push(StuckAtFault::new(netlist.lines().stem(en_r), true));
                transition_faults.push(TransitionFault {
                    node: name.clone(),
                    rising: true,
                });
                let en_f = lookup(&format!("{name}.tf.en"));
                targets.push(StuckAtFault::new(netlist.lines().stem(en_f), true));
                transition_faults.push(TransitionFault {
                    node: name.clone(),
                    rising: false,
                });
            }
        }
        FaultModel::StuckAt => {
            targets = CollapsedFaults::compute(&netlist)
                .representatives()
                .to_vec();
        }
    }
    // Bridge candidates: both frame copies of every multi-input core
    // gate, frame 1 first — never the gadget instrumentation.
    let multi: Vec<&str> = core
        .topo_order()
        .iter()
        .filter(|&&id| core.node(id).fanins().len() >= 2)
        .map(|&id| core.node_name(id))
        .collect();
    let mut bridge_stems = Vec::with_capacity(2 * multi.len());
    for frame in ["f1", "f2"] {
        for name in &multi {
            bridge_stems.push(netlist.lines().stem(lookup(&format!("{name}.{frame}"))));
        }
    }
    span.field("targets", targets.len());
    span.field("bridge_stems", bridge_stems.len());
    drop(span);

    ndetect_obs::global().counter("seq_expansions_total").inc();

    Ok(ExpandedModel::assemble(
        seq.name().to_string(),
        model,
        netlist,
        targets,
        transition_faults,
        bridge_stems,
        canonical_for(seq, model),
        seq.num_true_inputs(),
        seq.num_true_outputs(),
        seq.num_ffs(),
    ))
}
