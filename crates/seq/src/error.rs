//! Error type for sequential-circuit expansion.

use ndetect_netlist::NetlistError;
use std::fmt;

/// Errors produced while extracting the flip-flop boundary or building
/// the time-frame-expanded model.
#[derive(Debug)]
#[non_exhaustive]
pub enum SeqError {
    /// The underlying netlist layer rejected the circuit (parse errors,
    /// name collisions between generated frame copies and user nodes,
    /// combinational cycles through the expanded frames, ...).
    Netlist(NetlistError),
    /// The expansion itself failed; carries a human-readable reason.
    /// This is also the variant surfaced by the `seq.expand` chaos
    /// failpoint, so callers degrade with a structured error instead of
    /// a panic.
    Expand {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::Netlist(e) => write!(f, "{e}"),
            SeqError::Expand { message } => write!(f, "time-frame expansion failed: {message}"),
        }
    }
}

impl std::error::Error for SeqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqError::Netlist(e) => Some(e),
            SeqError::Expand { .. } => None,
        }
    }
}

impl From<NetlistError> for SeqError {
    fn from(e: NetlistError) -> Self {
        SeqError::Netlist(e)
    }
}

impl From<std::io::Error> for SeqError {
    fn from(e: std::io::Error) -> Self {
        SeqError::Expand {
            message: e.to_string(),
        }
    }
}
