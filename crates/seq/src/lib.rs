//! Sequential-circuit analysis via time-frame expansion.
//!
//! The paper's n-detection machinery (worst-case `nmin`, Procedure-1
//! average case, greedy generation) is defined over combinational
//! circuits and one-vector tests. This crate extends it to sequential
//! circuits the standard way:
//!
//! 1. **FF-boundary extraction** — `ndetect-netlist` parses `DFF`/
//!    `DFFSR` elements into a [`SeqNetlist`]: a combinational core
//!    whose flip-flop outputs are pseudo-primary-inputs and whose
//!    next-state functions are pseudo-primary-outputs.
//! 2. **Broadside two-frame expansion** ([`expand`]) — two copies of
//!    the core, frame 1 feeding frame 2 through the FF boundary, true
//!    primary inputs shared across the frames.
//! 3. **Transition-delay lowering** — slow-to-rise/slow-to-fall faults
//!    at every FF-bounded node become single stuck-at faults on enable
//!    gadgets inside the expansion, so the existing
//!    [`FaultUniverse`](ndetect_faults::FaultUniverse) and every
//!    analysis built on it consume the sequential model unchanged.
//!
//! The result is an [`ExpandedModel`]; pass
//! [`ExpandedModel::explicit_targets`] to
//! [`ndetect_faults::FaultUniverse::build_explicit`] (or the stored
//! variant) and run any combinational analysis. All store artifacts
//! are keyed by the **sequential** circuit's canonical bytes, and
//! [`expand_stored`] caches the expansion itself under
//! [`KIND_EXPANDED`].
//!
//! # Example
//!
//! ```
//! use ndetect_netlist::bench_format;
//! use ndetect_faults::{FaultUniverse, UniverseOptions};
//! use ndetect_seq::{expand, FaultModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 1-bit toggler: q' = NOT(q), observed at po.
//! let src = "
//! INPUT(en)
//! OUTPUT(po)
//! q = DFF(nq)
//! nq = NOT(q)
//! po = AND(en, q)
//! ";
//! let seq = bench_format::parse_seq("tog", src)?;
//! let model = expand(&seq, FaultModel::Transition)?;
//! // Expanded inputs: the shared PI `en` plus the free state bit `q.s1`.
//! assert_eq!(model.netlist().num_inputs(), 2);
//! // Slow-to-rise + slow-to-fall at q, nq, po.
//! assert_eq!(model.targets().len(), 6);
//! let universe =
//!     FaultUniverse::build_explicit(model.netlist(), &model.explicit_targets(), UniverseOptions::default())?;
//! assert_eq!(universe.targets().len(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod error;
mod expand;

pub use artifact::{decode_expanded, encode_expanded, expand_stored, expanded_key, KIND_EXPANDED};
pub use error::SeqError;
pub use expand::{
    canonical_for, expand, ExpandedModel, FaultModel, TransitionFault, EXPANSION_VERSION,
};

#[doc(no_inline)]
pub use ndetect_netlist::SeqNetlist;
