//! Chaos coverage for the expansion path: the `seq.expand` failpoint
//! must degrade to a structured error — no panic, and no torn store
//! entry left behind by `expand_stored`.
//!
//! Lives in its own test binary because failpoints are process-global.

use ndetect_netlist::bench_format;
use ndetect_seq::{expand, expand_stored, expanded_key, FaultModel, SeqError, KIND_EXPANDED};
use ndetect_store::Store;

fn pipe1() -> ndetect_netlist::SeqNetlist {
    bench_format::parse_seq(
        "pipe1",
        "
        INPUT(a)
        OUTPUT(po)
        q = DFF(a)
        po = BUF(q)
        ",
    )
    .unwrap()
}

#[test]
fn seq_expand_failpoint_degrades_without_panic_or_torn_store() {
    let dir = std::env::temp_dir().join(format!("ndetect-seq-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let seq = pipe1();

    ndetect_chaos::arm("seq.expand", "return-err").unwrap();
    let err = expand(&seq, FaultModel::Transition).unwrap_err();
    assert!(
        matches!(&err, SeqError::Expand { message } if message.contains("seq.expand")),
        "unexpected error: {err}"
    );
    // The stored variant fails the same way and writes nothing.
    let err = expand_stored(&seq, FaultModel::Transition, Some(&store)).unwrap_err();
    assert!(matches!(err, SeqError::Expand { .. }));
    let key = expanded_key(&seq, FaultModel::Transition);
    assert!(store.load(key, KIND_EXPANDED).is_none());

    // Disarmed, the same inputs succeed and populate the store.
    ndetect_chaos::disarm_all();
    let model = expand_stored(&seq, FaultModel::Transition, Some(&store)).unwrap();
    assert_eq!(model.targets().len(), 4);
    assert!(store.load(key, KIND_EXPANDED).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
