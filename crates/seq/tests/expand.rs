//! Deterministic integration tests for time-frame expansion: gadget
//! semantics against hand-computed detection sets, artifact round
//! trips, cross-thread determinism, and warm-store behaviour.

use ndetect_faults::{FaultUniverse, UniverseOptions};
use ndetect_netlist::bench_format;
use ndetect_netlist::SeqNetlist;
use ndetect_seq::{
    decode_expanded, encode_expanded, expand, expand_stored, expanded_key, FaultModel,
};
use ndetect_store::Store;

/// `q' = a`, `po = q`: a one-flip-flop pipeline buffer.
fn dff_buffer() -> SeqNetlist {
    bench_format::parse_seq(
        "pipe1",
        "
        INPUT(a)
        OUTPUT(po)
        q = DFF(a)
        po = BUF(q)
        ",
    )
    .unwrap()
}

#[test]
fn dff_buffer_transition_detection_sets_match_hand_analysis() {
    let seq = dff_buffer();
    let model = expand(&seq, FaultModel::Transition).unwrap();
    // Inputs: shared PI `a` (slot 0, MSB of the vector index) and the
    // free state bit `q.s1` (slot 1, LSB).
    assert_eq!(model.netlist().num_inputs(), 2);
    // Instrumented nodes in core topo order: q (FF output), po (gate);
    // the true PI `a` cannot launch under broadside and is skipped.
    let labels: Vec<String> = (0..model.targets().len())
        .map(|i| model.target_label(i))
        .collect();
    assert_eq!(
        labels,
        [
            "q slow-to-rise",
            "q slow-to-fall",
            "po slow-to-rise",
            "po slow-to-fall",
        ]
    );
    let universe = FaultUniverse::build_explicit(
        model.netlist(),
        &model.explicit_targets(),
        UniverseOptions::default(),
    )
    .unwrap();
    assert!(universe.is_explicit());
    // Slow-to-rise at q needs launch a=1 with old state q.s1=0: only
    // vector 0b10 = 2. Slow-to-fall mirrors it at 0b01 = 1. The
    // buffer's faults are structurally equivalent to the FF's.
    assert_eq!(universe.target_set(0).to_vec(), [2]);
    assert_eq!(universe.target_set(1).to_vec(), [1]);
    assert_eq!(universe.target_set(2).to_vec(), [2]);
    assert_eq!(universe.target_set(3).to_vec(), [1]);
}

#[test]
fn expanded_model_matches_two_step_semantics() {
    let seq = bench_format::parse_seq(
        "tog",
        "
        INPUT(en)
        OUTPUT(po)
        q = DFF(nq)
        nq = NOT(q)
        po = AND(en, q)
        ",
    )
    .unwrap();
    for model in [FaultModel::Transition, FaultModel::StuckAt] {
        let expanded = expand(&seq, model).unwrap();
        let netlist = expanded.netlist();
        assert_eq!(netlist.num_inputs(), 2);
        for v in 0..4usize {
            // Expanded input i takes bit (I-1-i) of the vector index.
            let bits: Vec<bool> = (0..2).map(|i| (v >> (1 - i)) & 1 == 1).collect();
            let pi = &bits[..1];
            let state = &bits[1..];
            let (_, s2) = seq.step(state, pi);
            let (po2, next2) = seq.step(&s2, pi);
            let mut expected = po2;
            expected.extend(next2);
            assert_eq!(
                netlist.eval_bool(&bits),
                expected,
                "vector {v} under {model}"
            );
        }
    }
}

#[test]
fn expansion_is_deterministic_across_threads() {
    let seq = dff_buffer();
    let reference = encode_expanded(&expand(&seq, FaultModel::Transition).unwrap());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let seq = dff_buffer();
            std::thread::spawn(move || {
                encode_expanded(&expand(&seq, FaultModel::Transition).unwrap())
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), reference);
    }
}

#[test]
fn artifact_round_trip_is_bit_identical() {
    let seq = dff_buffer();
    for model in [FaultModel::Transition, FaultModel::StuckAt] {
        let fresh = expand(&seq, model).unwrap();
        let payload = encode_expanded(&fresh);
        let decoded = decode_expanded(&payload, fresh.canonical()).unwrap();
        assert_eq!(
            bench_format::write(decoded.netlist()),
            bench_format::write(fresh.netlist())
        );
        assert_eq!(
            decoded.netlist().canonical_bytes(),
            fresh.netlist().canonical_bytes()
        );
        assert_eq!(decoded.targets(), fresh.targets());
        assert_eq!(decoded.transition_faults(), fresh.transition_faults());
        assert_eq!(decoded.bridge_stems(), fresh.bridge_stems());
        assert_eq!(encode_expanded(&decoded), payload);
        // Wrong canonical bytes are a store miss, not a wrong answer.
        assert!(decode_expanded(&payload, b"not the canonical bytes").is_none());
    }
}

#[test]
fn keys_separate_models_and_circuits() {
    let seq = dff_buffer();
    let k_tr = expanded_key(&seq, FaultModel::Transition);
    let k_sa = expanded_key(&seq, FaultModel::StuckAt);
    assert_ne!(k_tr, k_sa);
    let other = bench_format::parse_seq(
        "pipe1b",
        "
        INPUT(a)
        OUTPUT(po)
        q = DFF(a)
        po = NOT(q)
        ",
    )
    .unwrap();
    assert_ne!(k_tr, expanded_key(&other, FaultModel::Transition));
}

#[test]
fn expand_stored_hits_on_the_second_call() {
    let dir = std::env::temp_dir().join(format!("ndetect-seq-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let seq = dff_buffer();
    let cold = expand_stored(&seq, FaultModel::Transition, Some(&store)).unwrap();
    assert_eq!(store.session_hits(), 0);
    let writes = store.session_writes();
    assert!(writes >= 1);
    let warm = expand_stored(&seq, FaultModel::Transition, Some(&store)).unwrap();
    assert!(store.session_hits() >= 1);
    assert_eq!(store.session_writes(), writes, "warm load must not rewrite");
    assert_eq!(encode_expanded(&warm), encode_expanded(&cold));
    // A universe built from the warm model keys identically to one
    // built from the cold model — derived artifacts agree.
    let u_cold = FaultUniverse::build_explicit(
        cold.netlist(),
        &cold.explicit_targets(),
        UniverseOptions::default(),
    )
    .unwrap();
    let u_warm = FaultUniverse::build_explicit(
        warm.netlist(),
        &warm.explicit_targets(),
        UniverseOptions::default(),
    )
    .unwrap();
    assert_eq!(u_cold.store_key(), u_warm.store_key());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stuck_at_model_lowers_collapsed_faults_of_the_expansion() {
    let seq = dff_buffer();
    let model = expand(&seq, FaultModel::StuckAt).unwrap();
    assert!(model.transition_faults().is_empty());
    assert!(!model.targets().is_empty());
    // Labels render as expanded line names.
    assert!(model.target_label(0).contains('/'));
}

#[test]
fn display_summarises_the_expansion() {
    let seq = dff_buffer();
    let model = expand(&seq, FaultModel::Transition).unwrap();
    let text = model.to_string();
    assert!(text.contains("pipe1"), "{text}");
    assert!(text.contains("transition"), "{text}");
    assert!(text.contains("1 PI + 1 state"), "{text}");
}
