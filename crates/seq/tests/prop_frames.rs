//! Differential property tests for time-frame expansion:
//!
//! * **Frame equivalence** — exhaustive fault-free simulation of the
//!   expanded two-frame netlist equals two applications of the
//!   sequential circuit's `step` semantics, for both fault models.
//! * **Determinism** — expanding the same circuit twice yields
//!   byte-identical artifacts and canonical bytes.

use ndetect_netlist::SeqNetlist;
use ndetect_seq::{encode_expanded, expand, FaultModel};
use ndetect_testutil::arb_seq_netlist;
use proptest::prelude::*;

/// Exhaustively checks observed expanded outputs against two-step
/// sequential semantics: frame-1 state is free, the single broadside
/// vector is applied across both frames, and the observed outputs are
/// the second frame's POs followed by its next-state functions.
fn assert_frame_equivalence(seq: &SeqNetlist, model: FaultModel) {
    let expanded = expand(seq, model).unwrap();
    let netlist = expanded.netlist();
    let total = netlist.num_inputs();
    let p = expanded.num_true_inputs();
    assert_eq!(p, seq.num_true_inputs());
    assert_eq!(total, p + seq.num_ffs());
    for v in 0..(1usize << total) {
        let bits: Vec<bool> = (0..total)
            .map(|i| (v >> (total - 1 - i)) & 1 == 1)
            .collect();
        let (pi, state) = bits.split_at(p);
        let (_, s2) = seq.step(state, pi);
        let (po2, next2) = seq.step(&s2, pi);
        let mut expected = po2;
        expected.extend(next2);
        assert_eq!(
            netlist.eval_bool(&bits),
            expected,
            "vector {v} under {model}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn expansion_matches_two_step_semantics(seq in arb_seq_netlist(6)) {
        assert_frame_equivalence(&seq, FaultModel::Transition);
        assert_frame_equivalence(&seq, FaultModel::StuckAt);
    }

    #[test]
    fn expansion_is_deterministic(seq in arb_seq_netlist(6)) {
        let a = expand(&seq, FaultModel::Transition).unwrap();
        let b = expand(&seq, FaultModel::Transition).unwrap();
        prop_assert_eq!(encode_expanded(&a), encode_expanded(&b));
        prop_assert_eq!(a.canonical(), b.canonical());
        prop_assert_eq!(
            a.netlist().canonical_bytes(),
            b.netlist().canonical_bytes()
        );
    }
}
