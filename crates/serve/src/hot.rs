//! The in-memory hot layer above `ndetect-store`: a small LRU of
//! deserialized artifacts (`Arc<FaultUniverse>`, `Arc<GeneratedSet>`)
//! so repeated requests skip not just the fault simulation but also the
//! disk read and decode.
//!
//! Entry count (not bytes) bounds the cache: universes for the suite
//! circuits are a few hundred KiB each, so a few dozen entries is the
//! expected working set of a hot serving loop, and the on-disk store
//! remains the capacity layer underneath.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

/// A capacity-bounded least-recently-used map. Values are cheap clones
/// (`Arc`s) shared with every borrower; eviction only drops the cache's
/// own reference, never invalidates a request mid-flight.
///
/// Eviction is a tick-stamped min-heap with lazy deletion: every use
/// pushes `(stamp, key)` and the map holds each key's live stamp, so
/// eviction pops stale heap entries (stamp no longer current) until it
/// finds the true LRU — amortized `O(log n)` per operation instead of
/// the previous `O(n)` min-scan. The heap is compacted once its stale
/// majority dominates, bounding memory at `O(live entries)`.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: usize,
    /// Monotonic use counter; the entry with the smallest live stamp is
    /// the least recently used.
    tick: u64,
    map: HashMap<K, (u64, V)>,
    /// Min-heap of `(stamp, key)` use records; an entry is live iff the
    /// map still holds exactly that stamp for the key.
    heap: BinaryHeap<Reverse<(u64, K)>>,
}

impl<K: Eq + Hash + Clone + Ord, V: Clone> Lru<K, V> {
    /// Creates an LRU holding at most `capacity` entries (a capacity of
    /// zero disables the cache: every insert is dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            tick: 0,
            map: HashMap::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let value = self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            slot.1.clone()
        });
        if value.is_some() {
            self.heap.push(Reverse((tick, key.clone())));
            self.maybe_compact();
        }
        value
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry if the cache would exceed its capacity. Returns the evicted
    /// key, if any (callers count these as `hot_lru_evictions`).
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        self.heap.push(Reverse((self.tick, key.clone())));
        self.map.insert(key, (self.tick, value));
        let mut evicted = None;
        if self.map.len() > self.capacity {
            // Pop stale use records (the lazy deletions) until the top
            // of the heap is a key whose live stamp matches — that is
            // the least recently used entry.
            while let Some(Reverse((stamp, key))) = self.heap.pop() {
                if self.map.get(&key).is_some_and(|(live, _)| *live == stamp) {
                    self.map.remove(&key);
                    evicted = Some(key);
                    break;
                }
            }
        }
        self.maybe_compact();
        evicted
    }

    /// Rebuilds the heap from the live stamps once stale records are
    /// the large majority, keeping heap memory `O(live entries)`.
    fn maybe_compact(&mut self) {
        if self.heap.len() > 32 && self.heap.len() > 4 * self.map.len() {
            self.heap = self
                .map
                .iter()
                .map(|(k, (stamp, _))| Reverse((*stamp, k.clone())))
                .collect();
        }
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(&1), Some("a")); // 1 is now hotter than 2
        assert_eq!(lru.insert(3, "c"), Some(2)); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some("a"));
        assert_eq!(lru.get(&3), Some("c"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut lru = Lru::new(2);
        assert_eq!(lru.insert(1, "a"), None);
        assert_eq!(lru.insert(1, "a2"), None);
        assert_eq!(lru.insert(2, "b"), None);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some("a2"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut lru = Lru::new(0);
        assert_eq!(lru.insert(1, "a"), None);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
    }

    #[test]
    fn heavy_churn_tracks_exact_lru_order_and_stays_compact() {
        // Cross-check the heap implementation against a brute-force
        // recency model under heavy mixed get/insert churn.
        let mut lru = Lru::new(8);
        let mut model: Vec<u32> = Vec::new(); // most recent last
        for round in 0u32..4000 {
            let key = (round * 7 + round / 3) % 32;
            if round % 3 == 0 {
                let hit = lru.get(&key).is_some();
                assert_eq!(hit, model.contains(&key), "round {round} key {key}");
                if hit {
                    model.retain(|&k| k != key);
                    model.push(key);
                }
            } else {
                let evicted = lru.insert(key, key);
                model.retain(|&k| k != key);
                model.push(key);
                if model.len() > 8 {
                    let lru_key = model.remove(0);
                    assert_eq!(evicted, Some(lru_key), "round {round}");
                } else {
                    assert_eq!(evicted, None, "round {round}");
                }
            }
        }
        assert_eq!(lru.len(), model.len());
        // Lazy deletion must not accumulate unboundedly.
        assert!(
            lru.heap.len() <= 4 * 8 + 32,
            "heap grew to {}",
            lru.heap.len()
        );
    }
}
