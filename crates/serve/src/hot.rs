//! The in-memory hot layer above `ndetect-store`: a small LRU of
//! deserialized artifacts (`Arc<FaultUniverse>`, `Arc<GeneratedSet>`)
//! so repeated requests skip not just the fault simulation but also the
//! disk read and decode.
//!
//! Entry count (not bytes) bounds the cache: universes for the suite
//! circuits are a few hundred KiB each, so a few dozen entries is the
//! expected working set of a hot serving loop, and the on-disk store
//! remains the capacity layer underneath.

use std::collections::HashMap;
use std::hash::Hash;

/// A capacity-bounded least-recently-used map. Values are cheap clones
/// (`Arc`s) shared with every borrower; eviction only drops the cache's
/// own reference, never invalidates a request mid-flight.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: usize,
    /// Monotonic use counter; the entry with the smallest stamp is the
    /// least recently used.
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    /// Creates an LRU holding at most `capacity` entries (a capacity of
    /// zero disables the cache: every insert is dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            slot.1.clone()
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry if the cache would exceed its capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, value));
        if self.map.len() > self.capacity {
            // O(n) scan — capacities are tens of entries, and insert
            // only runs on build completion, never on the hit path.
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(&1), Some("a")); // 1 is now hotter than 2
        lru.insert(3, "c"); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some("a"));
        assert_eq!(lru.get(&3), Some("c"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(1, "a2");
        lru.insert(2, "b");
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some("a2"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut lru = Lru::new(0);
        lru.insert(1, "a");
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
    }
}
