//! Single-flight deduplication: N concurrent callers asking for the
//! same key trigger exactly one execution of the builder; everyone else
//! blocks until the leader publishes and then shares the result.
//!
//! This is the serving-side answer to a thundering herd of identical
//! analysis requests: universe and generated-set builds are
//! deterministic and content-keyed ([`ndetect_store::ArtifactKey`]), so
//! two in-flight builds of the same key would produce bit-identical
//! artifacts — running both is pure waste. The pattern (and the name)
//! come from inference-serving and CDN front ends.
//!
//! A leader that **panics** poisons only its own flight, never its
//! waiters: each waiter observes the poisoned state, counts it, and
//! falls through to a fresh build (typically becoming the next leader).
//! One crashed build therefore costs the herd one retry, not a panic
//! cascade — the invariant the serve layer's `catch_unwind` isolation
//! builds on.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// What waiters on a flight eventually observe.
enum FlightState<V> {
    /// The leader is still building.
    Pending,
    /// The leader published; everyone clones this.
    Done(V),
    /// The leader panicked before publishing; waiters must rebuild.
    Poisoned,
}

/// One in-flight build: followers wait on the condvar until the leader
/// publishes its result or poisons the flight.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }
}

/// A map of in-flight builds keyed by `K`; see the module docs.
///
/// `V` must be `Clone` because every coalesced caller receives the same
/// result — in practice an `Arc` (or a `Result<Arc<_>, String>`).
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
    /// Builder executions (leaders) since construction.
    executions: AtomicU64,
    /// Calls that joined an existing flight instead of building.
    coalesced: AtomicU64,
    /// Waits that observed a poisoned flight and fell through to a
    /// fresh build.
    poisoned: AtomicU64,
    /// Optional externally owned counter ticked alongside `poisoned`,
    /// so a metrics registry can watch flight poisonings live.
    poison_counter: Option<Arc<ndetect_obs::Counter>>,
}

impl<K, V> Default for SingleFlight<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> SingleFlight<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    /// Creates an empty flight map.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
            executions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            poison_counter: None,
        }
    }

    /// Like [`SingleFlight::new`], but also ticks `counter` every time
    /// a waiter observes a poisoned flight (for metrics exposition).
    #[must_use]
    pub fn with_poison_counter(counter: Arc<ndetect_obs::Counter>) -> Self {
        SingleFlight {
            poison_counter: Some(counter),
            ..Self::new()
        }
    }

    /// Runs `build` for `key`, coalescing with any concurrent call for
    /// the same key: exactly one caller (the leader) executes `build`;
    /// the rest block and receive a clone of the leader's result.
    ///
    /// The flight is removed once the leader publishes, so a *later*
    /// call (no overlap) runs `build` again — layering a cache above
    /// this (the hot LRU, the on-disk store) is the caller's job, and
    /// the leader's `build` should re-check that cache first.
    ///
    /// If the leader panics, its waiters do **not** panic: each counts
    /// the poisoning and retries — replacing the dead flight and
    /// building fresh (one of them becomes the new leader; the rest
    /// coalesce onto it). The panic propagates only out of the leader's
    /// own call, so a `catch_unwind` around the leader contains the
    /// blast radius entirely.
    pub fn run<F>(&self, key: K, build: F) -> V
    where
        F: FnOnce() -> V,
    {
        loop {
            let flight = {
                let mut map = self.inflight.lock().expect("singleflight map");
                match map.get(&key) {
                    // Join the live flight; a poisoned leftover (its
                    // leader's cleanup hasn't run yet) is replaced so
                    // retrying waiters can't spin on a dead flight.
                    Some(existing) if !poisoned(existing) => {
                        let flight = Arc::clone(existing);
                        drop(map);
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        match Self::wait(&flight) {
                            Some(value) => return value,
                            None => {
                                self.record_poisoned();
                                continue;
                            }
                        }
                    }
                    _ => {
                        let flight = Arc::new(Flight::new());
                        map.insert(key.clone(), Arc::clone(&flight));
                        flight
                    }
                }
            };

            // Leader: wake followers even if `build` panics, and remove
            // the flight from the map — but only *this* flight (a
            // retrying waiter may already have replaced it).
            struct Guard<'a, K: Eq + Hash, V> {
                sf: &'a SingleFlight<K, V>,
                key: &'a K,
                flight: &'a Arc<Flight<V>>,
                published: bool,
            }
            impl<K: Eq + Hash, V> Drop for Guard<'_, K, V> {
                fn drop(&mut self) {
                    if !self.published {
                        *self.flight.state.lock().expect("flight lock") = FlightState::Poisoned;
                        self.flight.done.notify_all();
                    }
                    if let Ok(mut map) = self.sf.inflight.lock() {
                        if map
                            .get(self.key)
                            .is_some_and(|f| Arc::ptr_eq(f, self.flight))
                        {
                            map.remove(self.key);
                        }
                    }
                }
            }

            let mut guard = Guard {
                sf: self,
                key: &key,
                flight: &flight,
                published: false,
            };
            self.executions.fetch_add(1, Ordering::Relaxed);
            let value = build();
            *flight.state.lock().expect("flight lock") = FlightState::Done(value.clone());
            guard.published = true;
            flight.done.notify_all();
            drop(guard); // removes the flight from the map
            return value;
        }
    }

    /// Blocks until the flight resolves; `None` means the leader
    /// poisoned it and the caller should rebuild.
    fn wait(flight: &Flight<V>) -> Option<V> {
        let mut state = flight.state.lock().expect("flight lock");
        loop {
            match &*state {
                FlightState::Done(value) => return Some(value.clone()),
                FlightState::Poisoned => return None,
                FlightState::Pending => {
                    state = flight.done.wait(state).expect("flight lock");
                }
            }
        }
    }

    fn record_poisoned(&self) {
        self.poisoned.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = &self.poison_counter {
            counter.inc();
        }
    }

    /// How many times a builder actually executed (leaders).
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// How many calls were coalesced onto another caller's build.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// How many waits observed a poisoned flight (and retried).
    #[must_use]
    pub fn poisoned(&self) -> u64 {
        self.poisoned.load(Ordering::Relaxed)
    }
}

/// Whether a flight is already poisoned (non-blocking probe used when
/// deciding to join vs. replace it).
fn poisoned<V>(flight: &Flight<V>) -> bool {
    matches!(
        &*flight.state.lock().expect("flight lock"),
        FlightState::Poisoned
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn serial_calls_each_execute() {
        let sf: SingleFlight<u64, u64> = SingleFlight::new();
        assert_eq!(sf.run(1, || 10), 10);
        assert_eq!(sf.run(1, || 20), 20); // no overlap: builds again
        assert_eq!(sf.executions(), 2);
        assert_eq!(sf.coalesced(), 0);
    }

    #[test]
    fn concurrent_identical_calls_build_exactly_once() {
        let sf: SingleFlight<u64, u64> = SingleFlight::new();
        let builds = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        let results: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        sf.run(42, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            // Hold the flight open long enough that the
                            // herd piles onto it.
                            std::thread::sleep(Duration::from_millis(50));
                            7
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&r| r == 7));
        assert_eq!(builds.load(Ordering::Relaxed), 1, "single-flight");
        assert_eq!(sf.executions(), 1);
        assert_eq!(sf.coalesced(), 7);
    }

    #[test]
    fn distinct_keys_build_independently() {
        let sf: SingleFlight<u64, u64> = SingleFlight::new();
        let barrier = Barrier::new(4);
        std::thread::scope(|scope| {
            for k in 0..4u64 {
                let sf = &sf;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    assert_eq!(sf.run(k, || k * 10), k * 10);
                });
            }
        });
        assert_eq!(sf.executions(), 4);
    }

    #[test]
    fn waiters_on_a_panicked_leader_rebuild_instead_of_panicking() {
        let sf: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new());
        let inside_build = Arc::new(Barrier::new(2));
        let leader = {
            let sf = Arc::clone(&sf);
            let inside_build = Arc::clone(&inside_build);
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    sf.run(9, || {
                        inside_build.wait();
                        std::thread::sleep(Duration::from_millis(50));
                        panic!("leader died");
                    })
                }));
                assert!(result.is_err(), "the leader itself still panics");
            })
        };
        inside_build.wait(); // leader is inside its build
        let followers: Vec<_> = (0..4)
            .map(|i| {
                let sf = Arc::clone(&sf);
                std::thread::spawn(move || sf.run(9, move || 100 + i))
            })
            .collect();
        leader.join().unwrap();
        // Every follower gets a real value — one of the retry builds —
        // and nobody propagates the leader's panic.
        for follower in followers {
            let value = follower.join().expect("follower must not panic");
            assert!((100..104).contains(&value), "got {value}");
        }
        assert!(sf.poisoned() >= 1, "the poisoning was observed and counted");
        // The map is clean: a later call builds fresh.
        assert_eq!(sf.run(9, || 5), 5);
    }

    #[test]
    fn poison_counter_hook_ticks_an_external_counter() {
        let counter = Arc::new(ndetect_obs::Counter::new());
        let sf: Arc<SingleFlight<u64, u64>> =
            Arc::new(SingleFlight::with_poison_counter(Arc::clone(&counter)));
        let inside_build = Arc::new(Barrier::new(2));
        let leader = {
            let sf = Arc::clone(&sf);
            let inside_build = Arc::clone(&inside_build);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    sf.run(1, || {
                        inside_build.wait();
                        std::thread::sleep(Duration::from_millis(30));
                        panic!("boom");
                    })
                }));
            })
        };
        inside_build.wait();
        let value = sf.run(1, || 77);
        leader.join().unwrap();
        assert_eq!(value, 77);
        assert_eq!(counter.get(), sf.poisoned());
        assert!(counter.get() >= 1);
    }
}
