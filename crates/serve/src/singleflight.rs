//! Single-flight deduplication: N concurrent callers asking for the
//! same key trigger exactly one execution of the builder; everyone else
//! blocks until the leader publishes and then shares the result.
//!
//! This is the serving-side answer to a thundering herd of identical
//! analysis requests: universe and generated-set builds are
//! deterministic and content-keyed ([`ndetect_store::ArtifactKey`]), so
//! two in-flight builds of the same key would produce bit-identical
//! artifacts — running both is pure waste. The pattern (and the name)
//! come from inference-serving and CDN front ends.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One in-flight build: followers wait on the condvar until the leader
/// publishes its result.
struct Flight<V> {
    result: Mutex<Option<V>>,
    done: Condvar,
    /// Set when the leader panicked instead of publishing, so followers
    /// fail loudly instead of hanging.
    poisoned: Mutex<bool>,
}

impl<V> Flight<V> {
    fn new() -> Self {
        Flight {
            result: Mutex::new(None),
            done: Condvar::new(),
            poisoned: Mutex::new(false),
        }
    }
}

/// A map of in-flight builds keyed by `K`; see the module docs.
///
/// `V` must be `Clone` because every coalesced caller receives the same
/// result — in practice an `Arc` (or a `Result<Arc<_>, String>`).
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
    /// Builder executions (leaders) since construction.
    executions: AtomicU64,
    /// Calls that joined an existing flight instead of building.
    coalesced: AtomicU64,
}

impl<K, V> Default for SingleFlight<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> SingleFlight<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    /// Creates an empty flight map.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
            executions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Runs `build` for `key`, coalescing with any concurrent call for
    /// the same key: exactly one caller (the leader) executes `build`;
    /// the rest block and receive a clone of the leader's result.
    ///
    /// The flight is removed once the leader publishes, so a *later*
    /// call (no overlap) runs `build` again — layering a cache above
    /// this (the hot LRU, the on-disk store) is the caller's job, and
    /// the leader's `build` should re-check that cache first.
    ///
    /// # Panics
    ///
    /// Panics if the leader for this key panicked inside `build`
    /// (followers must not hang or silently observe a missing result).
    pub fn run<F>(&self, key: K, build: F) -> V
    where
        F: FnOnce() -> V,
    {
        let flight = {
            let mut map = self.inflight.lock().expect("singleflight map poisoned");
            if let Some(existing) = map.get(&key) {
                let flight = Arc::clone(existing);
                drop(map);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return Self::wait(&flight);
            }
            let flight = Arc::new(Flight::new());
            map.insert(key.clone(), Arc::clone(&flight));
            flight
        };

        // Leader: make sure followers are woken even if `build` panics.
        struct Guard<'a, K: Eq + Hash, V> {
            sf: &'a SingleFlight<K, V>,
            key: &'a K,
            flight: &'a Flight<V>,
            published: bool,
        }
        impl<K: Eq + Hash, V> Drop for Guard<'_, K, V> {
            fn drop(&mut self) {
                if !self.published {
                    *self.flight.poisoned.lock().expect("flight lock") = true;
                    self.flight.done.notify_all();
                }
                if let Ok(mut map) = self.sf.inflight.lock() {
                    map.remove(self.key);
                }
            }
        }

        let mut guard = Guard {
            sf: self,
            key: &key,
            flight: &flight,
            published: false,
        };
        self.executions.fetch_add(1, Ordering::Relaxed);
        let value = build();
        *flight.result.lock().expect("flight lock") = Some(value.clone());
        guard.published = true;
        flight.done.notify_all();
        drop(guard); // removes the flight from the map
        value
    }

    fn wait(flight: &Flight<V>) -> V {
        let mut result = flight.result.lock().expect("flight lock");
        loop {
            if let Some(value) = result.as_ref() {
                return value.clone();
            }
            assert!(
                !*flight.poisoned.lock().expect("flight lock"),
                "single-flight leader panicked"
            );
            result = flight.done.wait(result).expect("flight lock");
        }
    }

    /// How many times a builder actually executed (leaders).
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// How many calls were coalesced onto another caller's build.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn serial_calls_each_execute() {
        let sf: SingleFlight<u64, u64> = SingleFlight::new();
        assert_eq!(sf.run(1, || 10), 10);
        assert_eq!(sf.run(1, || 20), 20); // no overlap: builds again
        assert_eq!(sf.executions(), 2);
        assert_eq!(sf.coalesced(), 0);
    }

    #[test]
    fn concurrent_identical_calls_build_exactly_once() {
        let sf: SingleFlight<u64, u64> = SingleFlight::new();
        let builds = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        let results: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        sf.run(42, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            // Hold the flight open long enough that the
                            // herd piles onto it.
                            std::thread::sleep(Duration::from_millis(50));
                            7
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&r| r == 7));
        assert_eq!(builds.load(Ordering::Relaxed), 1, "single-flight");
        assert_eq!(sf.executions(), 1);
        assert_eq!(sf.coalesced(), 7);
    }

    #[test]
    fn distinct_keys_build_independently() {
        let sf: SingleFlight<u64, u64> = SingleFlight::new();
        let barrier = Barrier::new(4);
        std::thread::scope(|scope| {
            for k in 0..4u64 {
                let sf = &sf;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    assert_eq!(sf.run(k, || k * 10), k * 10);
                });
            }
        });
        assert_eq!(sf.executions(), 4);
    }

    #[test]
    fn leader_panic_poisons_followers_not_the_map() {
        let sf: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new());
        let barrier = Arc::new(Barrier::new(2));
        let leader = {
            let sf = Arc::clone(&sf);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    sf.run(9, || {
                        barrier.wait();
                        std::thread::sleep(Duration::from_millis(50));
                        panic!("leader died");
                    })
                }));
                assert!(result.is_err());
            })
        };
        barrier.wait(); // leader is inside its build
        let follower = {
            let sf = Arc::clone(&sf);
            std::thread::spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sf.run(9, || 1))).is_err()
            })
        };
        leader.join().unwrap();
        let follower_panicked = follower.join().unwrap();
        // The follower either joined the poisoned flight (and panicked)
        // or arrived after cleanup and built fresh; both are sound.
        let rebuilt = sf.run(9, || 5);
        assert_eq!(rebuilt, 5, "map must not stay poisoned");
        let _ = follower_panicked;
    }
}
