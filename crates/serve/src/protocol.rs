//! The newline-delimited request protocol spoken by `ndet serve`.
//!
//! A request is one text line: a verb, then positional and `key=value`
//! tokens. A reply is either
//!
//! ```text
//! ok <nbytes>\n<nbytes of payload>
//! ```
//!
//! — the payload being exactly the bytes the matching one-shot `ndet`
//! command prints on stdout — or a one-line structured error
//!
//! ```text
//! err <code> <message>\n
//! ```
//!
//! where `<code>` is a stable machine-readable token (`parse`,
//! `analysis`, `timeout`, `busy`, `shutdown`, `internal`, `denied`) and
//! `<message>` is human-readable
//! (newlines stripped so the reply stays one line). Connections are
//! persistent: a client may pipeline any number of request lines;
//! closing the write side ends the conversation.
//!
//! Long-running verbs (`corpus`) may precede the terminal reply with
//! any number of incremental frames
//!
//! ```text
//! row <nbytes>\n<nbytes of chunk>
//! ```
//!
//! streamed as each unit of work completes; the terminal `ok` payload
//! carries the closing bytes, and the concatenation of every `row`
//! chunk plus the `ok` payload is byte-identical to the unstreamed
//! reply. [`read_reply`] accumulates the frames transparently, so
//! clients that do not care about incremental progress see one `ok`.
//!
//! Verbs:
//!
//! ```text
//! stats <circuit> [model=transition|stuck-at]
//! worst <circuit> [floor=N] [model=M]
//! gen <circuit> [n=N] [compact] [seed=S] [model=M]
//! corpus <dir> [format=csv|json] [max_inputs=N] [recursive]
//! counters
//! metrics
//! ping
//! sleep [ms=N]
//! chaos set <site>=<spec> | chaos list | chaos clear
//! ```
//!
//! `<circuit>` resolves through the combinational suite first, then the
//! sequential registry (`s27`, `shift4`, `cnt3`); sequential circuits
//! are analysed via two-frame broadside expansion under `model=`
//! (default `transition`).
//!
//! The `chaos` verb (failpoint control, `ndetect-chaos` spec grammar)
//! only works when the server was started with `--chaos`; otherwise it
//! answers `err denied`.
//!
//! Every analysis verb also accepts `threads=N` and `mem_budget=B`
//! (same semantics as the CLI flags — pure performance knobs).

use crate::render::{CorpusRequest, Knobs};
use ndetect_sim::MemoryBudget;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `stats <circuit> [model=M]`: structure + fault population +
    /// kernel report.
    Stats {
        /// Suite circuit name (`ndet list`) or sequential registry name.
        circuit: String,
        /// Fault model for sequential circuits (`model=`, unresolved
        /// until execution; `None` defaults to transition).
        model: Option<String>,
        /// Performance knobs (`threads=`, `mem_budget=`).
        knobs: Knobs,
    },
    /// `worst <circuit> [floor=N] [model=M]`: worst-case nmin analysis.
    Worst {
        /// Suite circuit name or sequential registry name.
        circuit: String,
        /// Distribution floor (default 100, like `--floor`).
        floor: usize,
        /// Fault model for sequential circuits.
        model: Option<String>,
        /// Performance knobs.
        knobs: Knobs,
    },
    /// `gen <circuit> [n=N] [compact] [seed=S] [model=M]`: n-detection
    /// set generation.
    Gen {
        /// Suite circuit name or sequential registry name.
        circuit: String,
        /// Detection multiplicity (default 10, like `--n`).
        n: u32,
        /// Whether to reverse-order compact the set.
        compact: bool,
        /// Tie-breaking seed.
        seed: Option<u64>,
        /// Fault model for sequential circuits.
        model: Option<String>,
        /// Performance knobs.
        knobs: Knobs,
    },
    /// `corpus <dir> [format=csv|json] [max_inputs=N] [recursive]`.
    Corpus {
        /// The corpus request (directory, format, cone threshold).
        request: CorpusRequest,
        /// Performance knobs.
        knobs: Knobs,
    },
    /// `counters`: the engine's build/traffic counters.
    Counters,
    /// `metrics`: the Prometheus-style text exposition (the engine's
    /// registry plus the process-global library metrics).
    Metrics,
    /// `ping`: liveness probe (replies `ok` with payload `pong\n`).
    Ping,
    /// `sleep [ms=N]`: a deterministic slow job (test/CI aid for the
    /// timeout and drain paths; default 100ms).
    Sleep {
        /// How long the job holds its worker.
        ms: u64,
    },
    /// `chaos <set|list|clear>`: failpoint control (debug-gated behind
    /// the server's `--chaos` flag).
    Chaos(ChaosCommand),
}

/// A parsed `chaos` sub-command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosCommand {
    /// `chaos set <site>=<spec>`: arm one failpoint (the spec uses the
    /// `ndetect-chaos` grammar, e.g. `one-shot@2:panic`).
    Set {
        /// The failpoint site name.
        site: String,
        /// The `trigger:action` spec.
        spec: String,
    },
    /// `chaos list`: every registered site with its spec and counters.
    List,
    /// `chaos clear`: disarm every site.
    Clear,
}

/// A structured error reply: a stable code plus a human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorReply {
    /// Stable machine-readable token: `parse`, `analysis`, `timeout`,
    /// `busy`, `shutdown`, `internal`, `denied`.
    pub code: &'static str,
    /// Human-readable detail (newlines are stripped on the wire).
    pub message: String,
}

impl ErrorReply {
    /// A `parse` error (malformed request line).
    #[must_use]
    pub fn parse(message: impl Into<String>) -> Self {
        ErrorReply {
            code: "parse",
            message: message.into(),
        }
    }

    /// An `analysis` error (the request was well-formed but the
    /// analysis failed — unknown circuit, too wide, bad directory...).
    #[must_use]
    pub fn analysis(message: impl Into<String>) -> Self {
        ErrorReply {
            code: "analysis",
            message: message.into(),
        }
    }

    /// An `internal` error: the job crashed (panicked) instead of
    /// failing cleanly. The server caught it, stayed up, and a retry is
    /// safe — any poisoned single-flight is rebuilt fresh.
    #[must_use]
    pub fn internal(message: impl Into<String>) -> Self {
        ErrorReply {
            code: "internal",
            message: message.into(),
        }
    }

    /// A `denied` error: the verb exists but is disabled on this server
    /// (e.g. `chaos` without `--chaos`).
    #[must_use]
    pub fn denied(message: impl Into<String>) -> Self {
        ErrorReply {
            code: "denied",
            message: message.into(),
        }
    }
}

/// Splits a `key=value` token; `None` for bare (positional) tokens.
fn split_kv(token: &str) -> Option<(&str, &str)> {
    token.split_once('=')
}

/// Parses `threads=` / `mem_budget=` off a token; `Ok(true)` when the
/// token was consumed as a knob.
fn parse_knob(knobs: &mut Knobs, key: &str, value: &str) -> Result<bool, ErrorReply> {
    match key {
        "threads" => {
            knobs.threads = value
                .parse()
                .map_err(|_| ErrorReply::parse(format!("bad threads value `{value}`")))?;
            Ok(true)
        }
        "mem_budget" => {
            knobs.mem_budget = MemoryBudget::parse(value)
                .map_err(|e| ErrorReply::parse(format!("bad mem_budget value: {e}")))?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, ErrorReply> {
    value
        .parse()
        .map_err(|_| ErrorReply::parse(format!("bad {key} value `{value}`")))
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a `parse` [`ErrorReply`] on unknown verbs, missing
    /// positionals, or malformed `key=value` tokens.
    pub fn parse(line: &str) -> Result<Self, ErrorReply> {
        let mut tokens = line.split_whitespace();
        let verb = tokens
            .next()
            .ok_or_else(|| ErrorReply::parse("empty request"))?;
        let rest: Vec<&str> = tokens.collect();

        // Shared scan: one positional (the circuit/dir), plus knobs,
        // plus verb-specific key=value and bare tokens handed back to
        // the caller.
        let mut positional: Option<&str> = None;
        let mut knobs = Knobs::default();
        let mut extras: Vec<(&str, Option<&str>)> = Vec::new();
        for token in &rest {
            if let Some((key, value)) = split_kv(token) {
                if !parse_knob(&mut knobs, key, value)? {
                    extras.push((key, Some(value)));
                }
            } else if positional.is_none() {
                positional = Some(token);
            } else {
                extras.push((token, None));
            }
        }
        let positional_required = |what: &str| {
            positional
                .map(str::to_string)
                .ok_or_else(|| ErrorReply::parse(format!("missing {what}")))
        };
        let reject_extras = |verb: &str, extras: &[(&str, Option<&str>)]| {
            if let Some((key, _)) = extras.first() {
                return Err(ErrorReply::parse(format!(
                    "unknown token `{key}` for `{verb}`"
                )));
            }
            Ok(())
        };

        match verb {
            "stats" => {
                let mut model = None;
                for (key, value) in &extras {
                    match (*key, value) {
                        ("model", Some(v)) => model = Some((*v).to_string()),
                        _ => {
                            return Err(ErrorReply::parse(format!(
                                "unknown token `{key}` for `stats`"
                            )))
                        }
                    }
                }
                Ok(Request::Stats {
                    circuit: positional_required("circuit name")?,
                    model,
                    knobs,
                })
            }
            "worst" => {
                let mut floor = 100usize;
                let mut model = None;
                for (key, value) in &extras {
                    match (*key, value) {
                        ("floor", Some(v)) => floor = parse_num("floor", v)?,
                        ("model", Some(v)) => model = Some((*v).to_string()),
                        _ => {
                            return Err(ErrorReply::parse(format!(
                                "unknown token `{key}` for `worst`"
                            )))
                        }
                    }
                }
                Ok(Request::Worst {
                    circuit: positional_required("circuit name")?,
                    floor,
                    model,
                    knobs,
                })
            }
            "gen" => {
                let mut n = 10u32;
                let mut compact = false;
                let mut seed = None;
                let mut model = None;
                for (key, value) in &extras {
                    match (*key, value) {
                        ("n", Some(v)) => n = parse_num("n", v)?,
                        ("seed", Some(v)) => seed = Some(parse_num("seed", v)?),
                        ("compact", None) => compact = true,
                        ("model", Some(v)) => model = Some((*v).to_string()),
                        _ => {
                            return Err(ErrorReply::parse(format!(
                                "unknown token `{key}` for `gen`"
                            )))
                        }
                    }
                }
                Ok(Request::Gen {
                    circuit: positional_required("circuit name")?,
                    n,
                    compact,
                    seed,
                    model,
                    knobs,
                })
            }
            "corpus" => {
                let mut format = "csv".to_string();
                let mut max_inputs = 14usize;
                let mut recursive = false;
                for (key, value) in &extras {
                    match (*key, value) {
                        ("format", Some(v)) => format = (*v).to_string(),
                        ("max_inputs", Some(v)) => max_inputs = parse_num("max_inputs", v)?,
                        ("recursive", None) => recursive = true,
                        _ => {
                            return Err(ErrorReply::parse(format!(
                                "unknown token `{key}` for `corpus`"
                            )))
                        }
                    }
                }
                Ok(Request::Corpus {
                    request: CorpusRequest {
                        dir: PathBuf::from(positional_required("corpus directory")?),
                        format,
                        max_inputs,
                        recursive,
                    },
                    knobs,
                })
            }
            "counters" => {
                reject_extras("counters", &extras)?;
                if positional.is_some() {
                    return Err(ErrorReply::parse("`counters` takes no arguments"));
                }
                Ok(Request::Counters)
            }
            "metrics" => {
                reject_extras("metrics", &extras)?;
                if positional.is_some() {
                    return Err(ErrorReply::parse("`metrics` takes no arguments"));
                }
                Ok(Request::Metrics)
            }
            "ping" => {
                reject_extras("ping", &extras)?;
                if positional.is_some() {
                    return Err(ErrorReply::parse("`ping` takes no arguments"));
                }
                Ok(Request::Ping)
            }
            "sleep" => {
                let mut ms = 100u64;
                for (key, value) in &extras {
                    match (*key, value) {
                        ("ms", Some(v)) => ms = parse_num("ms", v)?,
                        _ => {
                            return Err(ErrorReply::parse(format!(
                                "unknown token `{key}` for `sleep`"
                            )))
                        }
                    }
                }
                if positional.is_some() {
                    return Err(ErrorReply::parse("`sleep` takes only ms=N"));
                }
                Ok(Request::Sleep { ms })
            }
            "chaos" => match positional {
                Some("set") => match extras.as_slice() {
                    [(site, Some(spec))] => Ok(Request::Chaos(ChaosCommand::Set {
                        site: (*site).to_string(),
                        spec: (*spec).to_string(),
                    })),
                    _ => Err(ErrorReply::parse(
                        "`chaos set` wants exactly one <site>=<spec>",
                    )),
                },
                Some("list") => {
                    reject_extras("chaos list", &extras)?;
                    Ok(Request::Chaos(ChaosCommand::List))
                }
                Some("clear") => {
                    reject_extras("chaos clear", &extras)?;
                    Ok(Request::Chaos(ChaosCommand::Clear))
                }
                Some(other) => Err(ErrorReply::parse(format!(
                    "unknown chaos sub-command `{other}` (set | list | clear)"
                ))),
                None => Err(ErrorReply::parse("`chaos` wants set | list | clear")),
            },
            other => Err(ErrorReply::parse(format!("unknown verb `{other}`"))),
        }
    }
}

/// Writes an `ok` reply: header line with the payload byte count, then
/// the payload verbatim.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_ok(writer: &mut impl Write, payload: &str) -> io::Result<()> {
    write!(writer, "ok {}\n{payload}", payload.len())?;
    writer.flush()
}

/// Writes one incremental `row` frame: a counted chunk of the body
/// streamed ahead of the terminal reply. The concatenation of every
/// `row` chunk plus the terminal `ok` payload must be byte-identical to
/// the unstreamed reply.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_row(writer: &mut impl Write, chunk: &str) -> io::Result<()> {
    write!(writer, "row {}\n{chunk}", chunk.len())?;
    writer.flush()
}

/// Writes an `err` reply (one line; embedded newlines in the message
/// are flattened to spaces so the framing survives).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_err(writer: &mut impl Write, error: &ErrorReply) -> io::Result<()> {
    let message = error.message.replace('\n', " ");
    writeln!(writer, "err {} {}", error.code, message.trim_end())?;
    writer.flush()
}

/// A reply read back by a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `ok`: the payload bytes (exactly what one-shot `ndet` prints).
    Ok(String),
    /// `err`: structured code + message.
    Err {
        /// The stable error code.
        code: String,
        /// The human-readable message.
        message: String,
    },
}

/// Reads one reply: any number of incremental `row` frames, then the
/// terminal header (a counted payload for `ok`, one line for `err`).
/// Streamed `row` chunks are accumulated in order and prepended to the
/// `ok` payload, so callers observe exactly the unstreamed reply. Rows
/// preceding an `err` are discarded — a partial stream that failed is
/// not a usable body.
///
/// # Errors
///
/// Returns `InvalidData` on malformed headers, `UnexpectedEof` when the
/// server closed mid-reply.
pub fn read_reply(reader: &mut impl BufRead) -> io::Result<Reply> {
    let read_counted = |reader: &mut dyn BufRead, header: &str, rest: &str| -> io::Result<String> {
        let nbytes: usize = rest.trim().parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad reply header `{header}`"),
            )
        })?;
        let mut payload = vec![0u8; nbytes];
        reader.read_exact(&mut payload)?;
        String::from_utf8(payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "payload is not UTF-8"))
    };
    let mut accumulated = String::new();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            ));
        }
        let header = header.trim_end_matches('\n');
        if let Some(rest) = header.strip_prefix("row ") {
            accumulated.push_str(&read_counted(reader, header, rest)?);
        } else if let Some(rest) = header.strip_prefix("ok ") {
            accumulated.push_str(&read_counted(reader, header, rest)?);
            return Ok(Reply::Ok(accumulated));
        } else if let Some(rest) = header.strip_prefix("err ") {
            let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
            return Ok(Reply::Err {
                code: code.to_string(),
                message: message.to_string(),
            });
        } else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad reply header `{header}`"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_verbs() {
        assert_eq!(Request::parse("ping").unwrap(), Request::Ping);
        assert_eq!(Request::parse("counters").unwrap(), Request::Counters);
        assert_eq!(Request::parse("metrics").unwrap(), Request::Metrics);
        let stats = Request::parse("stats figure1").unwrap();
        assert!(matches!(stats, Request::Stats { ref circuit, .. } if circuit == "figure1"));
        let worst = Request::parse("worst c17 floor=2").unwrap();
        assert!(matches!(worst, Request::Worst { floor: 2, .. }));
        let gen = Request::parse("gen figure1 n=3 compact seed=7").unwrap();
        assert!(matches!(
            gen,
            Request::Gen {
                n: 3,
                compact: true,
                seed: Some(7),
                ..
            }
        ));
        let corpus = Request::parse("corpus /tmp/benches format=json recursive").unwrap();
        assert!(
            matches!(corpus, Request::Corpus { ref request, .. } if request.format == "json"
                && request.recursive)
        );
    }

    #[test]
    fn parses_the_chaos_verb() {
        assert_eq!(
            Request::parse("chaos set store.save.write=one-shot@2:torn-write").unwrap(),
            Request::Chaos(ChaosCommand::Set {
                site: "store.save.write".to_string(),
                spec: "one-shot@2:torn-write".to_string(),
            })
        );
        assert_eq!(
            Request::parse("chaos list").unwrap(),
            Request::Chaos(ChaosCommand::List)
        );
        assert_eq!(
            Request::parse("chaos clear").unwrap(),
            Request::Chaos(ChaosCommand::Clear)
        );
        // The spec is passed through opaquely; validation happens when
        // the server arms it, not at parse time.
        assert!(Request::parse("chaos set x=utter:nonsense").is_ok());
        for bad in [
            "chaos",
            "chaos explode",
            "chaos set",
            "chaos set bare-token",
            "chaos set a=b c=d",
            "chaos list extra",
            "chaos clear extra",
        ] {
            assert_eq!(Request::parse(bad).unwrap_err().code, "parse", "{bad}");
        }
    }

    #[test]
    fn parses_knobs_on_any_analysis_verb() {
        let stats = Request::parse("stats figure1 threads=2 mem_budget=16MiB").unwrap();
        let Request::Stats { knobs, .. } = stats else {
            panic!("not stats");
        };
        assert_eq!(knobs.threads, 2);
        assert_eq!(knobs.mem_budget, MemoryBudget::parse("16MiB").unwrap());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(Request::parse("").unwrap_err().code, "parse");
        assert_eq!(Request::parse("frobnicate x").unwrap_err().code, "parse");
        assert_eq!(Request::parse("stats").unwrap_err().code, "parse");
        assert_eq!(
            Request::parse("worst c17 floor=zebra").unwrap_err().code,
            "parse"
        );
        assert_eq!(
            Request::parse("gen figure1 bogus=1").unwrap_err().code,
            "parse"
        );
        assert_eq!(Request::parse("ping extra").unwrap_err().code, "parse");
        assert_eq!(Request::parse("metrics now").unwrap_err().code, "parse");
        assert_eq!(
            Request::parse("stats figure1 threads=zebra")
                .unwrap_err()
                .code,
            "parse"
        );
    }

    #[test]
    fn reply_round_trips() {
        let mut wire = Vec::new();
        write_ok(&mut wire, "hello\nworld\n").unwrap();
        write_err(&mut wire, &ErrorReply::analysis("bad\nthing")).unwrap();
        let mut reader = io::BufReader::new(wire.as_slice());
        assert_eq!(
            read_reply(&mut reader).unwrap(),
            Reply::Ok("hello\nworld\n".to_string())
        );
        assert_eq!(
            read_reply(&mut reader).unwrap(),
            Reply::Err {
                code: "analysis".to_string(),
                message: "bad thing".to_string(),
            }
        );
        assert!(read_reply(&mut reader).is_err(), "EOF");
    }

    #[test]
    fn empty_ok_payload_round_trips() {
        let mut wire = Vec::new();
        write_ok(&mut wire, "").unwrap();
        let mut reader = io::BufReader::new(wire.as_slice());
        assert_eq!(read_reply(&mut reader).unwrap(), Reply::Ok(String::new()));
    }

    #[test]
    fn parses_the_model_token_on_analysis_verbs() {
        let stats = Request::parse("stats s27 model=transition").unwrap();
        assert!(matches!(stats, Request::Stats { ref model, .. }
            if model.as_deref() == Some("transition")));
        let worst = Request::parse("worst s27 floor=2 model=stuck-at").unwrap();
        assert!(matches!(worst, Request::Worst { floor: 2, ref model, .. }
            if model.as_deref() == Some("stuck-at")));
        let gen = Request::parse("gen s27 n=3 model=transition").unwrap();
        assert!(matches!(gen, Request::Gen { n: 3, ref model, .. }
            if model.as_deref() == Some("transition")));
        // Absent by default; the value is opaque at parse time.
        let plain = Request::parse("stats figure1").unwrap();
        assert!(matches!(plain, Request::Stats { model: None, .. }));
        assert!(Request::parse("stats s27 model=bogus").is_ok());
    }

    #[test]
    fn row_frames_accumulate_into_the_ok_payload() {
        let mut wire = Vec::new();
        write_row(&mut wire, "header\n").unwrap();
        write_row(&mut wire, "row one\n").unwrap();
        write_ok(&mut wire, "trailer\n").unwrap();
        let mut reader = io::BufReader::new(wire.as_slice());
        assert_eq!(
            read_reply(&mut reader).unwrap(),
            Reply::Ok("header\nrow one\ntrailer\n".to_string())
        );

        // Rows before an error are discarded — a failed stream has no
        // usable body.
        let mut wire = Vec::new();
        write_row(&mut wire, "partial\n").unwrap();
        write_err(&mut wire, &ErrorReply::analysis("boom")).unwrap();
        let mut reader = io::BufReader::new(wire.as_slice());
        assert_eq!(
            read_reply(&mut reader).unwrap(),
            Reply::Err {
                code: "analysis".to_string(),
                message: "boom".to_string(),
            }
        );
    }
}
