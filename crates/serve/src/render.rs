//! Render-to-string analysis front ends shared by the one-shot `ndet`
//! CLI and the persistent server.
//!
//! Both paths must produce **byte-identical** output for the same
//! request (the serve-smoke CI job diffs them), so the rendering lives
//! here once and the callers differ only in how they obtain artifacts:
//! the CLI builds straight through the on-disk store
//! ([`StoreProvider`]), the server layers its hot LRU and single-flight
//! dedup on top ([`crate::Engine`]).

use ndetect_core::partition::analyze_output_cones_budget;
use ndetect_core::report::{render_table2, render_table3, table2_row, table3_row};
use ndetect_core::{NminDistribution, WorstCaseAnalysis};
use ndetect_faults::{FaultUniverse, UniverseOptions};
use ndetect_gen::{GenOptions, GeneratedSet};
use ndetect_netlist::{bench_format, Netlist, NetlistStats};
use ndetect_sim::MemoryBudget;
use ndetect_store::Store;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Simulation knobs shared by every analysis request: worker threads
/// and the per-worker kernel memory budget. Both are performance knobs
/// — results are identical for every combination.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Knobs {
    /// Worker threads (0 = auto: `NDETECT_THREADS`, then all cores).
    pub threads: usize,
    /// Per-worker kernel memory budget.
    pub mem_budget: MemoryBudget,
}

impl Knobs {
    /// The universe options these knobs select (semantic defaults).
    #[must_use]
    pub fn universe_options(self) -> UniverseOptions {
        UniverseOptions {
            threads: self.threads,
            mem_budget: self.mem_budget,
            ..UniverseOptions::default()
        }
    }
}

/// Where analyses get their expensive artifacts from. The one-shot CLI
/// reads through the on-disk store; the server adds an in-memory LRU
/// and single-flight dedup. Rendering code only sees this trait.
pub trait UniverseProvider: Sync {
    /// A fault universe for `netlist` under `options`.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when the circuit cannot be
    /// simulated exhaustively (e.g. too many inputs).
    fn universe(
        &self,
        netlist: &Netlist,
        options: UniverseOptions,
    ) -> Result<Arc<FaultUniverse>, String>;

    /// A generated n-detection set for `universe` under `options`.
    fn generated(&self, universe: &Arc<FaultUniverse>, options: &GenOptions) -> Arc<GeneratedSet>;

    /// The on-disk store backing derived artifacts (nmin vectors,
    /// Procedure-1 estimates), if one is configured.
    fn store(&self) -> Option<&Store>;
}

/// The plain store-backed provider used by one-shot CLI invocations:
/// no in-memory layer, every artifact read through `ndetect-store`.
pub struct StoreProvider<'a> {
    store: Option<&'a Store>,
}

impl<'a> StoreProvider<'a> {
    /// Wraps an optional store handle.
    #[must_use]
    pub fn new(store: Option<&'a Store>) -> Self {
        StoreProvider { store }
    }
}

impl UniverseProvider for StoreProvider<'_> {
    fn universe(
        &self,
        netlist: &Netlist,
        options: UniverseOptions,
    ) -> Result<Arc<FaultUniverse>, String> {
        FaultUniverse::build_stored(netlist, options, self.store)
            .map(Arc::new)
            .map_err(|e| e.to_string())
    }

    fn generated(&self, universe: &Arc<FaultUniverse>, options: &GenOptions) -> Arc<GeneratedSet> {
        Arc::new(ndetect_gen::generate_stored(universe, options, self.store))
    }

    fn store(&self) -> Option<&Store> {
        self.store
    }
}

/// `ndet stats` / serve `stats`: structure, fault population, kernel.
///
/// # Errors
///
/// Returns a user-facing message when the universe cannot be built.
pub fn render_stats(
    netlist: &Netlist,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<String, String> {
    let universe = provider.universe(netlist, knobs.universe_options())?;
    let mut out = String::new();
    let _ = writeln!(out, "{netlist}");
    let _ = writeln!(out, "{}", NetlistStats::compute(netlist));
    let _ = writeln!(out, "{universe}");
    let _ = writeln!(
        out,
        "kernel: {} ({} bytes/worker data plane, budget {})",
        universe.simulator().kernel_mode(),
        universe.simulator().data_plane_bytes(),
        universe.simulator().mem_budget(),
    );
    Ok(out)
}

/// `ndet worst` / serve `worst`: the worst-case nmin analysis with the
/// paper's Table 2/3 rows and the nmin tail distribution.
///
/// # Errors
///
/// Returns a user-facing message when the universe cannot be built.
pub fn render_worst(
    netlist: &Netlist,
    floor: usize,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<String, String> {
    let universe = provider.universe(netlist, knobs.universe_options())?;
    let wc = WorstCaseAnalysis::compute_stored(&universe, knobs.threads, provider.store());
    let mut out = String::new();
    let _ = writeln!(out, "{universe}");
    let _ = writeln!(out, "{wc}");
    let _ = writeln!(out);
    let _ = write!(out, "{}", render_table2(&[table2_row(netlist.name(), &wc)]));
    let _ = writeln!(out);
    let _ = write!(out, "{}", render_table3(&[table3_row(netlist.name(), &wc)]));
    let dist = NminDistribution::collect(&wc, floor as u32);
    if !dist.is_empty() {
        let _ = writeln!(out, "\nnmin distribution (nmin >= {floor}):");
        let _ = write!(out, "{}", dist.render_ascii(24));
    }
    Ok(out)
}

/// `ndet gen` / serve `gen`: the set-cover generation engine with
/// compaction and seeded tie-breaking.
///
/// # Errors
///
/// Returns a user-facing message when `n` is zero or the universe
/// cannot be built.
pub fn render_gen(
    netlist: &Netlist,
    n: u32,
    compact: bool,
    seed: Option<u64>,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<String, String> {
    if n == 0 {
        return Err("n must be at least 1".into());
    }
    let universe = provider.universe(netlist, knobs.universe_options())?;
    let options = GenOptions {
        n,
        compact,
        seed,
        threads: knobs.threads,
        mem_budget: knobs.mem_budget,
    };
    let set = provider.generated(&universe, &options);
    let space = universe.space().num_patterns();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "generated {n}-detection set: {} tests ({:.2}% of the {space}-vector space{})",
        set.len(),
        100.0 * set.len() as f64 / space as f64,
        if set.is_compacted() {
            ", compacted"
        } else {
            ""
        },
    );
    let _ = writeln!(
        out,
        "targets: {} detectable of {}; every one detected min(n, |T(f)|) times",
        universe.num_detectable_targets(),
        universe.targets().len()
    );
    let covered = universe
        .bridge_sets()
        .iter()
        .filter(|t_g| t_g.intersects(set.as_vector_set()))
        .count();
    let coverage = if universe.bridges().is_empty() {
        100.0
    } else {
        100.0 * covered as f64 / universe.bridges().len() as f64
    };
    let _ = writeln!(
        out,
        "bridging coverage: {coverage:.2}% ({covered} of {})",
        universe.bridges().len()
    );
    let _ = writeln!(out, "{set}");
    Ok(out)
}

/// Parameters of a corpus run (`ndet corpus` / serve `corpus`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusRequest {
    /// Directory holding `.bench` files.
    pub dir: PathBuf,
    /// `csv` or `json`.
    pub format: String,
    /// Cone-fallback threshold: circuits wider than this are analysed
    /// per output cone.
    pub max_inputs: usize,
    /// Whether to descend into subdirectories.
    pub recursive: bool,
}

/// Output of a corpus run: the machine-readable summary plus any
/// per-file error diagnostics (the run tolerates malformed files).
#[derive(Clone, Debug)]
pub struct CorpusOutput {
    /// The CSV or JSON summary (what `ndet corpus` prints on stdout).
    pub body: String,
    /// Human-readable per-file failure messages (stderr material).
    pub errors: Vec<String>,
    /// Total `.bench` files walked (for the failure summary line).
    pub files: usize,
}

/// One row of the corpus summary.
struct CorpusRow {
    circuit: String,
    /// `full` (exhaustive universe), `cones` (per-output partitioned
    /// fallback for circuits wider than `max_inputs`), `skipped`
    /// (every cone was too wide — nothing was analysed), or `error`
    /// (the file failed to read/parse/analyse).
    mode: &'static str,
    inputs: usize,
    outputs: usize,
    gates: usize,
    targets: usize,
    bridges: usize,
    /// `None` when nothing was analysed (`mode = skipped`) — an empty
    /// CSV cell / JSON null, never a fabricated percentage.
    cov1: Option<f64>,
    cov10: Option<f64>,
    tail11: usize,
    max_nmin: Option<u32>,
    /// The exhaustive baseline `|U| = 2^I` (`None` outside `full` mode,
    /// where no exhaustive universe exists).
    space: Option<usize>,
    /// Compacted generated-set sizes `|T|` at n = 1, 5, 10 (`None`
    /// outside `full` mode).
    gen1: Option<usize>,
    gen5: Option<usize>,
    gen10: Option<usize>,
    /// Kernel mode the circuit's simulation ran in: `full` or `tiled`
    /// (`tiled` as soon as any cone tiled, in `cones` mode); `None` when
    /// nothing was simulated.
    kernel: Option<&'static str>,
    /// Peak per-worker kernel working-set bytes (the maximum across
    /// cones in `cones` mode); `None` when nothing was simulated.
    peak_bytes: Option<u64>,
}

impl CorpusRow {
    fn empty(name: &str, mode: &'static str) -> Self {
        CorpusRow {
            circuit: name.to_string(),
            mode,
            inputs: 0,
            outputs: 0,
            gates: 0,
            targets: 0,
            bridges: 0,
            cov1: None,
            cov10: None,
            tail11: 0,
            max_nmin: None,
            space: None,
            gen1: None,
            gen5: None,
            gen10: None,
            kernel: None,
            peak_bytes: None,
        }
    }
}

/// Collects the `.bench` files under `dir` — its direct children, plus
/// every subdirectory when `recursive` (symlinked directories are not
/// followed). The caller sorts the full path list, so the walk order
/// never leaks into the output.
fn collect_bench_files(dir: &Path, recursive: bool, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let is_dir = entry.file_type().is_ok_and(|t| t.is_dir());
        if is_dir {
            if recursive {
                collect_bench_files(&path, true, out)?;
            }
        } else if path.extension().is_some_and(|ext| ext == "bench") {
            out.push(path);
        }
    }
    Ok(())
}

/// `ndet corpus` / serve `corpus`: walks a directory of ISCAS-style
/// `.bench` files (sorted full path list, so results are
/// deterministic), runs the stats/worst-case analysis per circuit
/// through the provider (with the output-cone partitioned fallback for
/// circuits too wide for exhaustive simulation), generates compact
/// n-detection sets at n = 1, 5, 10 for exhaustively analysed
/// circuits, and emits a machine-readable CSV or JSON summary.
///
/// # Errors
///
/// Returns a user-facing message when the directory cannot be walked,
/// holds no `.bench` files, or the format is unknown. Individual
/// malformed files become `error` rows instead.
pub fn render_corpus(
    request: &CorpusRequest,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<CorpusOutput, String> {
    if request.format != "csv" && request.format != "json" {
        return Err(format!(
            "format must be csv or json, got `{}`",
            request.format
        ));
    }
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_bench_files(&request.dir, request.recursive, &mut paths)?;
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .bench files in {}", request.dir.display()));
    }

    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for path in &paths {
        // Per-file fault tolerance: one malformed file is reported as
        // an `error` row instead of aborting the whole corpus run.
        match corpus_row(path, request.max_inputs, knobs, provider) {
            Ok(row) => rows.push(row),
            Err(message) => {
                errors.push(message);
                let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("bench");
                rows.push(CorpusRow::empty(name, "error"));
            }
        }
    }

    let body = match request.format.as_str() {
        "csv" => render_corpus_csv(&rows),
        _ => render_corpus_json(&rows),
    };
    Ok(CorpusOutput {
        body,
        errors,
        files: paths.len(),
    })
}

/// Analyses one corpus circuit: exhaustively when it fits, otherwise
/// via the per-output-cone partition (conservative aggregates).
fn corpus_row(
    path: &Path,
    max_inputs: usize,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<CorpusRow, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("bench");
    let netlist =
        bench_format::parse(name, &text).map_err(|e| format!("{}: {e}", path.display()))?;

    if netlist.num_inputs() <= max_inputs {
        let universe = provider.universe(&netlist, knobs.universe_options())?;
        let wc = WorstCaseAnalysis::compute_stored(&universe, knobs.threads, provider.store());
        // Compact generated-set sizes vs the exhaustive baseline |U|:
        // how much smaller than the whole space an n-detection set is.
        let gen_size = |n: u32| {
            let options = GenOptions {
                n,
                compact: true,
                seed: None,
                threads: knobs.threads,
                mem_budget: knobs.mem_budget,
            };
            Some(provider.generated(&universe, &options).len())
        };
        Ok(CorpusRow {
            circuit: name.to_string(),
            mode: "full",
            inputs: netlist.num_inputs(),
            outputs: netlist.num_outputs(),
            gates: netlist.num_gates(),
            targets: universe.targets().len(),
            bridges: universe.bridges().len(),
            cov1: Some(wc.coverage_percent(1)),
            cov10: Some(wc.coverage_percent(10)),
            tail11: wc.tail_count(11),
            max_nmin: wc.max_finite(),
            space: Some(universe.space().num_patterns()),
            gen1: gen_size(1),
            gen5: gen_size(5),
            gen10: gen_size(10),
            kernel: Some(universe.simulator().kernel_mode()),
            peak_bytes: Some(universe.simulator().data_plane_bytes()),
        })
    } else {
        let reports = analyze_output_cones_budget(
            &netlist,
            max_inputs,
            knobs.threads,
            knobs.mem_budget,
            provider.store(),
        )
        .map_err(|e| e.to_string())?;
        if reports.is_empty() {
            // Every cone was wider than max_inputs: nothing was
            // simulated, so report no coverage rather than a vacuous
            // 100%.
            let mut row = CorpusRow::empty(name, "skipped");
            row.inputs = netlist.num_inputs();
            row.outputs = netlist.num_outputs();
            row.gates = netlist.num_gates();
            return Ok(row);
        }
        let total_bridges: usize = reports.iter().map(|r| r.num_bridges).sum();
        // Bridge-weighted coverage across cones (conservative: each cone
        // only observes its own output).
        let weighted = |n: u32| -> f64 {
            if total_bridges == 0 {
                return 100.0;
            }
            reports
                .iter()
                .map(|r| {
                    let cov = r
                        .coverage
                        .iter()
                        .find(|(t, _)| *t == n)
                        .map_or(100.0, |(_, pct)| *pct);
                    cov * r.num_bridges as f64
                })
                .sum::<f64>()
                / total_bridges as f64
        };
        Ok(CorpusRow {
            circuit: name.to_string(),
            mode: "cones",
            inputs: netlist.num_inputs(),
            outputs: netlist.num_outputs(),
            gates: netlist.num_gates(),
            targets: reports.iter().map(|r| r.num_targets).sum(),
            bridges: total_bridges,
            cov1: Some(weighted(1)),
            cov10: Some(weighted(10)),
            tail11: reports.iter().map(|r| r.tail_11).sum(),
            max_nmin: None,
            space: None,
            gen1: None,
            gen5: None,
            gen10: None,
            // Peak over cones: the widest cone dominates the working
            // set; `tiled` as soon as any cone had to tile.
            kernel: Some(if reports.iter().any(|r| r.kernel == "tiled") {
                "tiled"
            } else {
                "full"
            }),
            peak_bytes: reports.iter().map(|r| r.data_plane_bytes).max(),
        })
    }
}

fn render_corpus_csv(rows: &[CorpusRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "circuit,mode,inputs,outputs,gates,targets,bridges,cov1_pct,cov10_pct,tail11,max_nmin,space,gen1,gen5,gen10,kernel,peak_bytes"
    );
    let pct = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v:.2}"));
    let opt = |v: Option<usize>| v.map_or(String::new(), |v| v.to_string());
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.circuit,
            r.mode,
            r.inputs,
            r.outputs,
            r.gates,
            r.targets,
            r.bridges,
            pct(r.cov1),
            pct(r.cov10),
            r.tail11,
            r.max_nmin.map_or(String::new(), |v| v.to_string()),
            opt(r.space),
            opt(r.gen1),
            opt(r.gen5),
            opt(r.gen10),
            r.kernel.unwrap_or(""),
            r.peak_bytes.map_or(String::new(), |v| v.to_string()),
        );
    }
    out
}

fn render_corpus_json(rows: &[CorpusRow]) -> String {
    // Hand-rolled JSON (no serde offline); circuit names come from file
    // stems and are escaped minimally.
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let pct = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v:.2}"));
    let opt = |v: Option<usize>| v.map_or("null".to_string(), |v| v.to_string());
    let mut out = String::new();
    let _ = writeln!(out, "[");
    for (i, r) in rows.iter().enumerate() {
        let max_nmin = r.max_nmin.map_or("null".to_string(), |v| v.to_string());
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "  {{\"circuit\": \"{}\", \"mode\": \"{}\", \"inputs\": {}, \"outputs\": {}, \
             \"gates\": {}, \"targets\": {}, \"bridges\": {}, \"cov1_pct\": {}, \
             \"cov10_pct\": {}, \"tail11\": {}, \"max_nmin\": {}, \"space\": {}, \
             \"gen1\": {}, \"gen5\": {}, \"gen10\": {}, \"kernel\": {}, \
             \"peak_bytes\": {}}}{comma}",
            escape(&r.circuit),
            r.mode,
            r.inputs,
            r.outputs,
            r.gates,
            r.targets,
            r.bridges,
            pct(r.cov1),
            pct(r.cov10),
            r.tail11,
            max_nmin,
            opt(r.space),
            opt(r.gen1),
            opt(r.gen5),
            opt(r.gen10),
            r.kernel.map_or("null".to_string(), |k| format!("\"{k}\"")),
            r.peak_bytes.map_or("null".to_string(), |v| v.to_string()),
        );
    }
    let _ = writeln!(out, "]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_circuits::figure1;

    #[test]
    fn stats_and_worst_render_the_paper_numbers() {
        let provider = StoreProvider::new(None);
        let netlist = figure1::netlist();
        let stats = render_stats(&netlist, Knobs::default(), &provider).unwrap();
        assert!(stats.contains("figure1: 4 inputs, 3 outputs, 3 gates, 11 lines"));
        assert!(stats.contains("kernel: "));
        let worst = render_worst(&netlist, 100, Knobs::default(), &provider).unwrap();
        assert!(worst.contains("40.00% at n=1"), "{worst}");
    }

    #[test]
    fn gen_rejects_n_zero_and_renders_a_set() {
        let provider = StoreProvider::new(None);
        let netlist = figure1::netlist();
        assert!(render_gen(&netlist, 0, false, None, Knobs::default(), &provider).is_err());
        let out = render_gen(&netlist, 1, true, None, Knobs::default(), &provider).unwrap();
        assert!(out.contains("generated 1-detection set:"), "{out}");
        assert!(out.contains(", compacted"), "{out}");
    }

    #[test]
    fn corpus_rejects_unknown_formats_and_missing_dirs() {
        let provider = StoreProvider::new(None);
        let request = CorpusRequest {
            dir: PathBuf::from("/nonexistent-dir"),
            format: "yaml".into(),
            max_inputs: 14,
            recursive: false,
        };
        assert!(render_corpus(&request, Knobs::default(), &provider).is_err());
        let request = CorpusRequest {
            format: "csv".into(),
            ..request
        };
        assert!(render_corpus(&request, Knobs::default(), &provider).is_err());
    }
}
