//! Render-to-string analysis front ends shared by the one-shot `ndet`
//! CLI and the persistent server.
//!
//! Both paths must produce **byte-identical** output for the same
//! request (the serve-smoke CI job diffs them), so the rendering lives
//! here once and the callers differ only in how they obtain artifacts:
//! the CLI builds straight through the on-disk store
//! ([`StoreProvider`]), the server layers its hot LRU and single-flight
//! dedup on top ([`crate::Engine`]).

use ndetect_core::partition::analyze_output_cones_budget;
use ndetect_core::report::{render_table2, render_table3, table2_row, table3_row};
use ndetect_core::{NminDistribution, WorstCaseAnalysis};
use ndetect_faults::{ExplicitTargets, FaultUniverse, UniverseOptions};
use ndetect_gen::{GenOptions, GeneratedSet};
use ndetect_netlist::{bench_format, Netlist, NetlistError, NetlistStats, SeqNetlist};
use ndetect_seq::{expand_stored, ExpandedModel, FaultModel};
use ndetect_sim::MemoryBudget;
use ndetect_store::Store;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Simulation knobs shared by every analysis request: worker threads
/// and the per-worker kernel memory budget. Both are performance knobs
/// — results are identical for every combination.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Knobs {
    /// Worker threads (0 = auto: `NDETECT_THREADS`, then all cores).
    pub threads: usize,
    /// Per-worker kernel memory budget.
    pub mem_budget: MemoryBudget,
}

impl Knobs {
    /// The universe options these knobs select (semantic defaults).
    #[must_use]
    pub fn universe_options(self) -> UniverseOptions {
        UniverseOptions {
            threads: self.threads,
            mem_budget: self.mem_budget,
            ..UniverseOptions::default()
        }
    }
}

/// Where analyses get their expensive artifacts from. The one-shot CLI
/// reads through the on-disk store; the server adds an in-memory LRU
/// and single-flight dedup. Rendering code only sees this trait.
pub trait UniverseProvider: Sync {
    /// A fault universe for `netlist` under `options`.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when the circuit cannot be
    /// simulated exhaustively (e.g. too many inputs).
    fn universe(
        &self,
        netlist: &Netlist,
        options: UniverseOptions,
    ) -> Result<Arc<FaultUniverse>, String>;

    /// A fault universe over an explicitly lowered fault population
    /// (time-frame-expanded transition faults); keyed by the *source*
    /// model's canonical bytes via
    /// [`ndetect_faults::explicit_universe_key`].
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when the expanded circuit cannot
    /// be simulated exhaustively.
    fn universe_explicit(
        &self,
        netlist: &Netlist,
        explicit: &ExplicitTargets,
        options: UniverseOptions,
    ) -> Result<Arc<FaultUniverse>, String>;

    /// A generated n-detection set for `universe` under `options`.
    fn generated(&self, universe: &Arc<FaultUniverse>, options: &GenOptions) -> Arc<GeneratedSet>;

    /// The on-disk store backing derived artifacts (nmin vectors,
    /// Procedure-1 estimates), if one is configured.
    fn store(&self) -> Option<&Store>;
}

/// The plain store-backed provider used by one-shot CLI invocations:
/// no in-memory layer, every artifact read through `ndetect-store`.
pub struct StoreProvider<'a> {
    store: Option<&'a Store>,
}

impl<'a> StoreProvider<'a> {
    /// Wraps an optional store handle.
    #[must_use]
    pub fn new(store: Option<&'a Store>) -> Self {
        StoreProvider { store }
    }
}

impl UniverseProvider for StoreProvider<'_> {
    fn universe(
        &self,
        netlist: &Netlist,
        options: UniverseOptions,
    ) -> Result<Arc<FaultUniverse>, String> {
        FaultUniverse::build_stored(netlist, options, self.store)
            .map(Arc::new)
            .map_err(|e| e.to_string())
    }

    fn universe_explicit(
        &self,
        netlist: &Netlist,
        explicit: &ExplicitTargets,
        options: UniverseOptions,
    ) -> Result<Arc<FaultUniverse>, String> {
        FaultUniverse::build_stored_explicit(netlist, explicit, options, self.store)
            .map(Arc::new)
            .map_err(|e| e.to_string())
    }

    fn generated(&self, universe: &Arc<FaultUniverse>, options: &GenOptions) -> Arc<GeneratedSet> {
        Arc::new(ndetect_gen::generate_stored(universe, options, self.store))
    }

    fn store(&self) -> Option<&Store> {
        self.store
    }
}

/// `ndet stats` / serve `stats`: structure, fault population, kernel.
///
/// # Errors
///
/// Returns a user-facing message when the universe cannot be built.
pub fn render_stats(
    netlist: &Netlist,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<String, String> {
    let universe = provider.universe(netlist, knobs.universe_options())?;
    Ok(stats_body(netlist, &universe))
}

/// The shared `stats` body (combinational and sequential front ends
/// render the same universe summary).
fn stats_body(netlist: &Netlist, universe: &FaultUniverse) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{netlist}");
    let _ = writeln!(out, "{}", NetlistStats::compute(netlist));
    let _ = writeln!(out, "{universe}");
    let _ = writeln!(
        out,
        "kernel: {} ({} bytes/worker data plane, budget {})",
        universe.simulator().kernel_mode(),
        universe.simulator().data_plane_bytes(),
        universe.simulator().mem_budget(),
    );
    out
}

/// Expands a sequential circuit (through the store when available) and
/// builds the explicit-target universe over the expansion.
fn seq_universe(
    seq: &SeqNetlist,
    model: FaultModel,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<(ExpandedModel, Arc<FaultUniverse>), String> {
    let expanded = expand_stored(seq, model, provider.store()).map_err(|e| e.to_string())?;
    let universe = provider.universe_explicit(
        expanded.netlist(),
        &expanded.explicit_targets(),
        knobs.universe_options(),
    )?;
    Ok((expanded, universe))
}

/// `ndet stats --seq` / serve `stats` on a sequential circuit: the
/// expansion summary, then the same structure/universe/kernel report
/// over the two-frame expanded netlist.
///
/// # Errors
///
/// Returns a user-facing message when the expansion fails or the
/// expanded universe cannot be built.
pub fn render_seq_stats(
    seq: &SeqNetlist,
    model: FaultModel,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<String, String> {
    let (expanded, universe) = seq_universe(seq, model, knobs, provider)?;
    Ok(format!(
        "{expanded}\n{}",
        stats_body(expanded.netlist(), &universe)
    ))
}

/// `ndet worst` / serve `worst`: the worst-case nmin analysis with the
/// paper's Table 2/3 rows and the nmin tail distribution.
///
/// # Errors
///
/// Returns a user-facing message when the universe cannot be built.
pub fn render_worst(
    netlist: &Netlist,
    floor: usize,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<String, String> {
    let universe = provider.universe(netlist, knobs.universe_options())?;
    Ok(worst_body(
        netlist.name(),
        &universe,
        floor,
        knobs,
        provider,
    ))
}

/// The shared `worst` body: analysis summary, Table 2/3 rows, and the
/// nmin tail distribution.
fn worst_body(
    name: &str,
    universe: &Arc<FaultUniverse>,
    floor: usize,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> String {
    let wc = WorstCaseAnalysis::compute_stored(universe, knobs.threads, provider.store());
    let mut out = String::new();
    let _ = writeln!(out, "{universe}");
    let _ = writeln!(out, "{wc}");
    let _ = writeln!(out);
    let _ = write!(out, "{}", render_table2(&[table2_row(name, &wc)]));
    let _ = writeln!(out);
    let _ = write!(out, "{}", render_table3(&[table3_row(name, &wc)]));
    let dist = NminDistribution::collect(&wc, floor as u32);
    if !dist.is_empty() {
        let _ = writeln!(out, "\nnmin distribution (nmin >= {floor}):");
        let _ = write!(out, "{}", dist.render_ascii(24));
    }
    out
}

/// `ndet worst --seq` / serve `worst` on a sequential circuit:
/// worst-case nmin analysis over the lowered transition (or stuck-at)
/// fault population of the two-frame expansion.
///
/// # Errors
///
/// Returns a user-facing message when the expansion fails or the
/// expanded universe cannot be built.
pub fn render_seq_worst(
    seq: &SeqNetlist,
    model: FaultModel,
    floor: usize,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<String, String> {
    let (expanded, universe) = seq_universe(seq, model, knobs, provider)?;
    Ok(format!(
        "{expanded}\n{}",
        worst_body(expanded.netlist().name(), &universe, floor, knobs, provider)
    ))
}

/// `ndet gen` / serve `gen`: the set-cover generation engine with
/// compaction and seeded tie-breaking.
///
/// # Errors
///
/// Returns a user-facing message when `n` is zero or the universe
/// cannot be built.
pub fn render_gen(
    netlist: &Netlist,
    n: u32,
    compact: bool,
    seed: Option<u64>,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<String, String> {
    if n == 0 {
        return Err("n must be at least 1".into());
    }
    let universe = provider.universe(netlist, knobs.universe_options())?;
    Ok(gen_body(&universe, n, compact, seed, knobs, provider))
}

/// `ndet gen --seq` / serve `gen` on a sequential circuit: broadside
/// n-detection set generation over the expanded fault population.
///
/// # Errors
///
/// Returns a user-facing message when `n` is zero, the expansion
/// fails, or the expanded universe cannot be built.
pub fn render_seq_gen(
    seq: &SeqNetlist,
    model: FaultModel,
    n: u32,
    compact: bool,
    seed: Option<u64>,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<String, String> {
    if n == 0 {
        return Err("n must be at least 1".into());
    }
    let (expanded, universe) = seq_universe(seq, model, knobs, provider)?;
    Ok(format!(
        "{expanded}\n{}",
        gen_body(&universe, n, compact, seed, knobs, provider)
    ))
}

/// The shared `gen` body: set summary, target accounting, bridging
/// coverage, and the set listing.
fn gen_body(
    universe: &Arc<FaultUniverse>,
    n: u32,
    compact: bool,
    seed: Option<u64>,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> String {
    let options = GenOptions {
        n,
        compact,
        seed,
        threads: knobs.threads,
        mem_budget: knobs.mem_budget,
    };
    let set = provider.generated(universe, &options);
    let space = universe.space().num_patterns();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "generated {n}-detection set: {} tests ({:.2}% of the {space}-vector space{})",
        set.len(),
        100.0 * set.len() as f64 / space as f64,
        if set.is_compacted() {
            ", compacted"
        } else {
            ""
        },
    );
    let _ = writeln!(
        out,
        "targets: {} detectable of {}; every one detected min(n, |T(f)|) times",
        universe.num_detectable_targets(),
        universe.targets().len()
    );
    let covered = universe
        .bridge_sets()
        .iter()
        .filter(|t_g| t_g.intersects(set.as_vector_set()))
        .count();
    let coverage = if universe.bridges().is_empty() {
        100.0
    } else {
        100.0 * covered as f64 / universe.bridges().len() as f64
    };
    let _ = writeln!(
        out,
        "bridging coverage: {coverage:.2}% ({covered} of {})",
        universe.bridges().len()
    );
    let _ = writeln!(out, "{set}");
    out
}

/// Parameters of a corpus run (`ndet corpus` / serve `corpus`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusRequest {
    /// Directory holding `.bench` files.
    pub dir: PathBuf,
    /// `csv` or `json`.
    pub format: String,
    /// Cone-fallback threshold: circuits wider than this are analysed
    /// per output cone.
    pub max_inputs: usize,
    /// Whether to descend into subdirectories.
    pub recursive: bool,
}

/// Output of a corpus run: the machine-readable summary plus any
/// per-file error diagnostics (the run tolerates malformed files).
#[derive(Clone, Debug)]
pub struct CorpusOutput {
    /// The CSV or JSON summary (what `ndet corpus` prints on stdout).
    pub body: String,
    /// Human-readable per-file failure messages (stderr material).
    pub errors: Vec<String>,
    /// Total `.bench` files walked (for the failure summary line).
    pub files: usize,
}

/// One row of the corpus summary.
struct CorpusRow {
    circuit: String,
    /// `full` (exhaustive universe), `cones` (per-output partitioned
    /// fallback for circuits wider than `max_inputs`), `seq`
    /// (sequential circuit analysed through its two-frame transition
    /// expansion), `skipped` (every cone was too wide — nothing was
    /// analysed), or `error` (the file failed to
    /// read/parse/analyse).
    mode: &'static str,
    inputs: usize,
    outputs: usize,
    gates: usize,
    targets: usize,
    bridges: usize,
    /// `None` when nothing was analysed (`mode = skipped`) — an empty
    /// CSV cell / JSON null, never a fabricated percentage.
    cov1: Option<f64>,
    cov10: Option<f64>,
    tail11: usize,
    max_nmin: Option<u32>,
    /// The exhaustive baseline `|U| = 2^I` (`None` outside `full` mode,
    /// where no exhaustive universe exists).
    space: Option<usize>,
    /// Compacted generated-set sizes `|T|` at n = 1, 5, 10 (`None`
    /// outside `full` mode).
    gen1: Option<usize>,
    gen5: Option<usize>,
    gen10: Option<usize>,
    /// Kernel mode the circuit's simulation ran in: `full` or `tiled`
    /// (`tiled` as soon as any cone tiled, in `cones` mode); `None` when
    /// nothing was simulated.
    kernel: Option<&'static str>,
    /// Peak per-worker kernel working-set bytes (the maximum across
    /// cones in `cones` mode); `None` when nothing was simulated.
    peak_bytes: Option<u64>,
}

impl CorpusRow {
    fn empty(name: &str, mode: &'static str) -> Self {
        CorpusRow {
            circuit: name.to_string(),
            mode,
            inputs: 0,
            outputs: 0,
            gates: 0,
            targets: 0,
            bridges: 0,
            cov1: None,
            cov10: None,
            tail11: 0,
            max_nmin: None,
            space: None,
            gen1: None,
            gen5: None,
            gen10: None,
            kernel: None,
            peak_bytes: None,
        }
    }
}

/// Collects the `.bench` files under `dir` — its direct children, plus
/// every subdirectory when `recursive` (symlinked directories are not
/// followed). The caller sorts the full path list, so the walk order
/// never leaks into the output.
fn collect_bench_files(dir: &Path, recursive: bool, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let is_dir = entry.file_type().is_ok_and(|t| t.is_dir());
        if is_dir {
            if recursive {
                collect_bench_files(&path, true, out)?;
            }
        } else if path.extension().is_some_and(|ext| ext == "bench") {
            out.push(path);
        }
    }
    Ok(())
}

/// `ndet corpus` / serve `corpus`: walks a directory of ISCAS-style
/// `.bench` files (sorted full path list, so results are
/// deterministic), runs the stats/worst-case analysis per circuit
/// through the provider (with the output-cone partitioned fallback for
/// circuits too wide for exhaustive simulation), generates compact
/// n-detection sets at n = 1, 5, 10 for exhaustively analysed
/// circuits, and emits a machine-readable CSV or JSON summary.
///
/// # Errors
///
/// Returns a user-facing message when the directory cannot be walked,
/// holds no `.bench` files, or the format is unknown. Individual
/// malformed files become `error` rows instead.
pub fn render_corpus(
    request: &CorpusRequest,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<CorpusOutput, String> {
    let mut body = String::new();
    let tail = render_corpus_stream(request, knobs, provider, &mut |chunk| body.push_str(chunk))?;
    body.push_str(&tail.trailer);
    Ok(CorpusOutput {
        body,
        errors: tail.errors,
        files: tail.files,
    })
}

/// What remains of a streamed corpus run after the last row chunk: the
/// closing bytes of the body plus the per-file diagnostics.
/// `chunks... + trailer` is byte-identical to [`CorpusOutput::body`].
pub struct CorpusTail {
    /// Body bytes after the final row (`]\n` for JSON, empty for CSV).
    pub trailer: String,
    /// Human-readable per-file failure messages (stderr material).
    pub errors: Vec<String>,
    /// Total `.bench` files walked (for the failure summary line).
    pub files: usize,
}

/// The streaming core of [`render_corpus`]: emits the body as chunks —
/// one header chunk, then one chunk per circuit *as each analysis
/// completes* — so a serving front end can flush rows to a client
/// incrementally instead of buffering a long corpus run. The one-shot
/// path is just this function with a `String`-appending sink, which is
/// what keeps the two byte-identical.
///
/// # Errors
///
/// Returns a user-facing message when the directory cannot be walked,
/// holds no `.bench` files, or the format is unknown. Individual
/// malformed files become `error` rows instead.
pub fn render_corpus_stream(
    request: &CorpusRequest,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
    sink: &mut dyn FnMut(&str),
) -> Result<CorpusTail, String> {
    let json = match request.format.as_str() {
        "csv" => false,
        "json" => true,
        other => return Err(format!("format must be csv or json, got `{other}`")),
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_bench_files(&request.dir, request.recursive, &mut paths)?;
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .bench files in {}", request.dir.display()));
    }

    sink(if json { "[\n" } else { CORPUS_CSV_HEADER });
    let mut errors = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        // Per-file fault tolerance: one malformed file is reported as
        // an `error` row instead of aborting the whole corpus run.
        let row = match corpus_row(path, request.max_inputs, knobs, provider) {
            Ok(row) => row,
            Err(message) => {
                errors.push(message);
                let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("bench");
                CorpusRow::empty(name, "error")
            }
        };
        // One row per path, so the JSON separator is decidable without
        // holding rows back: every row but the last gets a comma.
        let chunk = if json {
            corpus_json_row(&row, i + 1 < paths.len())
        } else {
            corpus_csv_row(&row)
        };
        sink(&chunk);
    }
    Ok(CorpusTail {
        trailer: if json {
            "]\n".to_string()
        } else {
            String::new()
        },
        errors,
        files: paths.len(),
    })
}

/// Analyses one corpus circuit: exhaustively when it fits, otherwise
/// via the per-output-cone partition (conservative aggregates).
fn corpus_row(
    path: &Path,
    max_inputs: usize,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<CorpusRow, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("bench");
    let netlist = match bench_format::parse(name, &text) {
        Ok(netlist) => netlist,
        Err(NetlistError::Sequential { .. }) => {
            // A DFF is a classification, not a failure: re-parse in
            // sequential mode and analyse the two-frame transition
            // expansion instead.
            let seq = bench_format::parse_seq(name, &text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            return seq_corpus_row(&seq, max_inputs, knobs, provider);
        }
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };

    if netlist.num_inputs() <= max_inputs {
        let universe = provider.universe(&netlist, knobs.universe_options())?;
        let wc = WorstCaseAnalysis::compute_stored(&universe, knobs.threads, provider.store());
        // Compact generated-set sizes vs the exhaustive baseline |U|:
        // how much smaller than the whole space an n-detection set is.
        let gen_size = |n: u32| {
            let options = GenOptions {
                n,
                compact: true,
                seed: None,
                threads: knobs.threads,
                mem_budget: knobs.mem_budget,
            };
            Some(provider.generated(&universe, &options).len())
        };
        Ok(CorpusRow {
            circuit: name.to_string(),
            mode: "full",
            inputs: netlist.num_inputs(),
            outputs: netlist.num_outputs(),
            gates: netlist.num_gates(),
            targets: universe.targets().len(),
            bridges: universe.bridges().len(),
            cov1: Some(wc.coverage_percent(1)),
            cov10: Some(wc.coverage_percent(10)),
            tail11: wc.tail_count(11),
            max_nmin: wc.max_finite(),
            space: Some(universe.space().num_patterns()),
            gen1: gen_size(1),
            gen5: gen_size(5),
            gen10: gen_size(10),
            kernel: Some(universe.simulator().kernel_mode()),
            peak_bytes: Some(universe.simulator().data_plane_bytes()),
        })
    } else {
        let reports = analyze_output_cones_budget(
            &netlist,
            max_inputs,
            knobs.threads,
            knobs.mem_budget,
            provider.store(),
        )
        .map_err(|e| e.to_string())?;
        if reports.is_empty() {
            // Every cone was wider than max_inputs: nothing was
            // simulated, so report no coverage rather than a vacuous
            // 100%.
            let mut row = CorpusRow::empty(name, "skipped");
            row.inputs = netlist.num_inputs();
            row.outputs = netlist.num_outputs();
            row.gates = netlist.num_gates();
            return Ok(row);
        }
        let total_bridges: usize = reports.iter().map(|r| r.num_bridges).sum();
        // Bridge-weighted coverage across cones (conservative: each cone
        // only observes its own output).
        let weighted = |n: u32| -> f64 {
            if total_bridges == 0 {
                return 100.0;
            }
            reports
                .iter()
                .map(|r| {
                    let cov = r
                        .coverage
                        .iter()
                        .find(|(t, _)| *t == n)
                        .map_or(100.0, |(_, pct)| *pct);
                    cov * r.num_bridges as f64
                })
                .sum::<f64>()
                / total_bridges as f64
        };
        Ok(CorpusRow {
            circuit: name.to_string(),
            mode: "cones",
            inputs: netlist.num_inputs(),
            outputs: netlist.num_outputs(),
            gates: netlist.num_gates(),
            targets: reports.iter().map(|r| r.num_targets).sum(),
            bridges: total_bridges,
            cov1: Some(weighted(1)),
            cov10: Some(weighted(10)),
            tail11: reports.iter().map(|r| r.tail_11).sum(),
            max_nmin: None,
            space: None,
            gen1: None,
            gen5: None,
            gen10: None,
            // Peak over cones: the widest cone dominates the working
            // set; `tiled` as soon as any cone had to tile.
            kernel: Some(if reports.iter().any(|r| r.kernel == "tiled") {
                "tiled"
            } else {
                "full"
            }),
            peak_bytes: reports.iter().map(|r| r.data_plane_bytes).max(),
        })
    }
}

/// Analyses one sequential corpus circuit through its two-frame
/// transition expansion. Structure columns (inputs/outputs/gates)
/// describe the *sequential* circuit; analysis columns (targets,
/// coverage, space, gen sizes) come from the expanded universe.
fn seq_corpus_row(
    seq: &SeqNetlist,
    max_inputs: usize,
    knobs: Knobs,
    provider: &dyn UniverseProvider,
) -> Result<CorpusRow, String> {
    let expanded =
        expand_stored(seq, FaultModel::Transition, provider.store()).map_err(|e| e.to_string())?;
    let mut row = CorpusRow::empty(seq.name(), "seq");
    row.inputs = seq.num_true_inputs();
    row.outputs = seq.num_true_outputs();
    row.gates = seq.core().num_gates();
    if expanded.netlist().num_inputs() > max_inputs {
        // The broadside pattern space (PIs + state bits) is too wide
        // for exhaustive analysis; classify without fabricating
        // coverage, like `skipped`.
        return Ok(row);
    }
    let universe = provider.universe_explicit(
        expanded.netlist(),
        &expanded.explicit_targets(),
        knobs.universe_options(),
    )?;
    let wc = WorstCaseAnalysis::compute_stored(&universe, knobs.threads, provider.store());
    let gen_size = |n: u32| {
        let options = GenOptions {
            n,
            compact: true,
            seed: None,
            threads: knobs.threads,
            mem_budget: knobs.mem_budget,
        };
        Some(provider.generated(&universe, &options).len())
    };
    row.targets = universe.targets().len();
    row.bridges = universe.bridges().len();
    row.cov1 = Some(wc.coverage_percent(1));
    row.cov10 = Some(wc.coverage_percent(10));
    row.tail11 = wc.tail_count(11);
    row.max_nmin = wc.max_finite();
    row.space = Some(universe.space().num_patterns());
    row.gen1 = gen_size(1);
    row.gen5 = gen_size(5);
    row.gen10 = gen_size(10);
    row.kernel = Some(universe.simulator().kernel_mode());
    row.peak_bytes = Some(universe.simulator().data_plane_bytes());
    Ok(row)
}

const CORPUS_CSV_HEADER: &str = "circuit,mode,inputs,outputs,gates,targets,bridges,cov1_pct,cov10_pct,tail11,max_nmin,space,gen1,gen5,gen10,kernel,peak_bytes\n";

fn corpus_csv_row(r: &CorpusRow) -> String {
    let pct = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v:.2}"));
    let opt = |v: Option<usize>| v.map_or(String::new(), |v| v.to_string());
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
        r.circuit,
        r.mode,
        r.inputs,
        r.outputs,
        r.gates,
        r.targets,
        r.bridges,
        pct(r.cov1),
        pct(r.cov10),
        r.tail11,
        r.max_nmin.map_or(String::new(), |v| v.to_string()),
        opt(r.space),
        opt(r.gen1),
        opt(r.gen5),
        opt(r.gen10),
        r.kernel.unwrap_or(""),
        r.peak_bytes.map_or(String::new(), |v| v.to_string()),
    )
}

fn corpus_json_row(r: &CorpusRow, comma: bool) -> String {
    // Hand-rolled JSON (no serde offline); circuit names come from file
    // stems and are escaped minimally.
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let pct = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v:.2}"));
    let opt = |v: Option<usize>| v.map_or("null".to_string(), |v| v.to_string());
    format!(
        "  {{\"circuit\": \"{}\", \"mode\": \"{}\", \"inputs\": {}, \"outputs\": {}, \
         \"gates\": {}, \"targets\": {}, \"bridges\": {}, \"cov1_pct\": {}, \
         \"cov10_pct\": {}, \"tail11\": {}, \"max_nmin\": {}, \"space\": {}, \
         \"gen1\": {}, \"gen5\": {}, \"gen10\": {}, \"kernel\": {}, \
         \"peak_bytes\": {}}}{}\n",
        escape(&r.circuit),
        r.mode,
        r.inputs,
        r.outputs,
        r.gates,
        r.targets,
        r.bridges,
        pct(r.cov1),
        pct(r.cov10),
        r.tail11,
        r.max_nmin.map_or("null".to_string(), |v| v.to_string()),
        opt(r.space),
        opt(r.gen1),
        opt(r.gen5),
        opt(r.gen10),
        r.kernel.map_or("null".to_string(), |k| format!("\"{k}\"")),
        r.peak_bytes.map_or("null".to_string(), |v| v.to_string()),
        if comma { "," } else { "" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_circuits::figure1;

    #[test]
    fn stats_and_worst_render_the_paper_numbers() {
        let provider = StoreProvider::new(None);
        let netlist = figure1::netlist();
        let stats = render_stats(&netlist, Knobs::default(), &provider).unwrap();
        assert!(stats.contains("figure1: 4 inputs, 3 outputs, 3 gates, 11 lines"));
        assert!(stats.contains("kernel: "));
        let worst = render_worst(&netlist, 100, Knobs::default(), &provider).unwrap();
        assert!(worst.contains("40.00% at n=1"), "{worst}");
    }

    #[test]
    fn gen_rejects_n_zero_and_renders_a_set() {
        let provider = StoreProvider::new(None);
        let netlist = figure1::netlist();
        assert!(render_gen(&netlist, 0, false, None, Knobs::default(), &provider).is_err());
        let out = render_gen(&netlist, 1, true, None, Knobs::default(), &provider).unwrap();
        assert!(out.contains("generated 1-detection set:"), "{out}");
        assert!(out.contains(", compacted"), "{out}");
    }

    #[test]
    fn corpus_rejects_unknown_formats_and_missing_dirs() {
        let provider = StoreProvider::new(None);
        let request = CorpusRequest {
            dir: PathBuf::from("/nonexistent-dir"),
            format: "yaml".into(),
            max_inputs: 14,
            recursive: false,
        };
        assert!(render_corpus(&request, Knobs::default(), &provider).is_err());
        let request = CorpusRequest {
            format: "csv".into(),
            ..request
        };
        assert!(render_corpus(&request, Knobs::default(), &provider).is_err());
    }
}
