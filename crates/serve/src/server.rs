//! The TCP serving loop for `ndet serve`.
//!
//! One thread accepts connections (polling the shutdown flag between
//! nonblocking `accept` attempts); each connection gets a thread that
//! reads request lines and executes them through the shared
//! [`Engine`]. Each request runs on its own job thread bounded by a
//! deadline: a request that overruns gets an `err timeout` reply and
//! its job thread is left to finish in the background (the engine's
//! single-flight layer means a retry joins the still-running build
//! rather than starting another).
//!
//! Shutdown (SIGINT/SIGTERM or [`crate::signal::request_shutdown`]) is
//! a drain, not an abort: the accept loop stops taking new
//! connections, in-progress connections finish their current request
//! (new requests on them get `err shutdown`), and the server joins
//! every connection thread plus any stragglers before returning — so a
//! supervisor sending SIGTERM observes a clean exit 0 with no truncated
//! replies.

use crate::engine::Engine;
use crate::protocol::{self, ChaosCommand, ErrorReply, Request};
use crate::render;
use crate::signal;
use ndetect_obs::trace;
use ndetect_seq::FaultModel;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How often blocked reads and the accept loop re-check the shutdown
/// flag. Bounds shutdown latency, not correctness.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Server configuration (`ndet serve` flags).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Per-request deadline; an overrunning job gets `err timeout`.
    pub request_timeout: Duration,
    /// Hot-LRU capacity for fault universes (entries).
    pub hot_universes: usize,
    /// Hot-LRU capacity for generated sets (entries).
    pub hot_sets: usize,
    /// Maximum concurrent connections; an accept beyond the cap gets a
    /// one-line `err busy` reply and is closed (counted as
    /// `requests_rejected`).
    pub max_conns: usize,
    /// Whether the `chaos` verb (failpoint control) is enabled. Off by
    /// default — fault injection over the wire is a debug facility, so
    /// it must be opted into per server (`ndet serve --chaos`).
    pub chaos: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            request_timeout: Duration::from_secs(60),
            hot_universes: 32,
            hot_sets: 32,
            max_conns: 256,
            chaos: false,
        }
    }
}

/// Counts detached job threads (timed-out requests still running) so
/// shutdown can wait for them instead of racing process exit.
#[derive(Default)]
struct WaitGroup {
    count: Mutex<u64>,
    zero: Condvar,
}

impl WaitGroup {
    fn add(&self) {
        *self.count.lock().expect("waitgroup") += 1;
    }

    fn done(&self) {
        let mut count = self.count.lock().expect("waitgroup");
        *count -= 1;
        if *count == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut count = self.count.lock().expect("waitgroup");
        while *count > 0 {
            count = self.zero.wait(count).expect("waitgroup");
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    config: ServerConfig,
    /// Per-server drain flag; the process-wide signal flag
    /// ([`signal::requested`]) ORs into it, so tests can stop one
    /// server without stopping every server in the process.
    shutdown: Arc<AtomicBool>,
}

/// Requests a drain of one specific server (cloneable, thread-safe).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Asks the server to stop accepting and drain.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds the listen socket and builds the shared engine.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when the address cannot be bound.
    pub fn bind(config: ServerConfig, engine: Engine) -> Result<Self, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        Ok(Server {
            listener,
            engine: Arc::new(engine),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// A handle that drains this server (and only this server).
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// The actually-bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure as a message.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// A handle to the shared engine (tests inspect counters).
    #[must_use]
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// Runs the accept loop until shutdown is requested, then drains:
    /// joins every connection thread and every detached job thread.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message on socket configuration failures;
    /// per-connection I/O errors only end that connection.
    pub fn run(self) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;
        let stragglers = Arc::new(WaitGroup::default());
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();

        while !self.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Reap before counting so finished connections do
                    // not hold slots against the cap.
                    connections.retain(|h| !h.is_finished());
                    if connections.len() >= self.config.max_conns {
                        self.engine.counters().rejected.inc();
                        let mut writer = BufWriter::new(&stream);
                        let _ = protocol::write_err(
                            &mut writer,
                            &ErrorReply {
                                code: "busy",
                                message: format!(
                                    "connection limit {} reached; retry later",
                                    self.config.max_conns
                                ),
                            },
                        );
                        continue;
                    }
                    let engine = Arc::clone(&self.engine);
                    let config = self.config.clone();
                    let stragglers = Arc::clone(&stragglers);
                    let shutdown = Arc::clone(&self.shutdown);
                    connections.push(std::thread::spawn(move || {
                        // A broken peer only ends this connection.
                        let _ = serve_connection(&stream, &engine, &config, &stragglers, &shutdown);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
            // Reap finished connection threads so a long-lived server
            // does not accumulate handles.
            connections.retain(|h| !h.is_finished());
        }

        // Drain: connections notice the flag via their read timeouts
        // and return after at most one in-flight request each.
        for handle in connections {
            let _ = handle.join();
        }
        stragglers.wait();
        Ok(())
    }

    fn draining(&self) -> bool {
        signal::requested() || self.shutdown.load(Ordering::SeqCst)
    }
}

/// Reads request lines off one connection until EOF or shutdown.
fn serve_connection(
    stream: &TcpStream,
    engine: &Arc<Engine>,
    config: &ServerConfig,
    stragglers: &Arc<WaitGroup>,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let draining = || signal::requested() || shutdown.load(Ordering::SeqCst);
    // Short read timeouts double as the shutdown poll: a blocked
    // `read_line` wakes every POLL_INTERVAL to check the flag.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut line = String::new();

    loop {
        line.clear();
        // A timed-out read may leave a partial line in `line`; keep
        // appending until the newline arrives.
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // EOF: client closed
                Ok(_) if line.ends_with('\n') => break,
                Ok(_) => {} // partial line, keep reading
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if draining() {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if line.trim().is_empty() {
            continue; // blank lines keep the connection alive
        }
        if draining() {
            protocol::write_err(
                &mut writer,
                &ErrorReply {
                    code: "shutdown",
                    message: "server is draining".to_string(),
                },
            )?;
            return Ok(());
        }
        execute_line(&line, engine, config, stragglers, &mut writer)?;
    }
}

/// Parses and executes one request line, writing exactly one reply.
/// Every request is traced (`serve.request` with `serve.parse` /
/// `serve.execute` / `serve.write` children) and its wall time recorded
/// into the engine's `request_latency_us` histogram.
fn execute_line(
    line: &str,
    engine: &Arc<Engine>,
    config: &ServerConfig,
    stragglers: &Arc<WaitGroup>,
    writer: &mut impl Write,
) -> io::Result<()> {
    let started = std::time::Instant::now();
    let mut request_span = trace::span("serve.request");
    let result = execute_line_traced(line, engine, config, stragglers, writer, &mut request_span);
    drop(request_span);
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    engine.record_request_latency_us(micros);
    result
}

fn execute_line_traced(
    line: &str,
    engine: &Arc<Engine>,
    config: &ServerConfig,
    stragglers: &Arc<WaitGroup>,
    writer: &mut impl Write,
    request_span: &mut trace::Span,
) -> io::Result<()> {
    engine.counters().requests.inc();
    let parsed = {
        let _parse_span = trace::span("serve.parse");
        Request::parse(line)
    };
    let request = match parsed {
        Ok(request) => request,
        Err(error) => {
            request_span.field("outcome", "parse_error");
            engine.counters().errors.inc();
            return protocol::write_err(writer, &error);
        }
    };
    request_span.field("verb", line.split_whitespace().next().unwrap_or(""));

    // Instant requests answer inline; analysis requests get a bounded
    // job thread.
    match request {
        Request::Ping => {
            request_span.field("outcome", "ok");
            return write_ok_traced(writer, "pong\n");
        }
        Request::Counters => {
            let payload = engine.render_counters();
            request_span.field("outcome", "ok");
            return write_ok_traced(writer, &payload);
        }
        Request::Metrics => {
            let payload = engine.render_metrics();
            request_span.field("outcome", "ok");
            return write_ok_traced(writer, &payload);
        }
        Request::Chaos(ref command) => {
            if !config.chaos {
                request_span.field("outcome", "denied");
                engine.counters().errors.inc();
                return protocol::write_err(
                    writer,
                    &ErrorReply::denied("chaos verb disabled; start the server with --chaos"),
                );
            }
            return match execute_chaos(command) {
                Ok(payload) => {
                    request_span.field("outcome", "ok");
                    write_ok_traced(writer, &payload)
                }
                Err(error) => {
                    request_span.field("outcome", "parse_error");
                    engine.counters().errors.inc();
                    protocol::write_err(writer, &error)
                }
            };
        }
        _ => {}
    }

    let (sender, receiver) = mpsc::channel::<JobEvent>();
    let job_engine = Arc::clone(engine);
    let job_stragglers = Arc::clone(stragglers);
    let parent_span = request_span.id();
    stragglers.add();
    std::thread::spawn(move || {
        // The job runs on its own thread; parent the execute span (and
        // transitively the engine's flight/build spans) explicitly so
        // the trace still nests under this request.
        let exec_span = trace::span_under("serve.execute", parent_span);
        let rows = sender.clone();
        let result = run_job(&request, &job_engine, &mut |chunk: &str| {
            // The receiver may have timed out; the job keeps going
            // (single-flight waiters want the build to finish).
            let _ = rows.send(JobEvent::Row(chunk.to_string()));
        });
        drop(exec_span);
        let _ = sender.send(JobEvent::Done(result));
        job_stragglers.done();
    });

    // One fixed deadline for the whole job: incremental rows are
    // flushed as they arrive, but they do not extend the budget.
    let deadline = std::time::Instant::now() + config.request_timeout;
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        match receiver.recv_timeout(remaining) {
            Ok(JobEvent::Row(chunk)) => write_row_traced(writer, &chunk)?,
            Ok(JobEvent::Done(Ok(payload))) => {
                request_span.field("outcome", "ok");
                return write_ok_traced(writer, &payload);
            }
            Ok(JobEvent::Done(Err(error))) => {
                request_span.field("outcome", error.code);
                engine.counters().errors.inc();
                return protocol::write_err(writer, &error);
            }
            Err(_) => {
                request_span.field("outcome", "timeout");
                engine.counters().errors.inc();
                return protocol::write_err(
                    writer,
                    &ErrorReply {
                        code: "timeout",
                        message: format!(
                            "request exceeded {}ms (still building; retry joins it)",
                            config.request_timeout.as_millis()
                        ),
                    },
                );
            }
        }
    }
}

/// What a job thread sends back: zero or more incremental body chunks,
/// then exactly one terminal result.
enum JobEvent {
    /// An incremental chunk to stream as a `row` frame.
    Row(String),
    /// The job finished (the terminal reply).
    Done(Result<String, ErrorReply>),
}

/// Writes an `ok` reply under a `serve.write` span (the tail of the
/// request lifecycle: the bytes going back out on the socket).
fn write_ok_traced(writer: &mut impl Write, payload: &str) -> io::Result<()> {
    let mut span = trace::span("serve.write");
    span.field("bytes", payload.len());
    protocol::write_ok(writer, payload)
}

/// Writes one incremental `row` frame under a `serve.write` span.
fn write_row_traced(writer: &mut impl Write, chunk: &str) -> io::Result<()> {
    let mut span = trace::span("serve.write");
    span.field("row_bytes", chunk.len());
    protocol::write_row(writer, chunk)
}

/// Executes a `chaos` sub-command (the server already checked the
/// `--chaos` gate).
fn execute_chaos(command: &ChaosCommand) -> Result<String, ErrorReply> {
    match command {
        ChaosCommand::Set { site, spec } => {
            ndetect_chaos::arm(site, spec).map_err(ErrorReply::parse)?;
            Ok(format!("armed {site}={spec}\n"))
        }
        ChaosCommand::List => {
            let sites = ndetect_chaos::list();
            if sites.is_empty() {
                return Ok("no failpoints registered\n".to_string());
            }
            let mut out = String::new();
            use std::fmt::Write as _;
            for site in sites {
                let _ = writeln!(
                    out,
                    "{} {} hits={} fired={}",
                    site.name, site.spec, site.hits, site.fired
                );
            }
            Ok(out)
        }
        ChaosCommand::Clear => {
            ndetect_chaos::disarm_all();
            Ok("cleared\n".to_string())
        }
    }
}

/// Runs one analysis job with panic isolation: a panicking build (a
/// bug, or an armed `panic` failpoint) is caught, counted
/// (`panics_caught_total`), and converted to a structured `err
/// internal` reply — the job thread, its connection, and the server all
/// survive. The engine's single-flight layer guarantees any waiters on
/// the panicked build observe the poisoning and rebuild fresh, so a
/// client retry after `err internal` succeeds.
fn run_job(
    request: &Request,
    engine: &Arc<Engine>,
    emit: &mut (dyn FnMut(&str) + Send),
) -> Result<String, ErrorReply> {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Chaos hook inside the catch_unwind, so its `panic` action
        // exercises exactly the isolation path a real bug would.
        if ndetect_chaos::failpoint!("serve.job").is_some() {
            return Err("failpoint `serve.job`: injected error".to_string());
        }
        execute_request(request, engine, emit)
    }));
    match caught {
        Ok(Ok(payload)) => Ok(payload),
        Ok(Err(message)) => Err(ErrorReply::analysis(message)),
        Err(panic) => {
            engine.counters().panics_caught.inc();
            Err(ErrorReply::internal(format!(
                "job panicked: {}; the server is healthy and a retry is safe",
                panic_message(&panic)
            )))
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// A request's circuit, resolved against the combinational suite first
/// and the sequential registry second.
enum Resolved {
    /// A combinational suite circuit, analysed directly.
    Comb(ndetect_netlist::Netlist),
    /// A sequential circuit, analysed via two-frame broadside
    /// expansion under the given fault model.
    Seq(ndetect_netlist::SeqNetlist, FaultModel),
}

/// Resolves a circuit name (and optional `model=` token): combinational
/// names keep their existing behaviour (`model=` is rejected there —
/// it selects a sequential fault model); unknown combinational names
/// fall through to the sequential registry.
fn resolve_circuit(circuit: &str, model: Option<&str>) -> Result<Resolved, String> {
    let model = model
        .map(|m| {
            FaultModel::parse(m).ok_or_else(|| {
                format!("unknown fault model `{m}` (expected transition or stuck-at)")
            })
        })
        .transpose()?;
    match ndetect_circuits::build(circuit) {
        Ok(netlist) => {
            if model.is_some() {
                return Err(format!(
                    "`model=` selects a sequential fault model; `{circuit}` is combinational"
                ));
            }
            Ok(Resolved::Comb(netlist))
        }
        Err(comb_error) => match ndetect_circuits::build_seq(circuit) {
            Ok(seq) => Ok(Resolved::Seq(seq, model.unwrap_or_default())),
            // Unknown everywhere: report the suite error (the message
            // clients already match on).
            Err(_) => Err(comb_error.to_string()),
        },
    }
}

/// Executes a parsed analysis request against the engine, returning the
/// reply payload (byte-identical to the one-shot CLI's stdout).
/// Incremental body chunks (corpus rows) go out through `emit`.
fn execute_request(
    request: &Request,
    engine: &Arc<Engine>,
    emit: &mut dyn FnMut(&str),
) -> Result<String, String> {
    match request {
        Request::Stats {
            circuit,
            model,
            knobs,
        } => match resolve_circuit(circuit, model.as_deref())? {
            Resolved::Comb(netlist) => render::render_stats(&netlist, *knobs, engine.as_ref()),
            Resolved::Seq(seq, fm) => render::render_seq_stats(&seq, fm, *knobs, engine.as_ref()),
        },
        Request::Worst {
            circuit,
            floor,
            model,
            knobs,
        } => match resolve_circuit(circuit, model.as_deref())? {
            Resolved::Comb(netlist) => {
                render::render_worst(&netlist, *floor, *knobs, engine.as_ref())
            }
            Resolved::Seq(seq, fm) => {
                render::render_seq_worst(&seq, fm, *floor, *knobs, engine.as_ref())
            }
        },
        Request::Gen {
            circuit,
            n,
            compact,
            seed,
            model,
            knobs,
        } => match resolve_circuit(circuit, model.as_deref())? {
            Resolved::Comb(netlist) => {
                render::render_gen(&netlist, *n, *compact, *seed, *knobs, engine.as_ref())
            }
            Resolved::Seq(seq, fm) => {
                render::render_seq_gen(&seq, fm, *n, *compact, *seed, *knobs, engine.as_ref())
            }
        },
        Request::Corpus { request, knobs } => {
            // Stream the body incrementally: each row goes out as a
            // `row` frame the moment its analysis completes; the
            // terminal payload carries the closing bytes plus per-file
            // diagnostics (serve mode has no stderr channel back to the
            // client; both CSV and JSON consumers skip `#` lines).
            let tail = render::render_corpus_stream(request, *knobs, engine.as_ref(), emit)?;
            let mut payload = tail.trailer;
            for error in &tail.errors {
                payload.push_str(&format!("# corpus error: {error}\n"));
            }
            Ok(payload)
        }
        Request::Sleep { ms } => {
            std::thread::sleep(Duration::from_millis(*ms));
            Ok(format!("slept {ms}ms\n"))
        }
        Request::Ping | Request::Counters | Request::Metrics | Request::Chaos(_) => {
            unreachable!("answered inline")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_reply, Reply};
    use std::net::TcpStream;

    type Running = (
        std::net::SocketAddr,
        Arc<Engine>,
        ShutdownHandle,
        std::thread::JoinHandle<Result<(), String>>,
    );

    fn start(config: ServerConfig) -> Running {
        let server = Server::bind(config, Engine::new(None, 8, 8)).unwrap();
        let addr = server.local_addr().unwrap();
        let engine = server.engine();
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run());
        (addr, engine, shutdown, handle)
    }

    fn request_line(addr: std::net::SocketAddr, line: &str) -> Reply {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        read_reply(&mut reader).unwrap()
    }

    #[test]
    fn ping_counters_and_errors_round_trip() {
        let (addr, _engine, shutdown, handle) = start(ServerConfig::default());
        assert_eq!(request_line(addr, "ping"), Reply::Ok("pong\n".to_string()));
        assert!(matches!(request_line(addr, "counters"), Reply::Ok(_)));
        let Reply::Err { code, .. } = request_line(addr, "frobnicate") else {
            panic!("expected parse error");
        };
        assert_eq!(code, "parse");
        let Reply::Err { code, .. } = request_line(addr, "stats not-a-circuit") else {
            panic!("expected analysis error");
        };
        assert_eq!(code, "analysis");
        shutdown.shutdown();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn analysis_replies_and_drain_are_clean() {
        let (addr, engine, shutdown, handle) = start(ServerConfig::default());
        let Reply::Ok(payload) = request_line(addr, "worst figure1") else {
            panic!("expected ok");
        };
        assert!(payload.contains("40.00% at n=1"), "{payload}");
        // Identical repeat: hot LRU answers, still exactly one build.
        let Reply::Ok(second) = request_line(addr, "worst figure1") else {
            panic!("expected ok");
        };
        assert_eq!(payload, second, "replies must be byte-identical");
        assert_eq!(engine.counters().universe_builds.get(), 1);
        shutdown.shutdown();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn timeout_yields_structured_error_and_drain_waits() {
        let config = ServerConfig {
            request_timeout: Duration::from_millis(20),
            ..ServerConfig::default()
        };
        let (addr, engine, shutdown, handle) = start(config);
        let Reply::Err { code, .. } = request_line(addr, "sleep ms=400") else {
            panic!("expected timeout");
        };
        assert_eq!(code, "timeout");
        let started = std::time::Instant::now();
        shutdown.shutdown();
        // Drain must wait for the detached sleep job before returning.
        handle.join().unwrap().unwrap();
        assert!(
            started.elapsed() >= Duration::from_millis(100),
            "drain returned before the straggler finished"
        );
        assert_eq!(engine.counters().errors.get(), 1);
    }

    #[test]
    fn connection_cap_rejects_with_busy() {
        let config = ServerConfig {
            max_conns: 1,
            ..ServerConfig::default()
        };
        let (addr, engine, shutdown, handle) = start(config);
        // Hold one connection (the cap) with a completed request so the
        // server has definitely accepted it.
        let held = TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(held.try_clone().unwrap());
        writeln!(writer, "ping").unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(held.try_clone().unwrap());
        assert_eq!(read_reply(&mut reader).unwrap(), Reply::Ok("pong\n".into()));
        // The next connection must be turned away with `err busy`.
        let second = TcpStream::connect(addr).unwrap();
        let mut second_reader = BufReader::new(second);
        let Reply::Err { code, .. } = read_reply(&mut second_reader).unwrap() else {
            panic!("expected busy rejection");
        };
        assert_eq!(code, "busy");
        assert_eq!(engine.counters().rejected.get(), 1);
        shutdown.shutdown();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn seq_circuits_resolve_with_byte_identical_replies() {
        let (addr, engine, shutdown, handle) = start(ServerConfig::default());
        let expected = render::render_seq_worst(
            &ndetect_circuits::build_seq("s27").unwrap(),
            FaultModel::Transition,
            100,
            crate::render::Knobs::default(),
            &crate::render::StoreProvider::new(None),
        )
        .unwrap();
        let Reply::Ok(payload) = request_line(addr, "worst s27") else {
            panic!("expected ok");
        };
        assert_eq!(payload, expected, "serve reply must match one-shot render");
        assert!(payload.contains("s27 [transition]"), "{payload}");
        // An explicit model and a repeat both answer from the hot LRU.
        let Reply::Ok(second) = request_line(addr, "worst s27 model=transition") else {
            panic!("expected ok");
        };
        assert_eq!(payload, second);
        assert_eq!(engine.counters().universe_builds.get(), 1);
        // `model=` on a combinational circuit is a structured error.
        let Reply::Err { code, .. } = request_line(addr, "stats figure1 model=transition") else {
            panic!("expected analysis error");
        };
        assert_eq!(code, "analysis");
        shutdown.shutdown();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn corpus_replies_stream_row_frames() {
        let dir = std::env::temp_dir().join(format!("ndetect-serve-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("toggler.bench"),
            "INPUT(en)\nOUTPUT(po)\nq = DFF(nq)\nnq = NOT(q)\npo = AND(en, q)\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("tiny.bench"),
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
        )
        .unwrap();

        let (addr, _engine, shutdown, handle) = start(ServerConfig::default());
        let line = format!("corpus {} format=csv", dir.display());
        // Raw wire: the reply must arrive as incremental `row` frames
        // before the terminal `ok`.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut first = String::new();
        std::io::BufRead::read_line(&mut reader, &mut first).unwrap();
        assert!(first.starts_with("row "), "expected a row frame: {first}");

        // And read through the protocol reader: the accumulated reply
        // must equal the one-shot corpus output (body + diagnostics).
        let Reply::Ok(payload) = request_line(addr, &line) else {
            panic!("expected ok");
        };
        let expected = render::render_corpus(
            &crate::render::CorpusRequest {
                dir: dir.clone(),
                format: "csv".into(),
                max_inputs: 14,
                recursive: false,
            },
            crate::render::Knobs::default(),
            &crate::render::StoreProvider::new(None),
        )
        .unwrap();
        assert!(expected.errors.is_empty(), "{:?}", expected.errors);
        assert_eq!(payload, expected.body);
        // The sequential file is classified, not error-rowed.
        assert!(payload.contains("toggler,seq,"), "{payload}");
        shutdown.shutdown();
        handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipelined_requests_on_one_connection() {
        let (addr, _engine, shutdown, handle) = start(ServerConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        write!(writer, "ping\nsleep ms=1\nping\n").unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        assert_eq!(read_reply(&mut reader).unwrap(), Reply::Ok("pong\n".into()));
        assert_eq!(
            read_reply(&mut reader).unwrap(),
            Reply::Ok("slept 1ms\n".into())
        );
        assert_eq!(read_reply(&mut reader).unwrap(), Reply::Ok("pong\n".into()));
        shutdown.shutdown();
        handle.join().unwrap().unwrap();
    }
}
