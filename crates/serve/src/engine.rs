//! The serving engine: one shared, thread-safe analysis core layered
//! above `ndetect-store`.
//!
//! Request handling composes three layers, hottest first:
//!
//! 1. the in-memory hot LRU ([`crate::hot::Lru`]) of deserialized
//!    artifacts — repeated requests skip disk entirely;
//! 2. single-flight dedup ([`crate::SingleFlight`]) — a thundering
//!    herd of identical requests triggers exactly one build;
//! 3. the on-disk content-addressed store — cold artifacts are read
//!    through (or built and published) exactly as in one-shot mode.
//!
//! Build counters ([`Counters`]) count *actual* expensive builds (cache
//! misses that ran the fault simulator or the generator), which is what
//! the serve-smoke CI job asserts on: N identical concurrent requests
//! must report exactly one build per distinct artifact.

use crate::hot::Lru;
use crate::render::UniverseProvider;
use crate::SingleFlight;
use ndetect_faults::{
    explicit_universe_key, universe_key, ExplicitTargets, FaultUniverse, UniverseOptions,
};
use ndetect_gen::{generated_key, GenOptions, GeneratedSet};
use ndetect_netlist::Netlist;
use ndetect_obs::{trace, Counter, Histogram, Registry};
use ndetect_store::{ArtifactKey, Store};
use std::sync::{Arc, Mutex};

/// Monotonic counters exposed by the `counters` request; the CI
/// serve-smoke job asserts `universe_builds`/`gen_builds` stay equal to
/// the number of *distinct* artifacts requested, however many identical
/// requests raced.
///
/// Each field is an [`ndetect_obs::Counter`] cell that the engine also
/// registers into its per-instance metrics [`Registry`], so the legacy
/// `counters` text and the Prometheus `metrics` exposition read the
/// same atomics — one source of truth. (Per-instance, not global: tests
/// run several engines in one process and assert exact counts.)
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests accepted (parsed and executed, whatever the outcome).
    pub requests: Arc<Counter>,
    /// Fault-universe builds that actually ran (hot-LRU and store
    /// misses that executed the fault simulator).
    pub universe_builds: Arc<Counter>,
    /// Generated-set builds that actually ran.
    pub gen_builds: Arc<Counter>,
    /// Lookups served from the in-memory hot LRU.
    pub hot_hits: Arc<Counter>,
    /// Entries the hot LRU evicted to stay within capacity.
    pub hot_evictions: Arc<Counter>,
    /// Calls coalesced onto another caller's in-flight build.
    pub coalesced: Arc<Counter>,
    /// Requests that failed (parse errors, analysis errors, timeouts).
    pub errors: Arc<Counter>,
    /// Connections refused with `err busy` by the accept-loop cap.
    pub rejected: Arc<Counter>,
    /// Job panics caught and converted to `err internal` replies (the
    /// server survived every one of these).
    pub panics_caught: Arc<Counter>,
    /// Single-flight waits that observed a poisoned (leader-panicked)
    /// flight and fell through to a clean rebuild.
    pub flights_poisoned: Arc<Counter>,
}

impl Counters {
    /// Renders the counters as stable `key value` lines (the `counters`
    /// request payload; CI greps these).
    #[must_use]
    pub fn render(&self, store: Option<&Store>) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(out, "requests {}", self.requests.get());
        let _ = writeln!(out, "universe_builds {}", self.universe_builds.get());
        let _ = writeln!(out, "gen_builds {}", self.gen_builds.get());
        let _ = writeln!(out, "hot_hits {}", self.hot_hits.get());
        let _ = writeln!(out, "hot_evictions {}", self.hot_evictions.get());
        let _ = writeln!(out, "coalesced {}", self.coalesced.get());
        let _ = writeln!(out, "errors {}", self.errors.get());
        let _ = writeln!(out, "rejected {}", self.rejected.get());
        let _ = writeln!(out, "panics_caught {}", self.panics_caught.get());
        let _ = writeln!(out, "flights_poisoned {}", self.flights_poisoned.get());
        if let Some(store) = store {
            let _ = writeln!(out, "store_hits {}", store.session_hits());
            let _ = writeln!(out, "store_misses {}", store.session_misses());
            let _ = writeln!(out, "store_writes {}", store.session_writes());
            let _ = writeln!(out, "store_write_errors {}", store.session_write_errors());
        }
        out
    }

    /// Registers every counter cell into `registry` under its
    /// exposition name.
    fn register(&self, registry: &Registry) {
        registry.register_counter("requests", Arc::clone(&self.requests));
        registry.register_counter("universe_builds", Arc::clone(&self.universe_builds));
        registry.register_counter("gen_builds", Arc::clone(&self.gen_builds));
        registry.register_counter("hot_lru_hits", Arc::clone(&self.hot_hits));
        registry.register_counter("hot_lru_evictions", Arc::clone(&self.hot_evictions));
        registry.register_counter("coalesced", Arc::clone(&self.coalesced));
        registry.register_counter("errors", Arc::clone(&self.errors));
        registry.register_counter("requests_rejected", Arc::clone(&self.rejected));
        registry.register_counter("panics_caught_total", Arc::clone(&self.panics_caught));
        registry.register_counter("flights_poisoned_total", Arc::clone(&self.flights_poisoned));
    }
}

/// The hot-cache key: the content key of the artifact plus its kind tag
/// (a universe and a generated set can never collide anyway, but the
/// tag keeps the two populations separate and greppable in debug
/// output).
type HotKey = (u8, ArtifactKey);

const HOT_UNIVERSE: u8 = 1;
const HOT_GENERATED: u8 = 3;

/// The shared serving engine; see the module docs. One instance is
/// shared (via `Arc`) by every connection thread.
pub struct Engine {
    store: Option<Store>,
    hot_universes: Mutex<Lru<HotKey, Arc<FaultUniverse>>>,
    hot_sets: Mutex<Lru<HotKey, Arc<GeneratedSet>>>,
    universe_flights: SingleFlight<ArtifactKey, Result<Arc<FaultUniverse>, String>>,
    gen_flights: SingleFlight<ArtifactKey, Arc<GeneratedSet>>,
    counters: Counters,
    registry: Registry,
    request_latency_us: Arc<Histogram>,
}

impl Engine {
    /// Creates an engine over an optional on-disk store with the given
    /// hot-cache capacities (entries, not bytes; zero disables a
    /// layer).
    #[must_use]
    pub fn new(store: Option<Store>, hot_universes: usize, hot_sets: usize) -> Self {
        let counters = Counters::default();
        let registry = Registry::new();
        counters.register(&registry);
        if let Some(store) = &store {
            store.register_metrics(&registry);
        }
        let request_latency_us = registry.histogram("request_latency_us");
        // Both flight maps tick the same poisoning counter: what the
        // metric answers is "how often did a crashed build cost a
        // waiter a retry", not which artifact family it was.
        let universe_flights =
            SingleFlight::with_poison_counter(Arc::clone(&counters.flights_poisoned));
        let gen_flights = SingleFlight::with_poison_counter(Arc::clone(&counters.flights_poisoned));
        Engine {
            store,
            hot_universes: Mutex::new(Lru::new(hot_universes)),
            hot_sets: Mutex::new(Lru::new(hot_sets)),
            universe_flights,
            gen_flights,
            counters,
            registry,
            request_latency_us,
        }
    }

    /// The engine's build/traffic counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// This engine's metrics registry (the counters above plus the
    /// store session counters and the request latency histogram).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one request's wall time into the latency histogram.
    pub fn record_request_latency_us(&self, micros: u64) {
        self.request_latency_us.record(micros);
    }

    /// Renders the counters (including store session counters when a
    /// store is configured).
    #[must_use]
    pub fn render_counters(&self) -> String {
        self.counters.render(self.store.as_ref())
    }

    /// Renders the full Prometheus-style exposition: this engine's
    /// per-instance registry followed by the process-global registry
    /// (library-level metrics — universe builds, generator rounds,
    /// kernel selection). Names are kept disjoint between the two.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        let mut out = self.registry.render();
        out.push_str(&ndetect_obs::global().render());
        out
    }

    fn hot_universe_get(&self, key: ArtifactKey) -> Option<Arc<FaultUniverse>> {
        self.hot_universes
            .lock()
            .expect("hot universe lru")
            .get(&(HOT_UNIVERSE, key))
    }

    fn hot_set_get(&self, key: ArtifactKey) -> Option<Arc<GeneratedSet>> {
        self.hot_sets
            .lock()
            .expect("hot set lru")
            .get(&(HOT_GENERATED, key))
    }

    /// The shared universe read path: hot LRU, then single-flight
    /// around `build` (which reads through the store), counting an
    /// actual build only on a store miss. Both the enumerated and the
    /// explicit-target (time-frame-expanded) universes go through here;
    /// they differ only in `key` and `build`.
    fn universe_through_layers(
        &self,
        key: ArtifactKey,
        build: &(dyn Fn(Option<&Store>) -> Result<FaultUniverse, String> + Sync),
    ) -> Result<Arc<FaultUniverse>, String> {
        if let Some(hit) = self.hot_universe_get(key) {
            self.counters.hot_hits.inc();
            return Ok(hit);
        }
        // Covers the single-flight wait (followers block here on the
        // leader's build) and, for the leader, the build itself.
        let flight_span = trace::span("serve.flight.universe");
        let before = self.universe_flights.coalesced();
        let result = self.universe_flights.run(key, || {
            // Chaos hook inside the flight, so an injected failure (or
            // panic) exercises the leader-death → waiter-retry path.
            if ndetect_chaos::failpoint!("engine.universe.build").is_some() {
                return Err("failpoint `engine.universe.build`: injected error".to_string());
            }
            // Re-check the hot LRU inside the flight: a caller that
            // lost the race to a just-finished leader must not count a
            // second build.
            if let Some(hit) = self.hot_universe_get(key) {
                self.counters.hot_hits.inc();
                return Ok(hit);
            }
            let store = self.store.as_ref();
            let misses = store.map_or(0, Store::session_misses);
            let universe = Arc::new(build(store)?);
            // A store hit deserializes instead of simulating; only a
            // store miss (or no store at all) is an actual build.
            if store.is_none_or(|s| s.session_misses() > misses) {
                self.counters.universe_builds.inc();
            }
            if self
                .hot_universes
                .lock()
                .expect("hot universe lru")
                .insert((HOT_UNIVERSE, key), Arc::clone(&universe))
                .is_some()
            {
                self.counters.hot_evictions.inc();
            }
            Ok(universe)
        });
        drop(flight_span);
        let joined = self.universe_flights.coalesced() - before;
        self.counters.coalesced.add(joined);
        result
    }
}

impl UniverseProvider for Engine {
    fn universe(
        &self,
        netlist: &Netlist,
        options: UniverseOptions,
    ) -> Result<Arc<FaultUniverse>, String> {
        let key = universe_key(netlist, options);
        self.universe_through_layers(key, &|store| {
            FaultUniverse::build_stored(netlist, options, store).map_err(|e| e.to_string())
        })
    }

    fn universe_explicit(
        &self,
        netlist: &Netlist,
        explicit: &ExplicitTargets,
        options: UniverseOptions,
    ) -> Result<Arc<FaultUniverse>, String> {
        let key = explicit_universe_key(&explicit.canonical, options);
        self.universe_through_layers(key, &|store| {
            FaultUniverse::build_stored_explicit(netlist, explicit, options, store)
                .map_err(|e| e.to_string())
        })
    }

    fn generated(&self, universe: &Arc<FaultUniverse>, options: &GenOptions) -> Arc<GeneratedSet> {
        let key = generated_key(universe, options);
        if let Some(hit) = self.hot_set_get(key) {
            self.counters.hot_hits.inc();
            return hit;
        }
        let flight_span = trace::span("serve.flight.generated");
        let before = self.gen_flights.coalesced();
        let set = self.gen_flights.run(key, || {
            // Chaos hook: generation is infallible, so only the
            // delay/panic actions are meaningful here (return-err and
            // torn-write pass through as no-ops).
            let _ = ndetect_chaos::failpoint!("engine.gen.build");
            if let Some(hit) = self.hot_set_get(key) {
                self.counters.hot_hits.inc();
                return hit;
            }
            let store = self.store.as_ref();
            let misses = store.map_or(0, Store::session_misses);
            let set = Arc::new(ndetect_gen::generate_stored(universe, options, store));
            if store.is_none_or(|s| s.session_misses() > misses) {
                self.counters.gen_builds.inc();
            }
            if self
                .hot_sets
                .lock()
                .expect("hot set lru")
                .insert((HOT_GENERATED, key), Arc::clone(&set))
                .is_some()
            {
                self.counters.hot_evictions.inc();
            }
            set
        });
        drop(flight_span);
        let joined = self.gen_flights.coalesced() - before;
        self.counters.coalesced.add(joined);
        set
    }

    fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::Knobs;
    use ndetect_circuits::figure1;
    use std::sync::Barrier;

    fn options() -> UniverseOptions {
        Knobs::default().universe_options()
    }

    #[test]
    fn repeated_requests_build_once_and_hit_the_hot_cache() {
        let engine = Engine::new(None, 8, 8);
        let netlist = figure1::netlist();
        let a = engine.universe(&netlist, options()).unwrap();
        let b = engine.universe(&netlist, options()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request must share the Arc");
        assert_eq!(engine.counters().universe_builds.get(), 1);
        assert_eq!(engine.counters().hot_hits.get(), 1);
    }

    #[test]
    fn concurrent_identical_requests_build_exactly_once() {
        let engine = Engine::new(None, 8, 8);
        let netlist = figure1::netlist();
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let engine = &engine;
                let netlist = &netlist;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    engine.universe(netlist, options()).unwrap();
                });
            }
        });
        assert_eq!(
            engine.counters().universe_builds.get(),
            1,
            "8 racing identical requests must run one build"
        );
    }

    #[test]
    fn generated_sets_dedup_like_universes() {
        let engine = Engine::new(None, 8, 8);
        let netlist = figure1::netlist();
        let universe = engine.universe(&netlist, options()).unwrap();
        let gen_options = GenOptions {
            n: 2,
            compact: true,
            ..GenOptions::default()
        };
        let a = engine.generated(&universe, &gen_options);
        let b = engine.generated(&universe, &gen_options);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(engine.counters().gen_builds.get(), 1);
    }

    #[test]
    fn zero_capacity_hot_cache_still_dedups_in_flight() {
        let engine = Engine::new(None, 0, 0);
        let netlist = figure1::netlist();
        let a = engine.universe(&netlist, options()).unwrap();
        let b = engine.universe(&netlist, options()).unwrap();
        // No hot layer: serial requests rebuild (no store either), but
        // results are still correct.
        assert_eq!(a.targets().len(), b.targets().len());
        assert_eq!(engine.counters().universe_builds.get(), 2);
    }
}
