//! Minimal async-signal-safe shutdown flag for SIGINT/SIGTERM.
//!
//! The container has no `libc` crate, so the handler is installed
//! through a raw `signal(2)` FFI declaration (libc's `signal` symbol is
//! always present in the C runtime Rust links against on Unix). The
//! handler does the only async-signal-safe thing possible: it flips one
//! global `AtomicBool` that the accept loop polls between
//! `accept(2)` attempts.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by the accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the C runtime. The return value (the
        /// previous handler) is deliberately ignored.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only atomics are async-signal-safe; everything else (logging,
        // joining, dropping) happens on the accept loop's thread.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the standard C library function; the
        // handler only touches a static atomic.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Installs the SIGINT/SIGTERM handler (no-op on non-Unix platforms,
/// where only [`request_shutdown`] can trigger a drain).
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

/// Whether a shutdown was requested (by a signal or programmatically).
#[must_use]
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests a shutdown programmatically (tests; non-Unix fallback).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests only — real servers exit after one drain).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}
