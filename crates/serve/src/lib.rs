//! `ndetect-serve`: a persistent analysis service above the n-detection
//! engine.
//!
//! One-shot `ndet` invocations pay the full artifact pipeline on every
//! call — parse, fault simulation, set generation — softened only by
//! the on-disk store. This crate keeps an analysis process resident:
//! a TCP accept loop ([`server`]) speaks a newline-delimited request
//! protocol ([`protocol`]) and executes requests through a shared
//! [`Engine`] that layers an in-memory hot LRU ([`hot`]) and
//! single-flight deduplication ([`singleflight`]) above the store — a
//! thundering herd of identical requests runs exactly one build, and a
//! warm request touches neither disk nor simulator.
//!
//! The rendering layer ([`render`]) is shared with the CLI, so a serve
//! reply is byte-for-byte the stdout of the matching one-shot command.
//! Shutdown ([`signal`]) is a drain: in-flight requests finish, new
//! ones get structured `err shutdown` replies, and the process exits 0.

pub mod engine;
pub mod hot;
pub mod protocol;
pub mod render;
pub mod server;
pub mod signal;
pub mod singleflight;

pub use engine::{Counters, Engine};
pub use protocol::{read_reply, ChaosCommand, ErrorReply, Reply, Request};
pub use render::{
    render_corpus, render_corpus_stream, render_gen, render_seq_gen, render_seq_stats,
    render_seq_worst, render_stats, render_worst, CorpusOutput, CorpusRequest, CorpusTail, Knobs,
    StoreProvider, UniverseProvider,
};
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use singleflight::SingleFlight;
