//! Property tests for the request parser: a server that panics on a
//! malformed line hands any client a remote crash, so `Request::parse`
//! must map every possible input to `Ok` or a structured `err parse`.

use ndetect_serve::Request;
use proptest::prelude::*;

proptest! {
    #[test]
    fn request_parse_never_panics_on_arbitrary_bytes(
        raw in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let line = String::from_utf8_lossy(&raw);
        if let Err(error) = Request::parse(&line) {
            prop_assert_eq!(error.code, "parse");
        }
    }

    #[test]
    fn request_parse_never_panics_on_mangled_valid_lines(
        pick in any::<u64>(),
        flip in any::<u64>(),
        extra in prop::collection::vec(any::<u8>(), 0..24),
    ) {
        // Corrupt real request lines: bit flips and random suffixes are
        // what half-closed sockets and buggy clients actually send.
        const VALID: &[&str] = &[
            "ping",
            "worst figure1 floor=2",
            "gen figure1 n=3 compact seed=7",
            "corpus /tmp/x format=json recursive",
            "stats c17 threads=2 mem_budget=16MiB",
            "chaos set store.save.write=one-shot@2:torn-write",
        ];
        let mut bytes = VALID[(pick as usize) % VALID.len()].as_bytes().to_vec();
        let pos = (flip as usize) % bytes.len();
        bytes[pos] ^= 1 << (flip % 8);
        bytes.extend_from_slice(&extra);
        let line = String::from_utf8_lossy(&bytes);
        let _ = Request::parse(&line);
    }
}
