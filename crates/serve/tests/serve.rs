//! End-to-end tests of the serving loop over real TCP connections:
//! the single-flight guarantee under a concurrent herd, byte-identical
//! replies, store-backed warm starts, and the drain path.

use ndetect_serve::protocol::{read_reply, Reply};
use ndetect_serve::{Engine, Server, ServerConfig, UniverseProvider};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn start(
    engine: Engine,
) -> (
    SocketAddr,
    Arc<Engine>,
    ndetect_serve::ShutdownHandle,
    std::thread::JoinHandle<Result<(), String>>,
) {
    let server = Server::bind(ServerConfig::default(), engine).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let engine = server.engine();
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run());
    (addr, engine, shutdown, handle)
}

fn request(addr: SocketAddr, line: &str) -> Reply {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    writeln!(writer, "{line}").expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    read_reply(&mut reader).expect("reply")
}

#[test]
fn concurrent_identical_requests_over_tcp_build_once() {
    let (addr, engine, shutdown, handle) = start(Engine::new(None, 8, 8));
    let barrier = Barrier::new(8);
    let replies: Vec<Reply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    request(addr, "worst figure1")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let Reply::Ok(first) = &replies[0] else {
        panic!("expected ok, got {:?}", replies[0]);
    };
    assert!(first.contains("40.00% at n=1"), "{first}");
    for reply in &replies {
        assert_eq!(reply, &replies[0], "all replies must be byte-identical");
    }
    assert_eq!(
        engine.counters().universe_builds.get(),
        1,
        "8 racing identical requests must run exactly one universe build"
    );
    shutdown.shutdown();
    handle.join().unwrap().unwrap();
}

#[test]
fn distinct_requests_build_independently_and_serve_from_hot_cache() {
    let (addr, engine, shutdown, handle) = start(Engine::new(None, 8, 8));
    for circuit in ["figure1", "c17", "lion"] {
        let Reply::Ok(_) = request(addr, &format!("stats {circuit}")) else {
            panic!("stats {circuit} failed");
        };
    }
    assert_eq!(engine.counters().universe_builds.get(), 3);
    // Warm repeats: zero additional builds.
    for circuit in ["figure1", "c17", "lion"] {
        let Reply::Ok(_) = request(addr, &format!("stats {circuit}")) else {
            panic!("warm stats {circuit} failed");
        };
    }
    assert_eq!(engine.counters().universe_builds.get(), 3);
    assert!(engine.counters().hot_hits.get() >= 3);
    shutdown.shutdown();
    handle.join().unwrap().unwrap();
}

#[test]
fn warm_serve_requests_over_a_store_take_zero_store_misses() {
    let dir = std::env::temp_dir().join(format!("ndet-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ndetect_store::Store::open(&dir).expect("open store");

    // Cold pass warms the on-disk store.
    {
        let (addr, _engine, shutdown, handle) = start(Engine::new(Some(store), 8, 8));
        let Reply::Ok(_) = request(addr, "gen figure1 n=2 compact") else {
            panic!("cold gen failed");
        };
        shutdown.shutdown();
        handle.join().unwrap().unwrap();
    }

    // Fresh engine, same store: everything loads from disk (store
    // hits), and repeats inside the process touch nothing but the LRU.
    let store = ndetect_store::Store::open(&dir).expect("reopen store");
    let (addr, engine, shutdown, handle) = start(Engine::new(Some(store), 8, 8));
    let Reply::Ok(first) = request(addr, "gen figure1 n=2 compact") else {
        panic!("warm gen failed");
    };
    assert_eq!(
        engine.counters().universe_builds.get(),
        0,
        "a store hit is not a build"
    );
    let store_misses_after_warm = engine
        .store()
        .map(ndetect_store::Store::session_misses)
        .unwrap();
    let Reply::Ok(second) = request(addr, "gen figure1 n=2 compact") else {
        panic!("hot gen failed");
    };
    assert_eq!(first, second);
    assert_eq!(
        engine
            .store()
            .map(ndetect_store::Store::session_misses)
            .unwrap(),
        store_misses_after_warm,
        "hot repeats must take zero store misses"
    );
    shutdown.shutdown();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_exposition_parses_and_matches_counters() {
    let (addr, engine, shutdown, handle) = start(Engine::new(None, 8, 8));
    for _ in 0..2 {
        let Reply::Ok(_) = request(addr, "worst figure1") else {
            panic!("worst figure1 failed");
        };
    }
    let Reply::Ok(counters) = request(addr, "counters") else {
        panic!("counters failed");
    };
    let Reply::Ok(exposition) = request(addr, "metrics") else {
        panic!("metrics failed");
    };

    // The exposition must be strictly well-formed Prometheus text.
    let samples = ndetect_obs::parse_exposition(&exposition).expect("exposition must parse");

    // ... and agree with the legacy counters verb: both read the same
    // atomic cells, so `universe_builds` is identical in each.
    let from_counters: u64 = counters
        .lines()
        .find_map(|line| line.strip_prefix("universe_builds "))
        .expect("counters payload lists universe_builds")
        .parse()
        .expect("counters value is a number");
    let from_metrics = ndetect_obs::expose::sample_value(&samples, "universe_builds")
        .expect("exposition lists universe_builds");
    assert_eq!(from_counters, from_metrics);
    assert_eq!(from_metrics, engine.counters().universe_builds.get());
    assert_eq!(from_metrics, 1, "two identical requests build once");

    // The request latency histogram saw every request so far.
    let latency_count = ndetect_obs::expose::sample_value(&samples, "request_latency_us_count")
        .expect("exposition lists the request latency histogram");
    assert!(
        latency_count >= 3,
        "latency histogram count {latency_count}"
    );

    shutdown.shutdown();
    handle.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_inflight_requests_instead_of_dropping_them() {
    let (addr, _engine, shutdown, handle) = start(Engine::new(None, 8, 8));
    // Start a slow request, then request shutdown while it runs.
    let worker = std::thread::spawn(move || request(addr, "sleep ms=600"));
    std::thread::sleep(Duration::from_millis(150)); // request is in flight
    shutdown.shutdown();
    handle.join().unwrap().unwrap(); // drain must not hang or abort
    assert_eq!(
        worker.join().unwrap(),
        Reply::Ok("slept 600ms\n".to_string()),
        "the in-flight request must complete through the drain"
    );
}
