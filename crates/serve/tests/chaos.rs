//! Fault-injection tests for the serve layer's isolation contract: a
//! panicking job yields `err internal` (never a dropped connection or a
//! dead server), single-flight waiters on a crashed leader rebuild
//! cleanly, and the `chaos` verb is gated behind `--chaos`.
//!
//! Failpoints are process-global, so these tests live in their own
//! integration-test binary and serialize on one lock.

use ndetect_serve::protocol::{read_reply, Reply};
use ndetect_serve::{Engine, Server, ServerConfig, ShutdownHandle};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

/// Serializes the tests in this binary and guarantees a disarmed
/// registry on entry and exit.
struct ChaosGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ndetect_chaos::disarm_all();
    }
}

fn exclusive() -> ChaosGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    ndetect_chaos::disarm_all();
    ChaosGuard(guard)
}

type Running = (
    std::net::SocketAddr,
    Arc<Engine>,
    ShutdownHandle,
    std::thread::JoinHandle<Result<(), String>>,
);

fn start(config: ServerConfig) -> Running {
    let server = Server::bind(config, Engine::new(None, 8, 8)).unwrap();
    let addr = server.local_addr().unwrap();
    let engine = server.engine();
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run());
    (addr, engine, shutdown, handle)
}

fn request_line(addr: std::net::SocketAddr, line: &str) -> Reply {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    read_reply(&mut reader).unwrap()
}

fn chaos_config() -> ServerConfig {
    ServerConfig {
        chaos: true,
        ..ServerConfig::default()
    }
}

#[test]
fn chaos_verb_is_denied_unless_enabled() {
    let _chaos = exclusive();
    let (addr, _engine, shutdown, handle) = start(ServerConfig::default());
    let Reply::Err { code, message } = request_line(addr, "chaos set x=panic") else {
        panic!("expected denial");
    };
    assert_eq!(code, "denied");
    assert!(message.contains("--chaos"), "{message}");
    // Nothing got armed through the denied request.
    assert!(ndetect_chaos::list().is_empty());
    shutdown.shutdown();
    handle.join().unwrap().unwrap();
}

#[test]
fn chaos_verb_round_trips_set_list_clear() {
    let _chaos = exclusive();
    let (addr, _engine, shutdown, handle) = start(chaos_config());
    let Reply::Ok(armed) = request_line(addr, "chaos set serve.job=one-shot@5:return-err") else {
        panic!("expected ok");
    };
    assert!(armed.contains("serve.job"), "{armed}");
    let Reply::Ok(listing) = request_line(addr, "chaos list") else {
        panic!("expected ok");
    };
    assert!(
        listing.contains("serve.job one-shot@5:return-err hits=0 fired=0"),
        "{listing}"
    );
    // Malformed specs come back as parse errors, not armed garbage.
    let Reply::Err { code, .. } = request_line(addr, "chaos set x=sometimes:maybe") else {
        panic!("expected parse error");
    };
    assert_eq!(code, "parse");
    let Reply::Ok(_) = request_line(addr, "chaos clear") else {
        panic!("expected ok");
    };
    assert!(ndetect_chaos::list().is_empty());
    shutdown.shutdown();
    handle.join().unwrap().unwrap();
}

#[test]
fn job_panic_yields_err_internal_and_the_server_keeps_serving() {
    let _chaos = exclusive();
    let (addr, engine, shutdown, handle) = start(chaos_config());
    let Reply::Ok(_) = request_line(addr, "chaos set serve.job=one-shot@1:panic") else {
        panic!("expected ok");
    };
    // The failpoint fires inside the job thread: the requester gets a
    // structured internal error, not a dropped connection.
    let Reply::Err { code, message } = request_line(addr, "worst figure1") else {
        panic!("expected err internal");
    };
    assert_eq!(code, "internal");
    assert!(message.contains("retry is safe"), "{message}");
    assert_eq!(engine.counters().panics_caught.get(), 1);

    // One-shot: the retry succeeds, on the same server.
    let Reply::Ok(payload) = request_line(addr, "worst figure1") else {
        panic!("expected ok retry");
    };
    assert!(payload.contains("40.00% at n=1"), "{payload}");
    // And unrelated requests were never at risk.
    assert_eq!(request_line(addr, "ping"), Reply::Ok("pong\n".to_string()));
    shutdown.shutdown();
    handle.join().unwrap().unwrap();
}

#[test]
fn panicking_build_leader_poisons_only_itself_waiters_rebuild() {
    let _chaos = exclusive();
    let (addr, engine, shutdown, handle) = start(chaos_config());
    // The *first* universe build panics mid-flight; concurrent
    // requesters coalesced onto it must observe the poisoning and
    // rebuild, ending with real answers.
    let Reply::Ok(_) = request_line(addr, "chaos set engine.universe.build=one-shot@1:panic")
    else {
        panic!("expected ok");
    };
    let replies: Vec<Reply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| scope.spawn(move || request_line(addr, "worst figure1")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok_payloads: Vec<&String> = replies
        .iter()
        .filter_map(|r| match r {
            Reply::Ok(p) => Some(p),
            Reply::Err { .. } => None,
        })
        .collect();
    let internals = replies
        .iter()
        .filter(|r| matches!(r, Reply::Err { code, .. } if code == "internal"))
        .count();
    // Exactly the leader's request fails (it hosted the panic); every
    // other herd member retried the flight and got the real answer.
    assert_eq!(internals, replies.len() - ok_payloads.len());
    assert!(
        internals <= 1,
        "only the leader can host the one-shot panic"
    );
    assert!(!ok_payloads.is_empty(), "the herd must not all fail");
    for payload in &ok_payloads {
        assert!(payload.contains("40.00% at n=1"), "{payload}");
    }
    assert_eq!(engine.counters().panics_caught.get(), 1);

    // A fresh request confirms the flight map healed.
    let Reply::Ok(_) = request_line(addr, "worst figure1") else {
        panic!("expected ok");
    };
    // The metrics exposition carries the isolation counters.
    let Reply::Ok(metrics) = request_line(addr, "metrics") else {
        panic!("expected ok");
    };
    assert!(metrics.contains("panics_caught_total 1"), "{metrics}");
    shutdown.shutdown();
    handle.join().unwrap().unwrap();
}

#[test]
fn injected_build_error_is_a_clean_analysis_error() {
    let _chaos = exclusive();
    let (addr, engine, shutdown, handle) = start(chaos_config());
    let Reply::Ok(_) = request_line(
        addr,
        "chaos set engine.universe.build=one-shot@1:return-err",
    ) else {
        panic!("expected ok");
    };
    let Reply::Err { code, message } = request_line(addr, "worst figure1") else {
        panic!("expected analysis error");
    };
    assert_eq!(code, "analysis");
    assert!(message.contains("engine.universe.build"), "{message}");
    assert_eq!(
        engine.counters().panics_caught.get(),
        0,
        "no panic involved"
    );
    let Reply::Ok(_) = request_line(addr, "worst figure1") else {
        panic!("retry must succeed");
    };
    shutdown.shutdown();
    handle.join().unwrap().unwrap();
}

#[test]
fn pipelined_connection_survives_a_mid_stream_panic() {
    let _chaos = exclusive();
    let (addr, _engine, shutdown, handle) = start(chaos_config());
    let Reply::Ok(_) = request_line(addr, "chaos set serve.job=one-shot@1:panic") else {
        panic!("expected ok");
    };
    // One connection, three pipelined requests; the middle one panics.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    write!(writer, "ping\nworst figure1\nping\n").unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    assert_eq!(read_reply(&mut reader).unwrap(), Reply::Ok("pong\n".into()));
    let Reply::Err { code, .. } = read_reply(&mut reader).unwrap() else {
        panic!("expected err internal mid-stream");
    };
    assert_eq!(code, "internal");
    assert_eq!(
        read_reply(&mut reader).unwrap(),
        Reply::Ok("pong\n".into()),
        "the connection keeps answering after the caught panic"
    );
    shutdown.shutdown();
    handle.join().unwrap().unwrap();
}

/// `read_reply` helper sanity: a raw reader sees exactly one line per
/// error reply (framing survives panics).
#[test]
fn error_replies_stay_one_line_on_the_wire() {
    let _chaos = exclusive();
    let (addr, _engine, shutdown, handle) = start(chaos_config());
    let Reply::Ok(_) = request_line(addr, "chaos set serve.job=one-shot@1:panic") else {
        panic!("expected ok");
    };
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    writeln!(writer, "worst figure1").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    assert!(line.starts_with("err internal "), "{line}");
    assert_eq!(line.matches('\n').count(), 1);
    shutdown.shutdown();
    handle.join().unwrap().unwrap();
}
