//! Shared helpers for the benchmark harness binaries.
//!
//! Every table and figure of the paper has a dedicated binary in
//! `src/bin/` (`table1` … `table6`, `figure2`, `all_tables`), plus
//! calibration (`suite_stats`) and ablation (`ablation_atpg`,
//! `ablation_collapse`) tools. This library holds the tiny bits they
//! share: argument parsing (including the common `--threads` and
//! `--cache-dir` flags), timed universe construction, and an in-process
//! per-(circuit, options) universe cache with an optional
//! content-addressed on-disk fallthrough (`ndetect-store`).

use ndetect_faults::{FaultUniverse, UniverseOptions};
use ndetect_netlist::Netlist;
use ndetect_sim::MemoryBudget;
use ndetect_store::Store;
use std::collections::HashMap;
use std::time::Instant;

/// A parsed `--key value` command line.
#[derive(Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses `std::env::args` of the form `--key value`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        Self::from_vec(raw)
    }

    /// Parses an explicit argument vector (testable core of
    /// [`Self::parse`]).
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments.
    #[must_use]
    pub fn from_vec(raw: Vec<String>) -> Self {
        let mut pairs = Vec::new();
        let mut it = raw.into_iter();
        while let Some(key) = it.next() {
            let Some(stripped) = key.strip_prefix("--") else {
                panic!("expected --key value pairs, got `{key}`");
            };
            let value = it
                .next()
                .unwrap_or_else(|| panic!("missing value for --{stripped}"));
            pairs.push((stripped.to_string(), value));
        }
        Args { pairs }
    }

    /// The raw string value of a key, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A parsed value with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    #[must_use]
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("bad value for --{key}: {e:?}")),
            None => default,
        }
    }

    /// Comma-separated circuit list (`--circuits a,b,c`), or `None` for
    /// the full suite.
    #[must_use]
    pub fn circuits(&self) -> Option<Vec<String>> {
        self.get("circuits")
            .map(|v| v.split(',').map(str::to_string).collect())
    }

    /// Worker threads for fault simulation (`--threads N`); `0` (the
    /// default) means auto: the `NDETECT_THREADS` environment variable,
    /// then the machine's available parallelism.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.get_or("threads", 0)
    }

    /// Per-worker kernel memory budget (`--mem-budget B`, e.g. `16MiB`,
    /// `64K`, a plain byte count, or `unbounded`). The default `Auto`
    /// consults the `NDETECT_MEM_BUDGET` environment variable, then
    /// runs unbounded. Results are identical for every budget.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    #[must_use]
    pub fn mem_budget(&self) -> MemoryBudget {
        match self.get("mem-budget") {
            None => MemoryBudget::Auto,
            Some(v) => {
                MemoryBudget::parse(v).unwrap_or_else(|e| panic!("bad value for --mem-budget: {e}"))
            }
        }
    }

    /// The on-disk artifact cache directory: `--cache-dir DIR`, falling
    /// back to the `NDETECT_CACHE_DIR` environment variable. `None`
    /// (no flag, no variable) disables the disk cache.
    #[must_use]
    pub fn cache_dir(&self) -> Option<String> {
        self.get("cache-dir")
            .map(str::to_string)
            .or_else(|| std::env::var("NDETECT_CACHE_DIR").ok())
            .filter(|d| !d.is_empty())
    }

    /// The universe options selected by the common performance flags
    /// (`--threads`, `--mem-budget`), defaults otherwise.
    ///
    /// # Panics
    ///
    /// Panics if either flag's value does not parse.
    #[must_use]
    pub fn universe_options(&self) -> UniverseOptions {
        UniverseOptions {
            threads: self.threads(),
            mem_budget: self.mem_budget(),
            ..UniverseOptions::default()
        }
    }
}

/// Opens the content-addressed artifact store selected by `--cache-dir`
/// / `NDETECT_CACHE_DIR`, or `None` when no cache directory is
/// configured.
///
/// # Panics
///
/// Panics if the configured directory cannot be created.
#[must_use]
pub fn open_store(args: &Args) -> Option<Store> {
    args.cache_dir().map(|dir| {
        Store::open(&dir).unwrap_or_else(|e| panic!("cannot open cache dir `{dir}`: {e}"))
    })
}

/// Builds a suite circuit and its fault universe with the auto thread
/// count, printing timing to stderr.
///
/// # Panics
///
/// Panics if the circuit name is unknown or the universe cannot be
/// built (suite circuits always can).
#[must_use]
pub fn build_universe(name: &str) -> (Netlist, FaultUniverse) {
    build_universe_with(name, 0)
}

/// Builds a suite circuit and its fault universe with up to `threads`
/// workers (`0` = auto), printing timing to stderr.
///
/// # Panics
///
/// Panics if the circuit name is unknown or the universe cannot be
/// built (suite circuits always can).
#[must_use]
pub fn build_universe_with(name: &str, threads: usize) -> (Netlist, FaultUniverse) {
    build_universe_stored(name, threads, None)
}

/// Builds a suite circuit and its fault universe with up to `threads`
/// workers (`0` = auto), consulting the on-disk artifact store first
/// when one is given; prints timing to stderr.
///
/// # Panics
///
/// Panics if the circuit name is unknown or the universe cannot be
/// built (suite circuits always can).
#[must_use]
pub fn build_universe_stored(
    name: &str,
    threads: usize,
    store: Option<&Store>,
) -> (Netlist, FaultUniverse) {
    build_universe_options(name, UniverseOptions::with_threads(threads), store)
}

/// The fully general timed build: a suite circuit's universe under
/// explicit options, consulting the store first when one is given.
///
/// # Panics
///
/// Panics if the circuit name is unknown or the universe cannot be
/// built (suite circuits always can).
#[must_use]
pub fn build_universe_options(
    name: &str,
    options: UniverseOptions,
    store: Option<&Store>,
) -> (Netlist, FaultUniverse) {
    let t0 = Instant::now();
    let netlist = ndetect_circuits::build(name)
        .unwrap_or_else(|e| panic!("cannot build circuit `{name}`: {e}"));
    let universe = FaultUniverse::build_stored(&netlist, options, store)
        .unwrap_or_else(|e| panic!("cannot build universe for `{name}`: {e}"));

    eprintln!("# {name}: {} ({:.1?})", universe, t0.elapsed());
    (netlist, universe)
}

/// An in-process cache of fault universes, keyed by **(circuit name,
/// universe options)**, so a binary that regenerates several tables
/// builds each distinct universe **once** and reuses it for every table
/// — and differing bridging/collapse/thread options can never alias to
/// the same cached universe. With [`UniverseCache::get_stored`] the
/// in-process cache additionally falls through to the content-addressed
/// on-disk store, making repeated invocations incremental across
/// processes.
#[derive(Default)]
pub struct UniverseCache {
    threads: usize,
    mem_budget: MemoryBudget,
    entries: HashMap<(String, UniverseOptions), (Netlist, FaultUniverse)>,
}

impl UniverseCache {
    /// Creates an empty cache whose universes are built with up to
    /// `threads` workers (`0` = auto).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::with_budget(threads, MemoryBudget::Auto)
    }

    /// Creates an empty cache building with up to `threads` workers and
    /// the given per-worker kernel memory budget.
    #[must_use]
    pub fn with_budget(threads: usize, mem_budget: MemoryBudget) -> Self {
        UniverseCache {
            threads,
            mem_budget,
            entries: HashMap::new(),
        }
    }

    /// The universe (and netlist) for `name` under the default options,
    /// building it on first use and reusing it afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the circuit name is unknown or the universe cannot be
    /// built (suite circuits always can).
    pub fn get(&mut self, name: &str) -> &(Netlist, FaultUniverse) {
        self.get_stored(name, None)
    }

    /// Like [`UniverseCache::get`], but a miss in the in-process map
    /// falls through to the on-disk store before building from scratch
    /// (and populates the store after a build).
    ///
    /// # Panics
    ///
    /// Panics if the circuit name is unknown or the universe cannot be
    /// built (suite circuits always can).
    pub fn get_stored(&mut self, name: &str, store: Option<&Store>) -> &(Netlist, FaultUniverse) {
        let options = UniverseOptions {
            threads: self.threads,
            mem_budget: self.mem_budget,
            ..UniverseOptions::default()
        };
        self.get_with(name, options, store)
    }

    /// The fully general lookup: the universe for `name` built with
    /// explicit `options`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit name is unknown or the universe cannot be
    /// built (suite circuits always can).
    pub fn get_with(
        &mut self,
        name: &str,
        options: UniverseOptions,
        store: Option<&Store>,
    ) -> &(Netlist, FaultUniverse) {
        // Key on the semantic options only: thread count and memory
        // budget are performance knobs with bit-identical results, so
        // they must not split the cache (matching the on-disk key
        // derivation).
        let key = (
            name.to_string(),
            UniverseOptions {
                threads: 0,
                mem_budget: MemoryBudget::Auto,
                ..options
            },
        );
        if !self.entries.contains_key(&key) {
            let built = build_universe_options(name, options, store);
            self.entries.insert(key.clone(), built);
        }
        &self.entries[&key]
    }
}

/// The circuits to process: the `--circuits` selection or the full
/// suite, in table order.
#[must_use]
pub fn selected_circuits(args: &Args) -> Vec<String> {
    match args.circuits() {
        Some(list) => list,
        None => ndetect_circuits::suite()
            .iter()
            .map(|s| s.name().to_string())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_lookup() {
        let args = Args::from_vec(vec![
            "--k".into(),
            "100".into(),
            "--circuits".into(),
            "lion,keyb".into(),
        ]);
        assert_eq!(args.get_or("k", 5usize), 100);
        assert_eq!(args.get_or("nmax", 10u32), 10);
        assert_eq!(
            args.circuits().unwrap(),
            vec!["lion".to_string(), "keyb".to_string()]
        );
        assert!(args.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "expected --key value")]
    fn rejects_positional_arguments() {
        let _ = Args::from_vec(vec!["oops".into()]);
    }

    #[test]
    fn cache_dir_flag_wins_over_nothing() {
        let args = Args::from_vec(vec!["--cache-dir".into(), "/tmp/ndet-cache".into()]);
        assert_eq!(args.cache_dir().as_deref(), Some("/tmp/ndet-cache"));
    }

    #[test]
    fn universe_cache_distinguishes_options() {
        let mut cache = UniverseCache::new(1);
        let defaults = UniverseOptions::with_threads(1);
        let no_bridges = UniverseOptions {
            include_bridges: false,
            ..defaults
        };
        let (_, with_bridges) = cache.get_with("figure1", defaults, None);
        assert!(!with_bridges.bridges().is_empty());
        let (_, without) = cache.get_with("figure1", no_bridges, None);
        assert!(without.bridges().is_empty());
        // The first entry was not clobbered by the second.
        let (_, again) = cache.get_with("figure1", defaults, None);
        assert!(!again.bridges().is_empty());
    }
}
