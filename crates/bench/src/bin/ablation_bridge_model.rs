//! Ablation: **bridging-model sensitivity** — how much do the
//! worst-case conclusions depend on using the paper's full four-way
//! model vs its wired-AND / wired-OR halves?
//!
//! Usage: `ablation_bridge_model [--circuits a,b,c] [--cache-dir DIR]`.

use ndetect_bench::{open_store, selected_circuits, Args};
use ndetect_core::WorstCaseAnalysis;
use ndetect_faults::{BridgeModel, FaultUniverse, UniverseOptions};

fn main() {
    let args = Args::parse();
    let store = open_store(&args);
    println!("Ablation: four-way vs wired-AND vs wired-OR bridging models");
    println!("(worst-case coverage % at n = 1 and n = 10, and nmin >= 11 tail counts)");
    println!();
    println!(
        "{:<10} {:<9} | {:>8} {:>8} {:>8} {:>8}",
        "circuit", "model", "|G|", "cov@1", "cov@10", "tail11"
    );
    for name in selected_circuits(&args) {
        let netlist = ndetect_circuits::build(&name).expect("suite circuit builds");
        for (label, model) in [
            ("four-way", BridgeModel::FourWay),
            ("wired-AND", BridgeModel::WiredAnd),
            ("wired-OR", BridgeModel::WiredOr),
        ] {
            let universe = FaultUniverse::build_stored(
                &netlist,
                UniverseOptions {
                    bridge_model: model,
                    ..args.universe_options()
                },
                store.as_ref(),
            )
            .expect("fits exhaustive sim");
            let wc = WorstCaseAnalysis::compute_stored(&universe, args.threads(), store.as_ref());
            println!(
                "{:<10} {:<9} | {:>8} {:>7.2}% {:>7.2}% {:>8}",
                if model == BridgeModel::FourWay {
                    name.as_str()
                } else {
                    ""
                },
                label,
                universe.bridges().len(),
                wc.coverage_percent(1),
                wc.coverage_percent(10),
                wc.tail_count(11),
            );
        }
    }
}
