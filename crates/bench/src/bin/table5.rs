//! Regenerates the paper's **Table 5**: average-case probabilities of
//! detection. For every circuit with faults not guaranteed detected by
//! a 10-detection test set (`nmin ≥ 11`), K random 10-detection test
//! sets are built with Procedure 1 (Definition 1) and the number of
//! tail faults with `p(10, gj) ≥ 1.0, 0.9, …, 0.0` is tabulated.
//!
//! The paper uses K = 10000; the default here is 1000 for a quick run —
//! pass `--k 10000` for the paper's setting.
//!
//! Usage: `table5 [--circuits a,b,c] [--k 1000] [--nmax 10] [--seed ...]`.

use ndetect_bench::{build_universe_options, open_store, selected_circuits, Args};
use ndetect_core::report::{render_table5, table5_row, Table5Row};
use ndetect_core::{estimate_detection_probabilities, Procedure1Config, WorstCaseAnalysis};

fn main() {
    let args = Args::parse();
    let k: usize = args.get_or("k", 1000);
    let nmax: u32 = args.get_or("nmax", 10);
    let seed: u64 = args.get_or("seed", 0x5EED_0001);

    let mut rows: Vec<Table5Row> = Vec::new();
    let threads = args.threads();
    let store = open_store(&args);
    for name in selected_circuits(&args) {
        let (_netlist, universe) =
            build_universe_options(&name, args.universe_options(), store.as_ref());
        let wc = WorstCaseAnalysis::compute_stored(&universe, threads, store.as_ref());
        let tracked = wc.tail_indices(nmax + 1);
        if tracked.is_empty() {
            continue; // the paper lists only circuits with tail faults
        }
        let config = Procedure1Config {
            nmax,
            num_test_sets: k,
            seed,
            threads,
            ..Default::default()
        };
        let probs =
            estimate_detection_probabilities(&universe, &tracked, &config).expect("valid config");
        rows.push(table5_row(&name, &probs));
        if let Some((pos, p)) = probs.min_probability(nmax) {
            eprintln!(
                "# {name}: lowest p({nmax},g) = {p:.3} for {}",
                universe.bridges()[tracked[pos]].name(universe.netlist())
            );
        }
    }
    println!("Table 5: average-case probabilities of detection (K = {k}, n = {nmax})");
    println!(
        "(faults with nmin >= {}; count with p(n,gj) >= threshold)",
        nmax + 1
    );
    println!();
    print!("{}", render_table5(&rows));
}
