//! Regenerates the paper's **Figure 2**: the distribution of `nmin(gj)`
//! for faults with large `nmin` on one circuit (the paper uses `dvram`
//! with a floor of 100).
//!
//! Usage: `figure2 [--circuits dvram] [--floor 100]`.

use ndetect_bench::{build_universe_options, open_store, Args};
use ndetect_core::{NminDistribution, WorstCaseAnalysis};

fn main() {
    let args = Args::parse();
    let name = args
        .circuits()
        .and_then(|c| c.first().cloned())
        .unwrap_or_else(|| "dvram".to_string());
    let floor: u32 = args.get_or("floor", 100);

    let threads = args.threads();
    let store = open_store(&args);
    let (_netlist, universe) =
        build_universe_options(&name, args.universe_options(), store.as_ref());
    let wc = WorstCaseAnalysis::compute_stored(&universe, threads, store.as_ref());
    let dist = NminDistribution::collect(&wc, floor);

    println!("Figure 2: distribution of nmin(gj) for {name} (nmin >= {floor})");
    println!();
    if dist.is_empty() && dist.num_unbounded() == 0 {
        let fallback = NminDistribution::collect(&wc, 11);
        println!("(no faults with nmin >= {floor}; showing the nmin >= 11 tail instead)");
        println!();
        print!("{}", fallback.render_ascii(30));
        println!(
            "\ntail faults (nmin >= 11): {}; max finite nmin = {:?}",
            wc.tail_count(11),
            wc.max_finite()
        );
    } else {
        print!("{}", dist.render_ascii(30));
        println!(
            "\nfaults plotted: {} (+ {} never guaranteed); max finite nmin = {:?}",
            dist.total(),
            dist.num_unbounded(),
            wc.max_finite()
        );
    }
}
