//! Regenerates the paper's **Table 6**: the Table-5 probability
//! histogram under **Definition 1** vs **Definition 2** (two tests only
//! count as different detections of a fault if their common bits do not
//! already detect it).
//!
//! The paper uses K = 1000; the default here is 200 for a quick run —
//! pass `--k 1000` for the paper's setting. Definition 2 construction is
//! considerably more expensive (three-valued similarity checks), which
//! is itself one of the ablation results.
//!
//! Usage: `table6 [--circuits a,b,c] [--k 200] [--nmax 10] [--seed ...]`.

use ndetect_bench::{build_universe_options, open_store, selected_circuits, Args};
use ndetect_core::report::{render_table6, table6_row, Table6Row};
use ndetect_core::{
    estimate_detection_probabilities, DetectionDefinition, Procedure1Config, WorstCaseAnalysis,
};

fn main() {
    let args = Args::parse();
    let k: usize = args.get_or("k", 200);
    let nmax: u32 = args.get_or("nmax", 10);
    let seed: u64 = args.get_or("seed", 0x5EED_0002);

    let mut rows: Vec<Table6Row> = Vec::new();
    let threads = args.threads();
    let store = open_store(&args);
    for name in selected_circuits(&args) {
        let (_netlist, universe) =
            build_universe_options(&name, args.universe_options(), store.as_ref());
        let wc = WorstCaseAnalysis::compute_stored(&universe, threads, store.as_ref());
        let tracked = wc.tail_indices(nmax + 1);
        if tracked.is_empty() {
            continue;
        }
        let base = Procedure1Config {
            nmax,
            num_test_sets: k,
            seed,
            threads,
            ..Default::default()
        };
        let d1 =
            estimate_detection_probabilities(&universe, &tracked, &base).expect("valid config");
        let d2 = estimate_detection_probabilities(
            &universe,
            &tracked,
            &Procedure1Config {
                definition: DetectionDefinition::SufficientlyDifferent,
                ..base
            },
        )
        .expect("valid config");
        rows.push(table6_row(&name, &d1, &d2));
    }
    println!("Table 6: average-case probabilities under Definitions 1 and 2 (K = {k}, n = {nmax})");
    println!();
    print!("{}", render_table6(&rows));
}
