//! Regenerates the paper's **Table 2**: worst-case percentages of
//! untargeted (four-way bridging) faults guaranteed to be detected by
//! any n-detection test set, for n ≤ 1, 2, 3, 4, 5, 10.
//!
//! Usage: `table2 [--circuits a,b,c]` (default: the full 35-circuit
//! suite in paper order).

use ndetect_bench::{build_universe_options, open_store, selected_circuits, Args};
use ndetect_core::report::{render_table2, table2_row, Table2Row};
use ndetect_core::WorstCaseAnalysis;

fn main() {
    let args = Args::parse();
    let mut rows: Vec<Table2Row> = Vec::new();
    let threads = args.threads();
    let store = open_store(&args);
    for name in selected_circuits(&args) {
        let (_netlist, universe) =
            build_universe_options(&name, args.universe_options(), store.as_ref());
        let wc = WorstCaseAnalysis::compute_stored(&universe, threads, store.as_ref());
        rows.push(table2_row(&name, &wc));
    }
    println!("Table 2: worst-case percentages of detected faults (small n)");
    println!("(percent of G with nmin(gj) <= n; blank after a column reaches 100%)");
    println!();
    print!("{}", render_table2(&rows));
}
