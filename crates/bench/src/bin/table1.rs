//! Regenerates the paper's **Table 1**: the target faults whose test
//! vectors overlap `T(g0)` for `g0 = (9,0,10,1)` in the Figure 1
//! example circuit, with `T(f_i)` and `nmin(g0, f_i)`.
//!
//! This table is reproduced **exactly** (same fault indices, same
//! detection sets, same nmin values) — it is the ground truth that pins
//! down the fault semantics of the whole reproduction.

//!
//! Usage: `table1 [--threads N] [--cache-dir DIR]`.

use ndetect_bench::{open_store, Args};
use ndetect_circuits::figure1;
use ndetect_core::report;
use ndetect_core::WorstCaseAnalysis;
use ndetect_faults::FaultUniverse;

fn main() {
    let args = Args::parse();
    let store = open_store(&args);
    let netlist = figure1::netlist();
    let universe = FaultUniverse::build_stored(&netlist, args.universe_options(), store.as_ref())
        .expect("figure1 fits exhaustive simulation");

    let g0 = universe
        .find_bridge("9", false, "10", true)
        .expect("g0 is detectable");
    let t_g0 = universe.bridge_set(g0).to_vec();

    println!("Table 1: faults with test vectors that overlap with T(g0) = {t_g0:?}");
    println!("(paper line labels; g0 = (9,0,10,1))");
    println!();
    println!("{:>3}  {:<6} {:<42} nmin(g0,f_i)", "i", "f_i", "T(f_i)");
    for row in report::table1(&universe, g0) {
        // Render with the paper's numeric line labels instead of our
        // branch names.
        let fault = universe.targets()[row.index];
        let label = format!(
            "{}/{}",
            figure1::paper_line_label(fault.line),
            u8::from(fault.value)
        );
        let ts = row
            .t_set
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        println!("{:>3}  {:<6} {:<42} {}", row.index, label, ts, row.nmin);
    }

    let wc = WorstCaseAnalysis::compute_stored(&universe, args.threads(), store.as_ref());
    println!();
    println!("nmin(g0) = {}", wc.nmin(g0).expect("g0 has a bound"));
    let g6 = universe
        .find_bridge("11", false, "9", true)
        .expect("g6 is detectable");
    println!(
        "g6 = (11,0,9,1): T(g6) = {:?}, nmin(g6) = {}",
        universe.bridge_set(g6).to_vec(),
        wc.nmin(g6).expect("g6 has a bound")
    );
}
