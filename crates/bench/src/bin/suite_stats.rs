//! Prints structural and fault-population statistics for every suite
//! circuit — used to calibrate the experiment harness.
//!
//! Usage: `suite_stats [--threads N] [--cache-dir DIR]`.

use ndetect_bench::{open_store, Args};
use ndetect_faults::FaultUniverse;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let store = open_store(&args);
    println!(
        "{:<10} {:>3} {:>3} {:>3} {:>5} {:>6} {:>7} {:>8} {:>8} {:>8}",
        "circuit", "pi", "po", "st", "bits", "gates", "|F|", "|G|", "undet", "ms"
    );
    for spec in ndetect_circuits::suite() {
        let t0 = Instant::now();
        let netlist = spec.build().expect("suite circuits synthesize");
        let universe =
            FaultUniverse::build_stored(&netlist, args.universe_options(), store.as_ref())
                .expect("suite circuits fit exhaustive sim");
        let ms = t0.elapsed().as_millis();
        println!(
            "{:<10} {:>3} {:>3} {:>3} {:>5} {:>6} {:>7} {:>8} {:>8} {:>8}",
            spec.name(),
            spec.inputs(),
            spec.outputs(),
            spec.states(),
            spec.total_input_bits(),
            netlist.num_gates(),
            universe.targets().len(),
            universe.bridges().len(),
            universe.num_undetectable_bridges(),
            ms
        );
    }
}
