//! Ablation: **equivalence collapsing on/off** for the target set `F`.
//!
//! The paper computes `nmin` over collapsed stuck-at targets. With the
//! full (uncollapsed) universe, `F` is a superset, so `nmin(g)` can
//! only stay equal or decrease — this ablation measures by how much the
//! worst-case coverage moves, and verifies the monotonicity property on
//! real circuits.
//!
//! Usage: `ablation_collapse [--circuits a,b,c] [--cache-dir DIR]`.

use ndetect_bench::{open_store, selected_circuits, Args};
use ndetect_core::WorstCaseAnalysis;
use ndetect_faults::{FaultUniverse, UniverseOptions};

fn main() {
    let args = Args::parse();
    let store = open_store(&args);
    println!("Ablation: equivalence collapsing of target faults");
    println!("(worst-case coverage % at n = 10 and tail counts, collapsed vs full F)");
    println!();
    println!(
        "{:<10} {:>6} {:>6} | {:>9} {:>9} | {:>8} {:>8}",
        "circuit", "|Fc|", "|Ff|", "cov10(c)", "cov10(f)", "tail(c)", "tail(f)"
    );
    for name in selected_circuits(&args) {
        let netlist = ndetect_circuits::build(&name).expect("suite circuit builds");
        let collapsed =
            FaultUniverse::build_stored(&netlist, args.universe_options(), store.as_ref())
                .expect("fits exhaustive sim");
        let full = FaultUniverse::build_stored(
            &netlist,
            UniverseOptions {
                collapse_targets: false,
                ..args.universe_options()
            },
            store.as_ref(),
        )
        .expect("fits exhaustive sim");
        let wc_c = WorstCaseAnalysis::compute_stored(&collapsed, args.threads(), store.as_ref());
        let wc_f = WorstCaseAnalysis::compute_stored(&full, args.threads(), store.as_ref());

        // Monotonicity check: more targets never increase nmin.
        for j in 0..collapsed.bridges().len() {
            let (c, f) = (wc_c.nmin(j), wc_f.nmin(j));
            match (c, f) {
                (Some(c), Some(f)) => assert!(f <= c, "{name} bridge {j}: {f} > {c}"),
                (None, Some(_)) | (None, None) => {}
                (Some(_), None) => panic!("{name} bridge {j}: bound lost without collapsing"),
            }
        }

        println!(
            "{:<10} {:>6} {:>6} | {:>8.2}% {:>8.2}% | {:>8} {:>8}",
            name,
            collapsed.targets().len(),
            full.targets().len(),
            wc_c.coverage_percent(10),
            wc_f.coverage_percent(10),
            wc_c.tail_count(11),
            wc_f.tail_count(11),
        );
    }
}
