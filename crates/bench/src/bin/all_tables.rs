//! Regenerates every table and figure of the paper in order, with
//! modest default sample counts (suitable for a single sitting; see the
//! individual binaries for paper-scale settings).
//!
//! Every circuit's fault universe is built **once** (via
//! [`ndetect_bench::UniverseCache`]) and shared across all tables that
//! need it — including the figure1 example, which Tables 1 and 4 reuse.
//! With `--cache-dir` (or `NDETECT_CACHE_DIR`) universes and `nmin`
//! vectors additionally persist to the content-addressed on-disk store,
//! so a warm second run performs **zero** universe builds.
//!
//! Usage: `all_tables [--k5 1000] [--k6 200] [--circuits a,b,c]
//! [--threads N] [--cache-dir DIR]`.

use ndetect_bench::{open_store, selected_circuits, Args, UniverseCache};
use ndetect_core::report::{
    render_table2, render_table3, render_table5, render_table6, table2_row, table3_row, table5_row,
    table6_row,
};
use ndetect_core::{
    estimate_detection_probabilities, DetectionDefinition, NminDistribution, Procedure1Config,
    WorstCaseAnalysis,
};
use ndetect_faults::FaultUniverse;

fn main() {
    let args = Args::parse();
    let k5: usize = args.get_or("k5", 1000);
    let k6: usize = args.get_or("k6", 200);
    let threads = args.threads();
    let store = open_store(&args);
    let nmax: u32 = 10;
    let mut cache = UniverseCache::with_budget(threads, args.mem_budget());

    // Table 1 + Table 4 + Figure 1 example data are exact and cheap and
    // share one cached figure1 universe.
    println!("=== Table 1 (figure1 example; exact reproduction) ===\n");
    table1_section(&cache.get_stored("figure1", store.as_ref()).1);

    // Suite passes: compute each universe once, reuse for tables 2/3/5/6
    // and figure 2.
    let mut rows2 = Vec::new();
    let mut rows3 = Vec::new();
    let mut rows5 = Vec::new();
    let mut rows6 = Vec::new();
    let mut figure2_text: Option<String> = None;

    for name in selected_circuits(&args) {
        let (_netlist, universe) = cache.get_stored(&name, store.as_ref());
        let wc = WorstCaseAnalysis::compute_stored(universe, threads, store.as_ref());
        rows2.push(table2_row(&name, &wc));
        if wc.tail_count(11) > 0 {
            rows3.push(table3_row(&name, &wc));
        }
        if name == "dvram" {
            let dist = NminDistribution::collect(&wc, 100);
            let text = if dist.is_empty() {
                NminDistribution::collect(&wc, 11).render_ascii(30)
            } else {
                dist.render_ascii(30)
            };
            figure2_text = Some(text);
        }
        let tracked = wc.tail_indices(nmax + 1);
        if tracked.is_empty() {
            continue;
        }
        let base = Procedure1Config {
            nmax,
            num_test_sets: k5,
            threads,
            ..Default::default()
        };
        let d1 = estimate_detection_probabilities(universe, &tracked, &base).expect("valid config");
        rows5.push(table5_row(&name, &d1));
        let base6 = Procedure1Config {
            num_test_sets: k6,
            ..base
        };
        let d1s =
            estimate_detection_probabilities(universe, &tracked, &base6).expect("valid config");
        let d2s = estimate_detection_probabilities(
            universe,
            &tracked,
            &Procedure1Config {
                definition: DetectionDefinition::SufficientlyDifferent,
                ..base6
            },
        )
        .expect("valid config");
        rows6.push(table6_row(&name, &d1s, &d2s));
    }

    println!("\n=== Table 2 (worst case, small n) ===\n");
    print!("{}", render_table2(&rows2));
    println!("\n=== Table 3 (worst case, large n) ===\n");
    print!("{}", render_table3(&rows3));
    if let Some(text) = figure2_text {
        println!("\n=== Figure 2 (nmin distribution, dvram) ===\n");
        print!("{text}");
    }
    println!("\n=== Table 4 (example test sets) ===\n");
    table4_section(&cache.get_stored("figure1", store.as_ref()).1);
    println!("\n=== Table 5 (average case, Definition 1, K = {k5}) ===\n");
    print!("{}", render_table5(&rows5));
    println!("\n=== Table 6 (Definition 1 vs 2, K = {k6}) ===\n");
    print!("{}", render_table6(&rows6));
}

fn table1_section(universe: &FaultUniverse) {
    use ndetect_circuits::figure1;
    let g0 = universe.find_bridge("9", false, "10", true).expect("g0");
    for row in ndetect_core::report::table1(universe, g0) {
        let fault = universe.targets()[row.index];
        println!(
            "f{:<3} {:>5}/{} T={:?} nmin={}",
            row.index,
            figure1::paper_line_label(fault.line),
            u8::from(fault.value),
            row.t_set,
            row.nmin
        );
    }
}

fn table4_section(universe: &FaultUniverse) {
    use ndetect_core::construct_test_set_series;
    let config = Procedure1Config {
        nmax: 2,
        num_test_sets: 10,
        seed: 1,
        ..Default::default()
    };
    let series = construct_test_set_series(universe, &config).expect("valid config");
    for k in 0..10 {
        let mut t1 = series.sets[0][k].vectors().to_vec();
        let mut t2 = series.sets[1][k].vectors().to_vec();
        t1.sort_unstable();
        t2.sort_unstable();
        println!("{k:>2}  n=1: {t1:?}   n=2: {t2:?}");
    }
}
