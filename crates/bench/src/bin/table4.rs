//! Regenerates the paper's **Table 4**: K = 10 random n-detection test
//! sets for the Figure 1 example circuit, at n = 1 and n = 2
//! (Procedure 1, Definition 1).
//!
//! Absolute test choices depend on the RNG stream (ours is seeded and
//! reproducible, the paper's is unspecified); the *structure* matches:
//! every printed set is a valid n-detection set, and the n = 2 sets
//! extend the n = 1 sets.
//!
//! Usage: `table4 [--k 10] [--seed 1] [--cache-dir DIR]`.

use ndetect_bench::{open_store, Args};
use ndetect_circuits::figure1;
use ndetect_core::{construct_test_set_series, Procedure1Config};
use ndetect_faults::FaultUniverse;

fn main() {
    let args = Args::parse();
    let k: usize = args.get_or("k", 10);
    let seed: u64 = args.get_or("seed", 1);
    let store = open_store(&args);

    let netlist = figure1::netlist();
    let universe = FaultUniverse::build_stored(&netlist, args.universe_options(), store.as_ref())
        .expect("figure1 fits exhaustive simulation");
    let config = Procedure1Config {
        nmax: 2,
        num_test_sets: k,
        seed,
        ..Default::default()
    };
    let series = construct_test_set_series(&universe, &config).expect("valid config");

    println!("Table 4: test sets for example circuit (K = {k}, Procedure 1, Definition 1)");
    println!();
    println!("{:>2}  {:<28} n=2", "k", "n=1");
    for ki in 0..k {
        let t1: Vec<u32> = {
            let mut v = series.sets[0][ki].vectors().to_vec();
            v.sort_unstable();
            v
        };
        let t2: Vec<u32> = {
            let mut v = series.sets[1][ki].vectors().to_vec();
            v.sort_unstable();
            v
        };
        let fmt = |v: &[u32]| {
            v.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("{ki:>2}  {:<28} {}", fmt(&t1), fmt(&t2));
    }

    // The paper then computes d(n, g6) and p(n, g6) over these sets.
    let g6 = universe
        .find_bridge("11", false, "9", true)
        .expect("g6 detectable");
    let t_g6 = universe.bridge_set(g6);
    for n in 1..=2u32 {
        let d = series.sets[(n - 1) as usize]
            .iter()
            .filter(|s| s.detects(t_g6))
            .count();
        println!(
            "\nd({n},g6) = {d}, p({n},g6) = {:.1}   (g6 = (11,0,9,1), T(g6) = {:?})",
            d as f64 / k as f64,
            t_g6.to_vec()
        );
    }
}
