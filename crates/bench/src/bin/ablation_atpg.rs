//! Ablation: **compact greedy vs random n-detection test sets**.
//!
//! The paper's analysis is independent of how the n-detection set was
//! generated; this ablation quantifies the spread between a compact
//! deterministic greedy set (what ATPG compaction aims for — closer to
//! the worst case) and the random sets of Procedure 1, on bridging
//! coverage, for n = 1..nmax.
//!
//! Usage: `ablation_atpg [--circuits a,b,c] [--nmax 10] [--k 100]`.

use ndetect_bench::{build_universe_options, open_store, selected_circuits, Args};
use ndetect_core::atpg::{bridge_coverage, greedy_n_detection};
use ndetect_core::{construct_test_set_series, Procedure1Config};

fn main() {
    let args = Args::parse();
    let nmax: u32 = args.get_or("nmax", 10);
    let k: usize = args.get_or("k", 100);

    println!("Ablation: greedy compact vs random n-detection test sets");
    println!("(bridging-fault coverage %; random column is the mean over K = {k} sets)");
    println!();
    println!(
        "{:<10} {:>3} | {:>7} {:>9} {:>9} {:>9}",
        "circuit", "n", "|greedy|", "greedy%", "random%", "delta"
    );
    let threads = args.threads();
    let store = open_store(&args);
    for name in selected_circuits(&args) {
        let (_netlist, universe) =
            build_universe_options(&name, args.universe_options(), store.as_ref());
        let config = Procedure1Config {
            nmax,
            num_test_sets: k,
            threads,
            ..Default::default()
        };
        let series = construct_test_set_series(&universe, &config).expect("valid config");
        for n in [1, 2, 5, nmax] {
            if n > nmax {
                continue;
            }
            let greedy = greedy_n_detection(&universe, n);
            let gcov = bridge_coverage(&universe, &greedy);
            let rcov: f64 = series.sets[(n - 1) as usize]
                .iter()
                .map(|s| bridge_coverage(&universe, s))
                .sum::<f64>()
                / k as f64;
            println!(
                "{:<10} {:>3} | {:>7} {:>8.2}% {:>8.2}% {:>+8.2}%",
                name,
                n,
                greedy.len(),
                gcov,
                rcov,
                rcov - gcov
            );
        }
    }
}
