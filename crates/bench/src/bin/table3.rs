//! Regenerates the paper's **Table 3**: worst-case numbers (and
//! percentages) of untargeted faults that require `nmin ≥ 100, 20, 11`
//! to be guaranteed detected. Like the paper, only circuits that have
//! faults with `nmin ≥ 11` are listed.
//!
//! Usage: `table3 [--circuits a,b,c]`.

use ndetect_bench::{build_universe_options, open_store, selected_circuits, Args};
use ndetect_core::report::{render_table3, table3_row, Table3Row};
use ndetect_core::WorstCaseAnalysis;

fn main() {
    let args = Args::parse();
    let mut rows: Vec<Table3Row> = Vec::new();
    let threads = args.threads();
    let store = open_store(&args);
    for name in selected_circuits(&args) {
        let (_netlist, universe) =
            build_universe_options(&name, args.universe_options(), store.as_ref());
        let wc = WorstCaseAnalysis::compute_stored(&universe, threads, store.as_ref());
        if wc.tail_count(11) == 0 {
            continue; // the paper lists only circuits with such faults
        }
        rows.push(table3_row(&name, &wc));
    }
    println!("Table 3: worst-case numbers of detected faults (large n)");
    println!("(count (percent) of G with nmin(gj) >= n; includes faults never guaranteed)");
    println!();
    print!("{}", render_table3(&rows));
}
