//! Ablation: **state-encoding sensitivity** — the same state machine
//! synthesized under natural-binary vs Gray encodings yields different
//! combinational logic; how stable are the n-detection conclusions?
//!
//! Usage: `ablation_encoding [--circuits a,b,c] [--cache-dir DIR]`.

use ndetect_bench::{open_store, selected_circuits, Args};
use ndetect_core::WorstCaseAnalysis;
use ndetect_faults::FaultUniverse;
use ndetect_fsm::{synthesize, StateEncoding, SynthOptions};

fn main() {
    let args = Args::parse();
    let store = open_store(&args);
    println!("Ablation: binary vs Gray state encoding");
    println!("(worst-case coverage % and tail counts over the same machine)");
    println!();
    println!(
        "{:<10} {:<7} | {:>6} {:>8} {:>8} {:>8} {:>8}",
        "circuit", "enc", "gates", "|G|", "cov@1", "cov@10", "tail11"
    );
    for name in selected_circuits(&args) {
        let Some(spec) = ndetect_circuits::spec(&name) else {
            eprintln!("# skipping `{name}`: not a suite circuit");
            continue;
        };
        let fsm = spec.build_fsm();
        for (label, encoding) in [
            ("binary", StateEncoding::binary(fsm.num_states())),
            ("gray", StateEncoding::gray(fsm.num_states())),
        ] {
            let netlist = synthesize(&fsm, &encoding, SynthOptions::default())
                .expect("suite machines synthesize");
            let universe =
                FaultUniverse::build_stored(&netlist, args.universe_options(), store.as_ref())
                    .expect("fits exhaustive sim");
            let wc = WorstCaseAnalysis::compute_stored(&universe, args.threads(), store.as_ref());
            println!(
                "{:<10} {:<7} | {:>6} {:>8} {:>7.2}% {:>7.2}% {:>8}",
                if label == "binary" { name.as_str() } else { "" },
                label,
                netlist.num_gates(),
                universe.bridges().len(),
                wc.coverage_percent(1),
                wc.coverage_percent(10),
                wc.tail_count(11),
            );
        }
    }
}
