//! Criterion benchmarks timing the end-to-end regeneration of each
//! paper table on a representative circuit (universe construction
//! excluded — it is timed in `fault_sim`).

use criterion::{criterion_group, criterion_main, Criterion};
use ndetect_core::report::{table1, table2_row, table3_row, table5_row};
use ndetect_core::{
    construct_test_set_series, estimate_detection_probabilities, NminDistribution,
    Procedure1Config, WorstCaseAnalysis,
};
use ndetect_faults::FaultUniverse;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");

    // Table 1 on the exact paper example.
    let fig1 = FaultUniverse::build(&ndetect_circuits::figure1::netlist()).expect("builds");
    let g0 = fig1.find_bridge("9", false, "10", true).expect("g0");
    group.bench_function("table1/figure1", |b| {
        b.iter(|| table1(&fig1, g0));
    });

    // Tables 2/3 and Figure 2 on a mid-size circuit.
    let netlist = ndetect_circuits::build("ex2").expect("suite circuit builds");
    let universe = FaultUniverse::build(&netlist).expect("fits");
    group.bench_function("table2_row/ex2", |b| {
        b.iter(|| {
            let wc = WorstCaseAnalysis::compute(&universe);
            (table2_row("ex2", &wc), table3_row("ex2", &wc))
        });
    });
    let wc = WorstCaseAnalysis::compute(&universe);
    group.bench_function("figure2_distribution/ex2", |b| {
        b.iter(|| NminDistribution::collect(&wc, 1));
    });

    // Table 4 on the example circuit.
    let config4 = Procedure1Config {
        nmax: 2,
        num_test_sets: 10,
        ..Default::default()
    };
    group.bench_function("table4/figure1", |b| {
        b.iter(|| construct_test_set_series(&fig1, &config4));
    });

    // Table 5 row at reduced K on a circuit with tail faults.
    let tracked = wc.tail_indices(11);
    if !tracked.is_empty() {
        let config5 = Procedure1Config {
            nmax: 10,
            num_test_sets: 50,
            threads: 1,
            ..Default::default()
        };
        group.bench_function("table5_row_k50/ex2", |b| {
            b.iter(|| {
                let probs = estimate_detection_probabilities(&universe, &tracked, &config5)
                    .expect("valid config");
                table5_row("ex2", &probs)
            });
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_tables
}
criterion_main!(benches);
