//! Criterion micro-benchmarks for the fault-simulation substrate:
//! good-value computation, stuck-at detection tables, bridging
//! detection tables.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ndetect_faults::{all_stuck_at_faults, enumerate_four_way, FaultSimulator};
use ndetect_sim::{GoodValues, PatternSpace};

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim");
    for name in ["dk16", "keyb", "s1a"] {
        let netlist = ndetect_circuits::build(name).expect("suite circuit builds");
        let space = PatternSpace::new(netlist.num_inputs()).expect("fits");

        group.bench_function(format!("good_values/{name}"), |b| {
            b.iter(|| GoodValues::compute(&netlist, &space));
        });

        let sim = FaultSimulator::new(&netlist).expect("fits");
        let faults = all_stuck_at_faults(&netlist);
        group.bench_function(format!("stuck_table/{name}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &f in &faults {
                    total += sim.detection_set_stuck(&netlist, f).len();
                }
                total
            });
        });

        let bridges = enumerate_four_way(&netlist, sim.reachability());
        let sample: Vec<_> = bridges.iter().take(512).collect();
        group.bench_function(format!("bridge_sample512/{name}"), |b| {
            b.iter_batched(
                || sample.clone(),
                |faults| {
                    let mut total = 0usize;
                    for f in faults {
                        total += sim.detection_set_bridge(&netlist, f).len();
                    }
                    total
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_fault_sim
}
criterion_main!(benches);
