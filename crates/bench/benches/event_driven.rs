//! Criterion benchmark comparing the event-driven fault-propagation
//! kernel against the reference full-cone kernel, plus a
//! machine-readable perf-snapshot mode.
//!
//! Both kernels compute every detection set (collapsed stuck-at targets
//! plus the four-way bridging population) of a circuit through one
//! shared simulator, so the comparison isolates the per-fault kernel —
//! the dominant cost of a cold universe build.
//!
//! Modes:
//!
//! * `cargo bench --bench event_driven` — criterion timings on the
//!   widest suite circuits (`s1a`, `rie`);
//! * `cargo bench --bench event_driven -- --json [--quick]
//!   [--out PATH] [--cache-dir DIR]` — measures suite **and** corpus
//!   circuits and writes a `BENCH_PR4.json` snapshot (circuit, kernel,
//!   threads, ns/fault) at the repository root, giving future PRs a
//!   trajectory to compare against. With a cache directory it also
//!   exercises `FaultUniverse::build_stored`, so a warm re-run must
//!   perform zero universe builds (asserted by the CI `bench-smoke`
//!   job via `ndet cache stats`).

use criterion::{criterion_group, Criterion};
use ndetect_faults::{
    enumerate_bridges, BridgeModel, BridgingFault, CollapsedFaults, FaultSimulator, FaultUniverse,
    StuckAtFault, UniverseOptions,
};
use ndetect_netlist::{bench_format, Netlist};
use ndetect_sim::parallel;
use ndetect_store::Store;
use std::path::PathBuf;
use std::time::Instant;

/// One circuit's precomputed fault population: kernel timings measure
/// only detection-set construction, not good values or enumeration.
struct Workload {
    name: String,
    netlist: Netlist,
    sim: FaultSimulator,
    targets: Vec<StuckAtFault>,
    bridges: Vec<BridgingFault>,
}

impl Workload {
    fn new(name: &str, netlist: Netlist) -> Self {
        let sim = FaultSimulator::with_threads(&netlist, 1).expect("fits exhaustive sim");
        let targets = CollapsedFaults::compute(&netlist)
            .representatives()
            .to_vec();
        let bridges = enumerate_bridges(&netlist, sim.reachability(), BridgeModel::FourWay);
        Workload {
            name: name.to_string(),
            netlist,
            sim,
            targets,
            bridges,
        }
    }

    fn num_faults(&self) -> usize {
        self.targets.len() + self.bridges.len()
    }

    /// Every detection set through the event-driven kernel, fault list
    /// tiled over `threads` workers, each reusing one scratch.
    fn run_event(&self, threads: usize) -> usize {
        let stuck = parallel::parallel_map_with(
            threads,
            &self.targets,
            || self.sim.new_scratch(),
            |scratch, _, &f| {
                self.sim
                    .detection_set_stuck_with(&self.netlist, f, scratch)
                    .len()
            },
        );
        let bridged = parallel::parallel_map_with(
            threads,
            &self.bridges,
            || self.sim.new_scratch(),
            |scratch, _, fault| {
                self.sim
                    .detection_set_bridge_with(&self.netlist, fault, scratch)
                    .len()
            },
        );
        stuck.into_iter().sum::<usize>() + bridged.into_iter().sum::<usize>()
    }

    /// Every detection set through the reference full-cone kernel.
    fn run_full_cone(&self) -> usize {
        let mut total = 0usize;
        for &f in &self.targets {
            total += self
                .sim
                .detection_set_stuck_full_cone(&self.netlist, f)
                .len();
        }
        for fault in &self.bridges {
            total += self
                .sim
                .detection_set_bridge_full_cone(&self.netlist, fault)
                .len();
        }
        total
    }
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_driven");
    group.sample_size(3);
    for name in ["s1a", "rie"] {
        let netlist = ndetect_circuits::build(name).expect("suite circuit builds");
        let w = Workload::new(name, netlist);
        group.bench_function(format!("{name}/event"), |b| b.iter(|| w.run_event(1)));
        group.bench_function(format!("{name}/full_cone"), |b| {
            b.iter(|| w.run_full_cone())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_kernels
}

/// One measured row of the snapshot.
struct Row {
    circuit: String,
    kernel: &'static str,
    threads: usize,
    faults: usize,
    ns_per_fault: f64,
    total_ms: f64,
}

/// Minimum wall-clock over `iters` runs of `f`, in seconds.
fn time_best<F: FnMut() -> usize>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn repo_root() -> PathBuf {
    // crates/bench -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The snapshot workloads: the widest suite circuits plus every corpus
/// `.bench` file.
fn snapshot_workloads() -> Vec<Workload> {
    let mut workloads: Vec<Workload> = ["s1a", "rie"]
        .iter()
        .map(|name| Workload::new(name, ndetect_circuits::build(name).expect("suite builds")))
        .collect();
    let corpus = repo_root().join("tests/data/corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .expect("corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "bench"))
        .collect();
    paths.sort();
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 stem")
            .to_string();
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let netlist = bench_format::parse(&name, &text).expect("corpus file parses");
        workloads.push(Workload::new(&name, netlist));
    }
    workloads
}

fn render_json(rows: &[Row], quick: bool, store_builds: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"circuit\": \"{}\", \"kernel\": \"{}\", \"threads\": {}, \
             \"faults\": {}, \"ns_per_fault\": {:.1}, \"total_ms\": {:.3}}}{comma}\n",
            r.circuit, r.kernel, r.threads, r.faults, r.ns_per_fault, r.total_ms
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"store_builds\": [\n");
    for (i, (circuit, ms)) in store_builds.iter().enumerate() {
        let comma = if i + 1 < store_builds.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"circuit\": \"{circuit}\", \"ms\": {ms:.3}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_main(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let iters = if quick { 1 } else { 5 };
    let out_path = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("BENCH_PR4.json"));
    let store = flag_value(args, "--cache-dir")
        .or_else(|| std::env::var("NDETECT_CACHE_DIR").ok())
        .filter(|d| !d.is_empty())
        .map(|dir| Store::open(&dir).expect("cache dir opens"));

    let workloads = snapshot_workloads();
    let mut rows = Vec::new();
    for w in &workloads {
        let faults = w.num_faults().max(1);
        for threads in [1usize, 4] {
            let secs = time_best(iters, || w.run_event(threads));
            rows.push(Row {
                circuit: w.name.clone(),
                kernel: "event_driven",
                threads,
                faults,
                ns_per_fault: secs * 1e9 / faults as f64,
                total_ms: secs * 1e3,
            });
        }
        let secs = time_best(iters, || w.run_full_cone());
        rows.push(Row {
            circuit: w.name.clone(),
            kernel: "full_cone",
            threads: 1,
            faults,
            ns_per_fault: secs * 1e9 / faults as f64,
            total_ms: secs * 1e3,
        });
        let event = rows
            .iter()
            .find(|r| r.circuit == w.name && r.kernel == "event_driven" && r.threads == 1)
            .expect("just pushed");
        eprintln!(
            "# {}: {} faults, event {:.1} ns/fault, full-cone {:.1} ns/fault ({:.2}x)",
            w.name,
            faults,
            event.ns_per_fault,
            secs * 1e9 / faults as f64,
            secs * 1e9 / faults as f64 / event.ns_per_fault
        );
    }

    // Store-backed universe builds (the cached fast path of the new
    // kernel): cold runs build + populate, warm runs must load.
    let mut store_builds = Vec::new();
    if let Some(store) = &store {
        for w in &workloads {
            let t0 = Instant::now();
            let universe = FaultUniverse::build_stored(
                &w.netlist,
                UniverseOptions::with_threads(1),
                Some(store),
            )
            .expect("suite circuits fit exhaustive sim");
            std::hint::black_box(universe.targets().len());
            store_builds.push((w.name.clone(), t0.elapsed().as_secs_f64() * 1e3));
        }
    }

    let json = render_json(&rows, quick, &store_builds);
    std::fs::write(&out_path, &json).expect("snapshot written");
    eprintln!("# wrote {}", out_path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        json_main(&args);
    } else {
        benches();
    }
}
