//! Criterion benchmarks for the worst-case (`nmin`) analysis pass —
//! the computation behind Tables 2 and 3.

use criterion::{criterion_group, criterion_main, Criterion};
use ndetect_core::WorstCaseAnalysis;
use ndetect_faults::FaultUniverse;

fn bench_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("worst_case");
    for name in ["dk16", "ex2", "keyb"] {
        let netlist = ndetect_circuits::build(name).expect("suite circuit builds");
        let universe = FaultUniverse::build(&netlist).expect("fits");
        group.bench_function(format!("nmin_all/{name}"), |b| {
            b.iter(|| WorstCaseAnalysis::compute(&universe));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_worst_case
}
criterion_main!(benches);
