//! Criterion benchmarks for the multi-threaded fault-simulation engine.
//!
//! Two layers are timed separately on the widest suite circuits:
//!
//! * `universe_build` — [`FaultUniverse::build_with`] at 1 vs 4 worker
//!   threads (fault-parallel tiling over the collapsed fault list);
//! * `block_parallel_stuck` — [`FaultSimulator::detection_set_stuck_threaded`]
//!   at 1 vs 4 workers (64-vector pattern blocks sharded per fault).
//!
//! Outputs are bit-identical across thread counts; only wall-clock
//! should differ. On a single-core host the threaded variants measure
//! pure scheduling overhead instead of speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use ndetect_faults::{all_stuck_at_faults, FaultSimulator, FaultUniverse, UniverseOptions};

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn bench_universe_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("universe_build");
    group.sample_size(3);
    for name in ["s1a", "rie"] {
        let netlist = ndetect_circuits::build(name).expect("suite circuit builds");
        for threads in THREAD_COUNTS {
            group.bench_function(format!("{name}/threads={threads}"), |b| {
                b.iter(|| {
                    FaultUniverse::build_with(
                        &netlist,
                        UniverseOptions {
                            threads,
                            ..UniverseOptions::default()
                        },
                    )
                    .expect("suite circuits fit exhaustive sim")
                });
            });
        }
    }
    group.finish();
}

fn bench_block_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_parallel_stuck");
    group.sample_size(3);
    // rie has the widest pattern space of the suite (2^14 vectors =
    // 256 blocks), the regime block sharding is built for.
    let netlist = ndetect_circuits::build("rie").expect("suite circuit builds");
    let sim = FaultSimulator::new(&netlist).expect("fits exhaustive sim");
    let faults = all_stuck_at_faults(&netlist);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("rie_first64/threads={threads}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &f in faults.iter().take(64) {
                    total += sim.detection_set_stuck_threaded(&netlist, f, threads).len();
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_universe_build, bench_block_parallel
}
criterion_main!(benches);
