//! Criterion micro-benchmark for the chunked SIMD row kernels of
//! `ndetect_sim::rows` — the word-level inner loops every fault-sim and
//! generation hot path runs on.
//!
//! Each op is measured at three lane widths (`L = 1` pure scalar,
//! `u64x4`, `u64x8` — the production [`ndetect_sim::rows::LANES`]) so
//! the snapshot records what the fixed-lane chunking actually buys on
//! this machine, and future `std::simd` ports have a trajectory to beat.
//!
//! Modes:
//!
//! * `cargo bench --bench rows` — criterion timings;
//! * `cargo bench --bench rows -- --json [--quick] [--out PATH]` —
//!   writes a `BENCH_PR6.json` snapshot (op, lanes, row words,
//!   GiB/s) at the repository root; the CI `bench-smoke` job runs the
//!   `--quick` variant.

use criterion::{criterion_group, Criterion};
use ndetect_sim::rows;
use std::path::PathBuf;
use std::time::Instant;

/// Words per benched row: 4096 blocks ≈ an 18-input exhaustive space —
/// large enough to stream, small enough to stay cache-resident like a
/// real tile.
const ROW_WORDS: usize = 4096;

/// Deterministic pseudo-random row content (the kernels are data
/// independent; this just defeats trivial constant folding).
fn pattern(n: usize, salt: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt).wrapping_add(i.rotate_left(13)))
        .collect()
}

/// The benched surface: every op runs one pass over `ROW_WORDS`-word
/// rows at lane width `L` and returns a fold the caller black-boxes.
struct Ops;

impl Ops {
    fn and_into<const L: usize>(dst: &mut [u64], src: &[u64]) -> u64 {
        rows::and_into_lanes::<L>(dst, src);
        dst[0]
    }

    fn and_popcount<const L: usize>(a: &[u64], b: &[u64]) -> u64 {
        rows::and_popcount_lanes::<L>(a, b)
    }

    fn popcount<const L: usize>(a: &[u64]) -> u64 {
        rows::popcount_lanes::<L>(a)
    }

    fn or_diff_into<const L: usize>(det: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        rows::or_diff_into_lanes::<L>(det, a, b)
    }

    fn select_into<const L: usize>(dst: &mut [u64], mask: &[u64], a: &[u64], b: &[u64]) -> u64 {
        rows::select_into_lanes::<L>(dst, mask, a, b);
        dst[0]
    }
}

/// Runs `op` at lane width `L` once over fresh-ish buffers; returns a
/// value to black-box.
fn run_op<const L: usize>(op: &str, a: &[u64], b: &[u64], scratch: &mut [u64]) -> u64 {
    match op {
        "and_into" => Ops::and_into::<L>(&mut scratch[..a.len()], a),
        "and_popcount" => Ops::and_popcount::<L>(a, b),
        "popcount" => Ops::popcount::<L>(a),
        "or_diff_into" => Ops::or_diff_into::<L>(&mut scratch[..a.len()], a, b),
        "select_into" => {
            let (dst, mask) = scratch.split_at_mut(a.len());
            Ops::select_into::<L>(dst, &mask[..a.len()], a, b)
        }
        _ => unreachable!("unknown op {op}"),
    }
}

const OPS: [&str; 5] = [
    "and_into",
    "and_popcount",
    "popcount",
    "or_diff_into",
    "select_into",
];

fn bench_chunked_ops(c: &mut Criterion) {
    let a = pattern(ROW_WORDS, 0xDEAD);
    let b = pattern(ROW_WORDS, 0xBEEF);
    let mut scratch = pattern(2 * ROW_WORDS, 0x1234);
    let mut group = c.benchmark_group("chunked_ops");
    for op in OPS {
        group.bench_function(format!("{op}/scalar"), |bch| {
            bch.iter(|| std::hint::black_box(run_op::<1>(op, &a, &b, &mut scratch)))
        });
        group.bench_function(format!("{op}/u64x4"), |bch| {
            bch.iter(|| std::hint::black_box(run_op::<4>(op, &a, &b, &mut scratch)))
        });
        group.bench_function(format!("{op}/u64x8"), |bch| {
            bch.iter(|| std::hint::black_box(run_op::<8>(op, &a, &b, &mut scratch)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_chunked_ops
}

/// One measured row of the snapshot.
struct Row {
    op: &'static str,
    lanes: usize,
    words: usize,
    ns_per_row: f64,
    gib_per_s: f64,
}

/// Minimum wall-clock over `iters` timed batches of `reps` calls.
fn time_best<F: FnMut() -> u64>(iters: usize, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn repo_root() -> PathBuf {
    // crates/bench -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn render_json(rows: &[Row], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"row_words\": {ROW_WORDS},\n"));
    out.push_str(&format!("  \"production_lanes\": {},\n", rows::LANES));
    out.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"lanes\": {}, \"words\": {}, \
             \"ns_per_row\": {:.1}, \"gib_per_s\": {:.2}}}{comma}\n",
            r.op, r.lanes, r.words, r.ns_per_row, r.gib_per_s
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Bytes one call of `op` streams (reads + writes), for bandwidth.
fn bytes_per_call(op: &str) -> usize {
    let row = ROW_WORDS * 8;
    match op {
        "and_into" => 3 * row,     // read dst + src, write dst
        "and_popcount" => 2 * row, // read a + b
        "popcount" => row,         // read a
        "or_diff_into" => 4 * row, // read det + a + b, write det
        "select_into" => 4 * row,  // read mask + a + b, write dst
        _ => unreachable!(),
    }
}

fn json_main(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let (iters, reps) = if quick { (2, 16) } else { (7, 256) };
    let out_path = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("BENCH_PR6.json"));

    let a = pattern(ROW_WORDS, 0xDEAD);
    let b = pattern(ROW_WORDS, 0xBEEF);
    let mut scratch = pattern(2 * ROW_WORDS, 0x1234);
    let mut out_rows = Vec::new();
    for op in OPS {
        for lanes in [1usize, 4, 8] {
            let secs = match lanes {
                1 => time_best(iters, reps, || run_op::<1>(op, &a, &b, &mut scratch)),
                4 => time_best(iters, reps, || run_op::<4>(op, &a, &b, &mut scratch)),
                _ => time_best(iters, reps, || run_op::<8>(op, &a, &b, &mut scratch)),
            };
            out_rows.push(Row {
                op,
                lanes,
                words: ROW_WORDS,
                ns_per_row: secs * 1e9,
                gib_per_s: bytes_per_call(op) as f64 / secs / (1u64 << 30) as f64,
            });
        }
        let base = out_rows[out_rows.len() - 3].ns_per_row;
        let x8 = out_rows[out_rows.len() - 1].ns_per_row;
        eprintln!(
            "# {op}: scalar {base:.0} ns/row, u64x8 {x8:.0} ns/row ({:.2}x)",
            base / x8
        );
    }

    let json = render_json(&out_rows, quick);
    std::fs::write(&out_path, &json).expect("snapshot written");
    eprintln!("# wrote {}", out_path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        json_main(&args);
    } else {
        benches();
    }
}
