//! Criterion benchmarks for the FSM-synthesis substrate: KISS2 round
//! trips, Quine–McCluskey minimization, and direct vs minimized
//! synthesis.

use criterion::{criterion_group, criterion_main, Criterion};
use ndetect_fsm::{
    parse_kiss2, qm, synthesize, write_kiss2, MinimizeMode, StateEncoding, SynthOptions,
};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");

    let fsm = ndetect_circuits::spec("dk16")
        .expect("dk16 in suite")
        .build_fsm();
    let text = write_kiss2(&fsm);
    group.bench_function("kiss2_parse/dk16", |b| {
        b.iter(|| parse_kiss2("dk16", &text).expect("round trip"));
    });

    let enc = StateEncoding::binary(fsm.num_states());
    for (label, mode) in [
        ("direct", MinimizeMode::Never),
        ("minimized", MinimizeMode::Always),
    ] {
        group.bench_function(format!("synthesize_{label}/dk16"), |b| {
            b.iter(|| synthesize(&fsm, &enc, SynthOptions { minimize: mode }));
        });
    }

    // Pure QM on a dense deterministic 8-variable function.
    let on: Vec<u32> = (0..256u32).filter(|m| (m * 37 + 11) % 5 < 2).collect();
    let dc: Vec<u32> = (0..256u32).filter(|m| (m * 37 + 11) % 5 == 2).collect();
    group.bench_function("qm_minimize/8var", |b| {
        b.iter(|| qm::minimize(8, &on, &dc));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_synthesis
}
criterion_main!(benches);
