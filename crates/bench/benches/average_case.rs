//! Criterion benchmarks for Procedure 1: Definition 1 vs Definition 2
//! construction cost — the efficiency side of the paper's Section-4
//! ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use ndetect_core::estimate_detection_probabilities;
use ndetect_core::{
    construct_test_set_series, DetectionDefinition, Procedure1Config, WorstCaseAnalysis,
};
use ndetect_faults::FaultUniverse;

fn bench_average_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("average_case");
    for name in ["bbara", "opus"] {
        let netlist = ndetect_circuits::build(name).expect("suite circuit builds");
        let universe = FaultUniverse::build(&netlist).expect("fits");

        for (label, definition) in [
            ("def1", DetectionDefinition::Standard),
            ("def2", DetectionDefinition::SufficientlyDifferent),
        ] {
            let config = Procedure1Config {
                nmax: 10,
                num_test_sets: 10,
                definition,
                ..Default::default()
            };
            group.bench_function(format!("procedure1_{label}/{name}"), |b| {
                b.iter(|| construct_test_set_series(&universe, &config));
            });
        }

        let wc = WorstCaseAnalysis::compute(&universe);
        let tracked = wc.tail_indices(11);
        if !tracked.is_empty() {
            let config = Procedure1Config {
                nmax: 10,
                num_test_sets: 50,
                threads: 1,
                ..Default::default()
            };
            group.bench_function(format!("estimate_k50/{name}"), |b| {
                b.iter(|| estimate_detection_probabilities(&universe, &tracked, &config));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_average_case
}
criterion_main!(benches);
