//! Criterion benchmark for the n-detection test-set generation engine
//! (`ndetect-gen`), plus a machine-readable perf-snapshot mode.
//!
//! The measured unit is the greedy set-cover construction (and its
//! compaction passes) over a prebuilt targets-only universe, so the
//! numbers isolate the generator from fault simulation.
//!
//! Modes:
//!
//! * `cargo bench --bench gen` — criterion timings of raw generation
//!   and generation+compaction at n = 5 on the widest suite circuits
//!   (`s1a`, `rie`);
//! * `cargo bench --bench gen -- --json [--quick] [--out PATH]
//!   [--cache-dir DIR]` — measures suite **and** corpus circuits at
//!   n ∈ {1, 5, 10} and writes a `BENCH_PR5.json` snapshot (set sizes
//!   vs the exhaustive baseline, wall-clock) at the repository root,
//!   adding generation to the perf trajectory. With a cache directory
//!   it also times `generate_stored` cold vs warm — a warm re-run must
//!   be a pure disk hit (asserted by the CI `bench-smoke` job).

use criterion::{criterion_group, Criterion};
use ndetect_faults::{FaultUniverse, UniverseOptions};
use ndetect_gen::{compact, generate, generate_stored, GenOptions};
use ndetect_netlist::{bench_format, Netlist};
use ndetect_store::Store;
use std::path::PathBuf;
use std::time::Instant;

/// One circuit's prebuilt generation workload.
struct Workload {
    name: String,
    universe: FaultUniverse,
}

impl Workload {
    fn new(name: &str, netlist: &Netlist) -> Self {
        let universe = FaultUniverse::build_with(
            netlist,
            UniverseOptions {
                include_bridges: false,
                threads: 1,
                ..UniverseOptions::default()
            },
        )
        .expect("fits exhaustive sim");
        Workload {
            name: name.to_string(),
            universe,
        }
    }
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen");
    group.sample_size(10);
    for name in ["s1a", "rie"] {
        let netlist = ndetect_circuits::build(name).expect("suite circuit builds");
        let w = Workload::new(name, &netlist);
        let raw = GenOptions {
            n: 5,
            threads: 1,
            ..GenOptions::default()
        };
        let compacted = GenOptions {
            compact: true,
            ..raw
        };
        group.bench_function(format!("{name}/generate_n5"), |b| {
            b.iter(|| generate(&w.universe, &raw).len())
        });
        group.bench_function(format!("{name}/generate_compact_n5"), |b| {
            b.iter(|| generate(&w.universe, &compacted).len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_generation
}

/// One measured row of the snapshot.
struct Row {
    circuit: String,
    n: u32,
    space: usize,
    raw_size: usize,
    compact_size: usize,
    gen_ms: f64,
    compact_ms: f64,
}

/// Minimum wall-clock over `iters` runs of `f`, in seconds.
fn time_best<F: FnMut() -> usize>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn repo_root() -> PathBuf {
    // crates/bench -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The snapshot workloads: the widest suite circuits plus every corpus
/// `.bench` file.
fn snapshot_workloads() -> Vec<Workload> {
    let mut workloads: Vec<Workload> = ["s1a", "rie"]
        .iter()
        .map(|name| {
            let netlist = ndetect_circuits::build(name).expect("suite builds");
            Workload::new(name, &netlist)
        })
        .collect();
    let corpus = repo_root().join("tests/data/corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .expect("corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "bench"))
        .collect();
    paths.sort();
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 stem")
            .to_string();
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let netlist = bench_format::parse(&name, &text).expect("corpus file parses");
        workloads.push(Workload::new(&name, &netlist));
    }
    workloads
}

fn render_json(rows: &[Row], quick: bool, store_gen: &[(String, f64, f64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"circuit\": \"{}\", \"n\": {}, \"space\": {}, \"raw_size\": {}, \
             \"compact_size\": {}, \"gen_ms\": {:.3}, \"compact_ms\": {:.3}}}{comma}\n",
            r.circuit, r.n, r.space, r.raw_size, r.compact_size, r.gen_ms, r.compact_ms
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"store_gen\": [\n");
    for (i, (circuit, cold_ms, warm_ms)) in store_gen.iter().enumerate() {
        let comma = if i + 1 < store_gen.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"circuit\": \"{circuit}\", \"cold_ms\": {cold_ms:.3}, \
             \"warm_ms\": {warm_ms:.3}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_main(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let iters = if quick { 1 } else { 5 };
    let out_path = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("BENCH_PR5.json"));
    let store = flag_value(args, "--cache-dir")
        .or_else(|| std::env::var("NDETECT_CACHE_DIR").ok())
        .filter(|d| !d.is_empty())
        .map(|dir| Store::open(&dir).expect("cache dir opens"));

    let workloads = snapshot_workloads();
    let mut rows = Vec::new();
    for w in &workloads {
        let space = w.universe.space().num_patterns();
        for n in [1u32, 5, 10] {
            let raw_options = GenOptions {
                n,
                threads: 1,
                ..GenOptions::default()
            };
            let raw = generate(&w.universe, &raw_options);
            let gen_secs = time_best(iters, || generate(&w.universe, &raw_options).len());
            let compact_secs = time_best(iters, || {
                let mut set = generate(&w.universe, &raw_options);
                compact(&mut set, &w.universe);
                set.len()
            });
            let mut compacted = raw.clone();
            compact(&mut compacted, &w.universe);
            rows.push(Row {
                circuit: w.name.clone(),
                n,
                space,
                raw_size: raw.len(),
                compact_size: compacted.len(),
                gen_ms: gen_secs * 1e3,
                compact_ms: compact_secs * 1e3,
            });
            eprintln!(
                "# {}: n={n} |T| {} -> {} compacted (|U| = {space}), {:.2} ms",
                w.name,
                raw.len(),
                compacted.len(),
                compact_secs * 1e3
            );
        }
    }

    // Store-backed generation (the cached fast path): the first call
    // generates and populates, the second must be a pure disk hit.
    let mut store_gen = Vec::new();
    if let Some(store) = &store {
        for w in &workloads {
            let options = GenOptions {
                n: 5,
                compact: true,
                threads: 1,
                ..GenOptions::default()
            };
            let t0 = Instant::now();
            let cold = generate_stored(&w.universe, &options, Some(store));
            let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            let warm = generate_stored(&w.universe, &options, Some(store));
            let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(cold, warm, "warm generation must be bit-identical");
            store_gen.push((w.name.clone(), cold_ms, warm_ms));
        }
    }

    let json = render_json(&rows, quick, &store_gen);
    std::fs::write(&out_path, &json).expect("snapshot written");
    eprintln!("# wrote {}", out_path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        json_main(&args);
    } else {
        benches();
    }
}
