//! Shared AND/OR/NOT two-level netlist emitter.
//!
//! Used by the FSM synthesizer ([`crate::synthesize`]) and the PLA
//! synthesizer ([`crate::pla`]): given one cube cover per output
//! function, emit a netlist with shared input inverters and shared
//! product terms (the classic PLA structure).

use crate::cube::Cube;
use crate::error::FsmError;
use ndetect_netlist::{GateKind, Netlist, NetlistBuilder, NodeId};
use std::collections::HashMap;

fn synth_err(e: ndetect_netlist::NetlistError) -> FsmError {
    FsmError::Synthesis {
        message: e.to_string(),
    }
}

/// Emits a two-level netlist.
///
/// * `input_names[i]` names input variable `i` (cube variable order);
/// * `covers[f]` is the cube cover of output `f`;
/// * `output_names[f]` names the output node (one output slot each).
///
/// Inverters are shared per variable (named `n_<input>`), identical
/// product terms are shared across outputs (named `t0`, `t1`, …), and
/// degenerate covers become constants or buffers.
///
/// # Errors
///
/// Returns [`FsmError::Synthesis`] on netlist-construction failures
/// (duplicate names in the caller-supplied lists) and
/// [`FsmError::Inconsistent`] if a cube's variable count differs from
/// the input count or the cover/output name lengths differ.
pub fn emit_two_level(
    circuit_name: &str,
    input_names: &[String],
    covers: &[Vec<Cube>],
    output_names: &[String],
) -> Result<Netlist, FsmError> {
    if covers.len() != output_names.len() {
        return Err(FsmError::Inconsistent {
            message: format!("{} covers for {} outputs", covers.len(), output_names.len()),
        });
    }
    for cover in covers {
        for cube in cover {
            if cube.num_vars() != input_names.len() {
                return Err(FsmError::Inconsistent {
                    message: format!(
                        "cube {cube} has {} variables, circuit has {} inputs",
                        cube.num_vars(),
                        input_names.len()
                    ),
                });
            }
        }
    }

    let mut b = NetlistBuilder::new(circuit_name);
    let inputs: Vec<NodeId> = input_names
        .iter()
        .map(|name| b.try_input(name.clone()))
        .collect::<Result<_, _>>()
        .map_err(synth_err)?;

    let mut inverters: HashMap<usize, NodeId> = HashMap::new();
    let mut terms: HashMap<Cube, NodeId> = HashMap::new();
    let mut const1: Option<NodeId> = None;

    let mut term_node = |b: &mut NetlistBuilder, cube: Cube| -> Result<NodeId, FsmError> {
        if let Some(&node) = terms.get(&cube) {
            return Ok(node);
        }
        let mut literals: Vec<NodeId> = Vec::new();
        for var in 0..cube.num_vars() {
            match cube.literal(var) {
                None => {}
                Some(true) => literals.push(inputs[var]),
                Some(false) => {
                    let inv = match inverters.get(&var) {
                        Some(&n) => n,
                        None => {
                            let name = format!("n_{}", input_names[var]);
                            let n = b.not(name, inputs[var]).map_err(synth_err)?;
                            inverters.insert(var, n);
                            n
                        }
                    };
                    literals.push(inv);
                }
            }
        }
        let node = match literals.len() {
            0 => match const1 {
                Some(n) => n,
                None => {
                    let name = b.fresh_name("one");
                    let n = b.gate(GateKind::Const1, name, &[]).map_err(synth_err)?;
                    const1 = Some(n);
                    n
                }
            },
            1 => literals[0],
            _ => {
                let name = b.fresh_name("t");
                b.and(name, &literals).map_err(synth_err)?
            }
        };
        terms.insert(cube, node);
        Ok(node)
    };

    for (cover, out_name) in covers.iter().zip(output_names) {
        let mut term_nodes = Vec::with_capacity(cover.len());
        for &cube in cover {
            term_nodes.push(term_node(&mut b, cube)?);
        }
        let out_node = match term_nodes.len() {
            0 => b
                .gate(GateKind::Const0, out_name.clone(), &[])
                .map_err(synth_err)?,
            1 => b.buf(out_name.clone(), term_nodes[0]).map_err(synth_err)?,
            _ => b.or(out_name.clone(), &term_nodes).map_err(synth_err)?,
        };
        b.output(out_node);
    }

    b.build().map_err(synth_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_shared_terms_and_inverters() {
        let cover_a = vec![Cube::parse("10").unwrap(), Cube::parse("01").unwrap()];
        let cover_b = vec![Cube::parse("10").unwrap()];
        let n = emit_two_level(
            "xorish",
            &["a".into(), "b".into()],
            &[cover_a, cover_b],
            &["y".into(), "z".into()],
        )
        .unwrap();
        // XOR truth table on output y; shared term on z.
        assert_eq!(n.eval_bool(&[false, false]), vec![false, false]);
        assert_eq!(n.eval_bool(&[false, true]), vec![true, false]);
        assert_eq!(n.eval_bool(&[true, false]), vec![true, true]);
        assert_eq!(n.eval_bool(&[true, true]), vec![false, false]);
        // Two terms, not three (the "10" term is shared).
        let and_count = n
            .node_ids()
            .filter(|&id| n.node(id).kind() == GateKind::And)
            .count();
        assert_eq!(and_count, 2);
    }

    #[test]
    fn degenerate_covers() {
        // Empty cover -> constant 0; universal cube -> constant 1.
        let n = emit_two_level(
            "consts",
            &["a".into()],
            &[vec![], vec![Cube::universe(1)]],
            &["zero".into(), "one".into()],
        )
        .unwrap();
        for v in [false, true] {
            assert_eq!(n.eval_bool(&[v]), vec![false, true]);
        }
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let err = emit_two_level("bad", &["a".into()], &[vec![]], &[]).unwrap_err();
        assert!(matches!(err, FsmError::Inconsistent { .. }));
        let err = emit_two_level(
            "bad2",
            &["a".into()],
            &[vec![Cube::parse("11").unwrap()]],
            &["y".into()],
        )
        .unwrap_err();
        assert!(matches!(err, FsmError::Inconsistent { .. }));
    }
}
