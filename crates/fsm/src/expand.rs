//! Heuristic two-level minimization in the espresso style:
//! **EXPAND** (greedily drop literals while staying inside the ON∪DC
//! set) followed by **IRREDUNDANT** (drop cubes whose ON-set
//! contribution is covered by the rest).
//!
//! Exact Quine–McCluskey ([`crate::qm`]) is used for small functions;
//! this module scales to the 11–16 variable next-state/output functions
//! of the larger benchmark machines, where exact prime generation is
//! intractable but don't-care-driven expansion is exactly what creates
//! the redundancy the n-detection analysis studies.

use crate::cube::Cube;
use ndetect_sim::{PatternSpace, VectorSet};

/// The 64-vector word of minterms covered by `cube` in `block`
/// (bit `b` set ⇔ the cube covers minterm `block*64 + b`).
fn cube_word(space: &PatternSpace, cube: &Cube, block: usize) -> u64 {
    let mut acc = space.block_mask(block);
    for var in 0..cube.num_vars() {
        match cube.literal(var) {
            None => {}
            Some(true) => acc &= space.input_word(var, block),
            Some(false) => acc &= !space.input_word(var, block),
        }
    }
    acc
}

/// Collects the minterm set of a cube as a [`VectorSet`].
fn cube_set(space: &PatternSpace, cube: &Cube) -> VectorSet {
    let mut set = VectorSet::new(space.num_patterns());
    for block in 0..space.num_blocks() {
        set.set_word(block, cube_word(space, cube, block));
    }
    set
}

/// Returns `true` if every minterm of `cube` lies inside `allow`.
fn cube_within(space: &PatternSpace, cube: &Cube, allow: &VectorSet) -> bool {
    for block in 0..space.num_blocks() {
        if cube_word(space, cube, block) & !allow.words()[block] != 0 {
            return false;
        }
    }
    true
}

/// Greedily removes literals from `cube` (ascending variable order,
/// repeated until a fixed point) while the cube stays inside `allow`.
fn expand_cube(space: &PatternSpace, mut cube: Cube, allow: &VectorSet) -> Cube {
    let num_vars = cube.num_vars();
    loop {
        let mut changed = false;
        for var in 0..num_vars {
            if cube.literal(var).is_none() {
                continue;
            }
            let bit = 1u32 << (num_vars - 1 - var);
            let candidate = Cube::from_masks(num_vars, cube.care() & !bit, cube.value() & !bit);
            if cube_within(space, &candidate, allow) {
                cube = candidate;
                changed = true;
            }
        }
        if !changed {
            return cube;
        }
    }
}

/// Espresso-style heuristic cover: expands every seed cube against
/// `allow = ON ∪ DC`, deduplicates, removes cubes covered by larger
/// ones, then drops cubes whose ON-set minterms are covered by the
/// remaining cubes.
///
/// The result covers every ON minterm, covers no OFF minterm, and is
/// deterministic. Seeds must already lie inside `allow`.
///
/// ```
/// use ndetect_fsm::expand_cover;
/// use ndetect_fsm::Cube;
/// use ndetect_sim::{PatternSpace, VectorSet};
///
/// let space = PatternSpace::new(2).unwrap();
/// // f = a·b with b don't-care when a = 1: expands to just "1-".
/// let on = VectorSet::from_vectors(4, [3]);
/// let allow = VectorSet::from_vectors(4, [2, 3]);
/// let cover = expand_cover(&space, &[Cube::parse("11").unwrap()], &on, &allow);
/// assert_eq!(cover, vec![Cube::parse("1-").unwrap()]);
/// ```
///
/// # Panics
///
/// Panics if a seed cube covers a minterm outside `allow` (the caller
/// built an inconsistent specification).
#[must_use]
pub fn expand_cover(
    space: &PatternSpace,
    seeds: &[Cube],
    on: &VectorSet,
    allow: &VectorSet,
) -> Vec<Cube> {
    // EXPAND.
    let mut expanded: Vec<Cube> = seeds
        .iter()
        .map(|&c| {
            assert!(
                cube_within(space, &c, allow),
                "seed cube {c} leaves the ON∪DC set"
            );
            expand_cube(space, c, allow)
        })
        .collect();
    expanded.sort_unstable();
    expanded.dedup();

    // Drop cubes covered by another single cube (cheap containment).
    let mut kept: Vec<Cube> = Vec::with_capacity(expanded.len());
    for (i, &c) in expanded.iter().enumerate() {
        let covered = expanded
            .iter()
            .enumerate()
            .any(|(j, d)| j != i && *d != c && d.covers(&c));
        if !covered {
            kept.push(c);
        }
    }

    // IRREDUNDANT: greedily drop cubes whose ON contribution is covered
    // by the union of the others (scan in reverse size order so large
    // cubes are preferred).
    let sets: Vec<VectorSet> = kept.iter().map(|c| cube_set(space, c)).collect();
    let mut alive = vec![true; kept.len()];
    let mut order: Vec<usize> = (0..kept.len()).collect();
    order.sort_unstable_by_key(|&i| sets[i].len()); // try to drop small cubes first
    for &i in &order {
        // union of other alive cubes
        let mut union = VectorSet::new(space.num_patterns());
        for (j, s) in sets.iter().enumerate() {
            if j != i && alive[j] {
                union.union_with(s);
            }
        }
        // on-minterms of cube i must all be covered by the union.
        let mut redundant = true;
        for block in 0..space.num_blocks() {
            let on_i = sets[i].words()[block] & on.words()[block];
            if on_i & !union.words()[block] != 0 {
                redundant = false;
                break;
            }
        }
        if redundant {
            alive[i] = false;
        }
    }
    let result: Vec<Cube> = kept
        .into_iter()
        .zip(alive)
        .filter(|(_, a)| *a)
        .map(|(c, _)| c)
        .collect();

    debug_assert!(verify_cover(space, &result, on, allow));
    result
}

/// Verifies a cover: every ON minterm covered, no minterm outside
/// ON∪DC covered.
#[must_use]
pub fn verify_cover(
    space: &PatternSpace,
    cover: &[Cube],
    on: &VectorSet,
    allow: &VectorSet,
) -> bool {
    let mut union = VectorSet::new(space.num_patterns());
    for c in cover {
        union.union_with(&cube_set(space, c));
    }
    for block in 0..space.num_blocks() {
        let u = union.words()[block];
        if on.words()[block] & !u != 0 {
            return false; // uncovered ON minterm
        }
        if u & !allow.words()[block] != 0 {
            return false; // covered OFF minterm
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minterms(space: &PatternSpace, cover: &[Cube]) -> Vec<usize> {
        let mut set = VectorSet::new(space.num_patterns());
        for c in cover {
            set.union_with(&cube_set(space, c));
        }
        set.to_vec()
    }

    #[test]
    fn expands_into_dont_cares() {
        let space = PatternSpace::new(3).unwrap();
        // ON = {111}, DC = {110, 101, 100}: "1--" is reachable.
        let on = VectorSet::from_vectors(8, [7]);
        let allow = VectorSet::from_vectors(8, [4, 5, 6, 7]);
        let cover = expand_cover(&space, &[Cube::parse("111").unwrap()], &on, &allow);
        assert_eq!(cover, vec![Cube::parse("1--").unwrap()]);
    }

    #[test]
    fn no_off_minterms_ever_covered() {
        let space = PatternSpace::new(4).unwrap();
        let on = VectorSet::from_vectors(16, [1, 3, 5, 7, 15]);
        let allow = VectorSet::from_vectors(16, [1, 3, 5, 7, 9, 15]);
        let seeds: Vec<Cube> = [1u32, 3, 5, 7, 15]
            .iter()
            .map(|&m| Cube::minterm(4, m))
            .collect();
        let cover = expand_cover(&space, &seeds, &on, &allow);
        assert!(verify_cover(&space, &cover, &on, &allow));
        for m in minterms(&space, &cover) {
            assert!(allow.contains(m), "minterm {m} outside ON∪DC");
        }
        for v in on.to_vec() {
            assert!(minterms(&space, &cover).contains(&v));
        }
    }

    #[test]
    fn irredundant_removes_subsumed_work() {
        let space = PatternSpace::new(2).unwrap();
        // ON = all four minterms; four minterm seeds expand to "--".
        let on = VectorSet::from_vectors(4, [0, 1, 2, 3]);
        let allow = on.clone();
        let seeds: Vec<Cube> = (0..4).map(|m| Cube::minterm(2, m)).collect();
        let cover = expand_cover(&space, &seeds, &on, &allow);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].num_literals(), 0);
    }

    #[test]
    fn agrees_with_qm_on_small_random_functions() {
        // Same coverage semantics as exact QM (not necessarily the same
        // cube count, but both must implement the function exactly).
        let mut seed = 0xBEEF_u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for num_vars in 3..=5usize {
            let space = PatternSpace::new(num_vars).unwrap();
            for _ in 0..6 {
                let mut on_v = Vec::new();
                let mut dc_v = Vec::new();
                for m in 0..(1u32 << num_vars) {
                    match next() % 4 {
                        0 => on_v.push(m),
                        1 => dc_v.push(m),
                        _ => {}
                    }
                }
                if on_v.is_empty() {
                    continue;
                }
                let on =
                    VectorSet::from_vectors(space.num_patterns(), on_v.iter().map(|&m| m as usize));
                let mut allow = on.clone();
                allow.union_with(&VectorSet::from_vectors(
                    space.num_patterns(),
                    dc_v.iter().map(|&m| m as usize),
                ));
                let seeds: Vec<Cube> = on_v.iter().map(|&m| Cube::minterm(num_vars, m)).collect();
                let cover = expand_cover(&space, &seeds, &on, &allow);
                assert!(verify_cover(&space, &cover, &on, &allow));
                let qm_cover = crate::qm::minimize(num_vars, &on_v, &dc_v);
                // Both covers agree outside the DC set.
                for m in 0..(1u32 << num_vars) {
                    if dc_v.contains(&m) {
                        continue;
                    }
                    let h = cover.iter().any(|c| c.matches(m));
                    let q = qm_cover.iter().any(|c| c.matches(m));
                    assert_eq!(h, q, "vars={num_vars} m={m}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "leaves the ON∪DC set")]
    fn rejects_inconsistent_seeds() {
        let space = PatternSpace::new(2).unwrap();
        let on = VectorSet::from_vectors(4, [0]);
        let _ = expand_cover(&space, &[Cube::parse("11").unwrap()], &on.clone(), &on);
    }
}
