//! Error type for FSM parsing and synthesis.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing KISS2 text or synthesizing an FSM.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsmError {
    /// A KISS2 line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A declared count (`.i`, `.o`, `.s`, `.p`) disagrees with the body.
    Inconsistent {
        /// Description of the mismatch.
        message: String,
    },
    /// The FSM has no transitions.
    Empty,
    /// Synthesis produced a netlist that failed validation (internal
    /// error; indicates a bug).
    Synthesis {
        /// The underlying netlist error, as text.
        message: String,
    },
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::Parse { line, message } => {
                write!(f, "kiss2 parse error at line {line}: {message}")
            }
            FsmError::Inconsistent { message } => {
                write!(f, "inconsistent kiss2 declaration: {message}")
            }
            FsmError::Empty => write!(f, "state machine has no transitions"),
            FsmError::Synthesis { message } => write!(f, "synthesis failed: {message}"),
        }
    }
}

impl Error for FsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = FsmError::Parse {
            line: 7,
            message: "bad cube".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(FsmError::Empty.to_string().contains("no transitions"));
    }
}
