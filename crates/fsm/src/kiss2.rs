//! KISS2 state-transition-table parsing and writing.
//!
//! The KISS2 format (as used by the MCNC/LGSynth benchmark suites):
//!
//! ```text
//! .i 2          # number of inputs
//! .o 1          # number of outputs
//! .s 4          # number of states (optional; inferred)
//! .p 14         # number of rows   (optional; checked)
//! .r st0        # reset state      (optional; defaults to first seen)
//! 0- st0 st1 0  # input-cube  present  next  output-bits
//! ...
//! .e
//! ```

use crate::cube::Cube;
use crate::error::FsmError;
use crate::fsm::{Fsm, OutputBit, Transition};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses KISS2 source text.
///
/// States are registered in order of first appearance. `.s` and `.p`
/// declarations, when present, are validated against the body.
///
/// # Errors
///
/// Returns [`FsmError::Parse`] for malformed lines,
/// [`FsmError::Inconsistent`] for declaration mismatches, and
/// [`FsmError::Empty`] if no rows are present.
pub fn parse_kiss2(name: &str, source: &str) -> Result<Fsm, FsmError> {
    let mut num_inputs: Option<usize> = None;
    let mut num_outputs: Option<usize> = None;
    let mut declared_states: Option<usize> = None;
    let mut declared_rows: Option<usize> = None;
    let mut reset_name: Option<String> = None;

    let mut states: Vec<String> = Vec::new();
    let mut state_index: HashMap<String, usize> = HashMap::new();
    let mut transitions: Vec<Transition> = Vec::new();

    let intern =
        |states: &mut Vec<String>, state_index: &mut HashMap<String, usize>, s: &str| -> usize {
            if let Some(&i) = state_index.get(s) {
                i
            } else {
                let i = states.len();
                states.push(s.to_string());
                state_index.insert(s.to_string(), i);
                i
            }
        };

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let first = tokens.next().expect("non-empty line has a token");

        let parse_count = |tok: Option<&str>, what: &str| -> Result<usize, FsmError> {
            tok.and_then(|t| t.parse().ok()).ok_or(FsmError::Parse {
                line: lineno,
                message: format!("expected a count after {what}"),
            })
        };

        match first {
            ".i" => num_inputs = Some(parse_count(tokens.next(), ".i")?),
            ".o" => num_outputs = Some(parse_count(tokens.next(), ".o")?),
            ".s" => declared_states = Some(parse_count(tokens.next(), ".s")?),
            ".p" => declared_rows = Some(parse_count(tokens.next(), ".p")?),
            ".r" => {
                reset_name = Some(
                    tokens
                        .next()
                        .ok_or(FsmError::Parse {
                            line: lineno,
                            message: "expected a state name after .r".into(),
                        })?
                        .to_string(),
                );
            }
            ".e" | ".end" => break,
            ".ilb" | ".ob" | ".latch" | ".type" => { /* informational; ignored */ }
            _ => {
                // A transition row: cube present next outputs.
                let cube_text = first;
                let present = tokens.next().ok_or(FsmError::Parse {
                    line: lineno,
                    message: "missing present-state".into(),
                })?;
                let next = tokens.next().ok_or(FsmError::Parse {
                    line: lineno,
                    message: "missing next-state".into(),
                })?;
                let out_text = tokens.next().ok_or(FsmError::Parse {
                    line: lineno,
                    message: "missing output bits".into(),
                })?;
                if tokens.next().is_some() {
                    return Err(FsmError::Parse {
                        line: lineno,
                        message: "trailing tokens after output bits".into(),
                    });
                }
                let input = Cube::parse(cube_text).ok_or(FsmError::Parse {
                    line: lineno,
                    message: format!("bad input cube `{cube_text}`"),
                })?;
                if let Some(ni) = num_inputs {
                    if input.num_vars() != ni {
                        return Err(FsmError::Parse {
                            line: lineno,
                            message: format!(
                                "input cube has {} bits, .i declared {ni}",
                                input.num_vars()
                            ),
                        });
                    }
                } else {
                    num_inputs = Some(input.num_vars());
                }
                let outputs: Vec<OutputBit> = out_text
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(OutputBit::Zero),
                        '1' => Ok(OutputBit::One),
                        '-' | '~' | '2' => Ok(OutputBit::DontCare),
                        _ => Err(FsmError::Parse {
                            line: lineno,
                            message: format!("bad output bit `{c}`"),
                        }),
                    })
                    .collect::<Result<_, _>>()?;
                if let Some(no) = num_outputs {
                    if outputs.len() != no {
                        return Err(FsmError::Parse {
                            line: lineno,
                            message: format!(
                                "row has {} output bits, .o declared {no}",
                                outputs.len()
                            ),
                        });
                    }
                } else {
                    num_outputs = Some(outputs.len());
                }
                let from = intern(&mut states, &mut state_index, present);
                let to = intern(&mut states, &mut state_index, next);
                transitions.push(Transition {
                    input,
                    from,
                    to,
                    outputs,
                });
            }
        }
    }

    if transitions.is_empty() {
        return Err(FsmError::Empty);
    }
    if let Some(s) = declared_states {
        if s != states.len() {
            return Err(FsmError::Inconsistent {
                message: format!(".s declared {s} states, body uses {}", states.len()),
            });
        }
    }
    if let Some(p) = declared_rows {
        if p != transitions.len() {
            return Err(FsmError::Inconsistent {
                message: format!(".p declared {p} rows, body has {}", transitions.len()),
            });
        }
    }
    let reset = match reset_name {
        Some(r) => *state_index.get(&r).ok_or(FsmError::Inconsistent {
            message: format!("reset state `{r}` never appears in the body"),
        })?,
        None => 0,
    };

    Ok(Fsm::new(
        name,
        num_inputs.unwrap_or(0),
        num_outputs.unwrap_or(0),
        states,
        reset,
        transitions,
    ))
}

/// Serializes an FSM back to KISS2 text (round-trips through
/// [`parse_kiss2`]).
#[must_use]
pub fn write_kiss2(fsm: &Fsm) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", fsm.name());
    let _ = writeln!(out, ".i {}", fsm.num_inputs());
    let _ = writeln!(out, ".o {}", fsm.num_outputs());
    let _ = writeln!(out, ".p {}", fsm.transitions().len());
    let _ = writeln!(out, ".s {}", fsm.num_states());
    let _ = writeln!(out, ".r {}", fsm.states()[fsm.reset_state()]);
    for t in fsm.transitions() {
        let outputs: String = t.outputs.iter().map(ToString::to_string).collect();
        let _ = writeln!(
            out,
            "{} {} {} {}",
            t.input,
            fsm.states()[t.from],
            fsm.states()[t.to],
            outputs
        );
    }
    let _ = writeln!(out, ".e");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LION_LIKE: &str = "
.i 2
.o 1
.s 4
.p 11
.r st0
-0 st0 st0 0
11 st0 st0 0
01 st0 st1 0
-1 st1 st1 1
00 st1 st0 1
10 st1 st2 1
1- st2 st2 1
00 st2 st1 1
01 st2 st3 1
0- st3 st3 1
11 st3 st2 1
.e
";

    #[test]
    fn parses_counts_and_states() {
        let f = parse_kiss2("lionish", LION_LIKE).unwrap();
        assert_eq!(f.num_inputs(), 2);
        assert_eq!(f.num_outputs(), 1);
        assert_eq!(f.num_states(), 4);
        assert_eq!(f.transitions().len(), 11);
        assert_eq!(f.reset_state(), 0);
        assert_eq!(f.states()[3], "st3");
    }

    #[test]
    fn round_trips_through_writer() {
        let f = parse_kiss2("lionish", LION_LIKE).unwrap();
        let text = write_kiss2(&f);
        let f2 = parse_kiss2("lionish", &text).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn rejects_declaration_mismatches() {
        let bad = ".i 2\n.o 1\n.s 9\n-0 a a 0\n.e\n";
        assert!(matches!(
            parse_kiss2("bad", bad),
            Err(FsmError::Inconsistent { .. })
        ));
        let bad = ".i 3\n.o 1\n-0 a a 0\n.e\n";
        assert!(matches!(
            parse_kiss2("bad", bad),
            Err(FsmError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_unknown_reset_state() {
        let bad = ".i 1\n.o 1\n.r ghost\n0 a a 0\n.e\n";
        assert!(matches!(
            parse_kiss2("bad", bad),
            Err(FsmError::Inconsistent { .. })
        ));
    }

    #[test]
    fn rejects_empty_machines() {
        assert!(matches!(
            parse_kiss2("e", ".i 1\n.o 1\n.e\n"),
            Err(FsmError::Empty)
        ));
    }

    #[test]
    fn output_dont_cares_accepted() {
        let src = ".i 1\n.o 2\n0 a b 1-\n1 b a -0\n.e\n";
        let f = parse_kiss2("dc", src).unwrap();
        assert_eq!(f.transitions()[0].outputs[1], OutputBit::DontCare);
    }

    #[test]
    fn comments_and_headers_ignored() {
        let src = "# header\n.i 1\n.o 1\n.ilb x\n.ob z\n0 a a 0 # row comment\n1 a a 1\n.e\n";
        let f = parse_kiss2("c", src).unwrap();
        assert_eq!(f.transitions().len(), 2);
    }
}
