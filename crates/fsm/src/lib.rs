//! Finite-state-machine substrate: KISS2 parsing, state encoding,
//! two-level minimization, and synthesis to combinational gate-level logic.
//!
//! The benchmark circuits of Pomeranz & Reddy (DATE 2005) are "the
//! combinational logic of MCNC finite-state machine benchmarks". This
//! crate rebuilds that flow from scratch:
//!
//! 1. parse a state-transition table in **KISS2** format ([`parse_kiss2`]);
//! 2. assign binary codes to the symbolic states ([`StateEncoding`]);
//! 3. extract the two-level next-state/output logic, optionally minimized
//!    with **Quine–McCluskey** + greedy covering ([`qm`]);
//! 4. synthesize an AND/OR/NOT netlist whose inputs are the primary
//!    inputs plus the present-state bits, and whose outputs are the
//!    primary outputs plus the next-state bits ([`synthesize`]).
//!
//! A seeded random-FSM generator ([`random_fsm`]) provides stand-ins for
//! benchmark machines whose exact state tables are not publicly
//! available (see `DESIGN.md` for the substitution rationale).
//!
//! # Example
//!
//! ```
//! use ndetect_fsm::{parse_kiss2, StateEncoding, synthesize, SynthOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//! .i 1
//! .o 1
//! .s 2
//! .p 4
//! .r off
//! 0 off off 0
//! 1 off on  1
//! 0 on  on  1
//! 1 on  off 0
//! .e
//! ";
//! let fsm = parse_kiss2("toggle", src)?;
//! let enc = StateEncoding::binary(fsm.num_states());
//! let netlist = synthesize(&fsm, &enc, SynthOptions::default())?;
//! // 1 PI + 1 state bit in; 1 PO + 1 next-state bit out.
//! assert_eq!(netlist.num_inputs(), 2);
//! assert_eq!(netlist.num_outputs(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod encoding;
mod error;
pub mod expand;
mod fsm;
mod kiss2;
pub mod pla;
pub mod qm;
mod random;
mod synth;
pub mod two_level;

pub use cube::Cube;
pub use encoding::StateEncoding;
pub use error::FsmError;
pub use expand::{expand_cover, verify_cover};
pub use fsm::{Fsm, OutputBit, Transition};
pub use kiss2::{parse_kiss2, write_kiss2};
pub use pla::{parse_pla, write_pla, Pla, PlaRow};
pub use random::{random_fsm, RandomFsmConfig};
pub use synth::{synthesize, MinimizeMode, SynthOptions};
pub use two_level::emit_two_level;
