//! Seeded pseudo-random FSM generation.
//!
//! Benchmark stand-ins: when a paper circuit's exact state table is not
//! publicly available, the suite substitutes a random machine with the
//! same signature (inputs, outputs, states). Generation is fully
//! deterministic given the seed, so every experiment is reproducible
//! bit-for-bit.

use crate::cube::Cube;
use crate::fsm::{Fsm, OutputBit, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_fsm`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomFsmConfig {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of states.
    pub num_states: usize,
    /// RNG seed; same seed ⇒ same machine.
    pub seed: u64,
    /// Minimum input-cube rows per state (≥ 1).
    pub min_rows_per_state: usize,
    /// Maximum input-cube rows per state (before dropping).
    pub max_rows_per_state: usize,
    /// Probability of dropping a generated row, leaving that part of the
    /// input space unspecified (don't-care freedom during minimization —
    /// the source of redundancy that makes untargeted faults hard to
    /// detect).
    pub unspecified_prob: f64,
    /// Probability of an output bit being `-` instead of 0/1.
    pub output_dc_prob: f64,
}

impl Default for RandomFsmConfig {
    fn default() -> Self {
        RandomFsmConfig {
            num_inputs: 2,
            num_outputs: 2,
            num_states: 4,
            seed: 0,
            min_rows_per_state: 2,
            max_rows_per_state: 6,
            unspecified_prob: 0.10,
            output_dc_prob: 0.05,
        }
    }
}

/// Generates a deterministic pseudo-random FSM.
///
/// For each state the input space is recursively split into disjoint
/// cubes (so rows never conflict), each given a random next state and
/// random outputs; a fraction of rows is dropped to leave unspecified
/// entries.
///
/// ```
/// use ndetect_fsm::{random_fsm, RandomFsmConfig};
/// let cfg = RandomFsmConfig { num_inputs: 3, num_states: 5, seed: 42, ..Default::default() };
/// let a = random_fsm("demo", &cfg);
/// let b = random_fsm("demo", &cfg);
/// assert_eq!(a, b); // fully reproducible
/// assert_eq!(a.num_states(), 5);
/// assert_eq!(a.check_deterministic(), None); // disjoint rows
/// ```
///
/// # Panics
///
/// Panics if `num_states == 0`, `num_inputs > 20`, or
/// `min_rows_per_state == 0`.
#[must_use]
pub fn random_fsm(name: &str, config: &RandomFsmConfig) -> Fsm {
    assert!(config.num_states > 0, "need at least one state");
    assert!(config.num_inputs <= 20, "input count out of range");
    assert!(config.min_rows_per_state >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6e64_6574_6563_7421);

    let states: Vec<String> = (0..config.num_states).map(|i| format!("st{i}")).collect();
    let mut transitions: Vec<Transition> = Vec::new();

    for from in 0..config.num_states {
        let target_rows = rng.gen_range(
            config.min_rows_per_state..=config.max_rows_per_state.max(config.min_rows_per_state),
        );
        let cubes = split_input_space(config.num_inputs, target_rows, &mut rng);
        for cube in cubes {
            if transitions.len() > config.num_states && rng.gen_bool(config.unspecified_prob) {
                continue; // leave unspecified
            }
            let to = rng.gen_range(0..config.num_states);
            let outputs: Vec<OutputBit> = (0..config.num_outputs)
                .map(|_| {
                    if rng.gen_bool(config.output_dc_prob) {
                        OutputBit::DontCare
                    } else if rng.gen_bool(0.5) {
                        OutputBit::One
                    } else {
                        OutputBit::Zero
                    }
                })
                .collect();
            transitions.push(Transition {
                input: cube,
                from,
                to,
                outputs,
            });
        }
    }

    // Guarantee non-emptiness even under aggressive dropping.
    if transitions.is_empty() {
        transitions.push(Transition {
            input: Cube::universe(config.num_inputs),
            from: 0,
            to: 0,
            outputs: vec![OutputBit::Zero; config.num_outputs],
        });
    }

    Fsm::new(
        name,
        config.num_inputs,
        config.num_outputs,
        states,
        0,
        transitions,
    )
}

/// Splits the full input space into roughly `target` disjoint cubes by
/// repeatedly bisecting a random cube on a random free variable.
fn split_input_space(num_inputs: usize, target: usize, rng: &mut StdRng) -> Vec<Cube> {
    let mut cubes = vec![Cube::universe(num_inputs)];
    let max_cubes = target.min(1 << num_inputs.min(20));
    while cubes.len() < max_cubes {
        // Pick a splittable cube (one with a free variable).
        let splittable: Vec<usize> = cubes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.num_literals() < num_inputs)
            .map(|(i, _)| i)
            .collect();
        let Some(&pick) = splittable.get(rng.gen_range(0..splittable.len().max(1))) else {
            break;
        };
        let cube = cubes.swap_remove(pick);
        let free_vars: Vec<usize> = (0..num_inputs)
            .filter(|&v| cube.literal(v).is_none())
            .collect();
        let var = free_vars[rng.gen_range(0..free_vars.len())];
        let bit = 1u32 << (num_inputs - 1 - var);
        cubes.push(Cube::from_masks(
            num_inputs,
            cube.care() | bit,
            cube.value(),
        ));
        cubes.push(Cube::from_masks(
            num_inputs,
            cube.care() | bit,
            cube.value() | bit,
        ));
    }
    cubes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomFsmConfig {
            num_inputs: 4,
            num_outputs: 3,
            num_states: 7,
            seed: 99,
            ..Default::default()
        };
        assert_eq!(random_fsm("x", &cfg), random_fsm("x", &cfg));
        let other = RandomFsmConfig { seed: 100, ..cfg };
        assert_ne!(random_fsm("x", &cfg), random_fsm("x", &other));
    }

    #[test]
    fn rows_are_disjoint_per_state() {
        for seed in 0..20 {
            let cfg = RandomFsmConfig {
                num_inputs: 3,
                num_outputs: 2,
                num_states: 5,
                seed,
                ..Default::default()
            };
            let fsm = random_fsm("d", &cfg);
            assert_eq!(fsm.check_deterministic(), None, "seed {seed}");
        }
    }

    #[test]
    fn split_covers_space_disjointly() {
        let mut rng = StdRng::seed_from_u64(7);
        for target in [1usize, 2, 3, 5, 8] {
            let cubes = split_input_space(4, target, &mut rng);
            // Every minterm covered exactly once.
            for m in 0..16u32 {
                let count = cubes.iter().filter(|c| c.matches(m)).count();
                assert_eq!(count, 1, "minterm {m} target {target}");
            }
        }
    }

    #[test]
    fn respects_signature() {
        let cfg = RandomFsmConfig {
            num_inputs: 5,
            num_outputs: 4,
            num_states: 11,
            seed: 3,
            ..Default::default()
        };
        let fsm = random_fsm("sig", &cfg);
        assert_eq!(fsm.num_inputs(), 5);
        assert_eq!(fsm.num_outputs(), 4);
        assert_eq!(fsm.num_states(), 11);
        assert!(!fsm.transitions().is_empty());
    }

    #[test]
    fn unspecified_fraction_leaves_holes() {
        let cfg = RandomFsmConfig {
            num_inputs: 3,
            num_outputs: 1,
            num_states: 8,
            seed: 5,
            unspecified_prob: 0.5,
            ..Default::default()
        };
        let fsm = random_fsm("holes", &cfg);
        assert!(fsm.specification_coverage() < 1.0);
    }
}
