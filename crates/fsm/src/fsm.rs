//! The symbolic state-transition-graph representation.

use crate::cube::Cube;
use std::fmt;

/// One output bit of a transition row: 0, 1, or unspecified (`-`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OutputBit {
    /// Drives 0.
    Zero,
    /// Drives 1.
    One,
    /// Don't care (minimization freedom; synthesized as 0 in direct mode).
    DontCare,
}

impl OutputBit {
    /// The concrete value used when no minimization freedom is exploited.
    #[must_use]
    pub fn as_bool_default_zero(self) -> bool {
        self == OutputBit::One
    }
}

impl fmt::Display for OutputBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OutputBit::Zero => "0",
            OutputBit::One => "1",
            OutputBit::DontCare => "-",
        })
    }
}

/// One row of a KISS2 table: an input cube, a present state, a next
/// state, and output bits.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transition {
    /// The input condition (cube over the primary inputs).
    pub input: Cube,
    /// Present-state index (into [`Fsm::states`]).
    pub from: usize,
    /// Next-state index.
    pub to: usize,
    /// Output bits, one per primary output.
    pub outputs: Vec<OutputBit>,
}

/// A finite-state machine as a symbolic state-transition table.
///
/// Rows use first-match-wins semantics when cubes overlap (KISS2 tables
/// from well-formed benchmarks are deterministic, i.e. overlapping rows
/// agree; [`Fsm::check_deterministic`] verifies this).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fsm {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    states: Vec<String>,
    reset_state: usize,
    transitions: Vec<Transition>,
}

impl Fsm {
    /// Assembles an FSM from parts (used by the parser and the random
    /// generator).
    ///
    /// # Panics
    ///
    /// Panics if a transition references an out-of-range state, has the
    /// wrong output arity, or an input cube over the wrong variable count.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        states: Vec<String>,
        reset_state: usize,
        transitions: Vec<Transition>,
    ) -> Self {
        assert!(reset_state < states.len(), "reset state out of range");
        for t in &transitions {
            assert!(t.from < states.len() && t.to < states.len());
            assert_eq!(t.outputs.len(), num_outputs);
            assert_eq!(t.input.num_vars(), num_inputs);
        }
        Fsm {
            name: name.into(),
            num_inputs,
            num_outputs,
            states,
            reset_state,
            transitions,
        }
    }

    /// The machine's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of symbolic states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// State names, in declaration order.
    #[must_use]
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// Index of the reset state.
    #[must_use]
    pub fn reset_state(&self) -> usize {
        self.reset_state
    }

    /// The transition rows, in table order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Looks up a state index by name.
    #[must_use]
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.states.iter().position(|s| s == name)
    }

    /// Resolves the behaviour on a concrete `(input minterm, state)` pair:
    /// the first matching row, if any.
    #[must_use]
    pub fn lookup(&self, input_minterm: u32, state: usize) -> Option<&Transition> {
        self.transitions
            .iter()
            .find(|t| t.from == state && t.input.matches(input_minterm))
    }

    /// Checks that overlapping rows never disagree: for every state and
    /// input minterm, all matching rows have the same next state and
    /// compatible outputs. Returns the first conflict as
    /// `(state, minterm)`.
    #[must_use]
    pub fn check_deterministic(&self) -> Option<(usize, u32)> {
        for state in 0..self.states.len() {
            let rows: Vec<&Transition> = self
                .transitions
                .iter()
                .filter(|t| t.from == state)
                .collect();
            for (i, a) in rows.iter().enumerate() {
                for b in &rows[i + 1..] {
                    if !a.input.intersects(&b.input) {
                        continue;
                    }
                    let conflicting_outputs = a.outputs.iter().zip(&b.outputs).any(|(x, y)| {
                        matches!(
                            (x, y),
                            (OutputBit::Zero, OutputBit::One) | (OutputBit::One, OutputBit::Zero)
                        )
                    });
                    if a.to != b.to || conflicting_outputs {
                        // Find a witness minterm in the overlap.
                        let witness = a
                            .input
                            .minterms()
                            .into_iter()
                            .find(|&m| b.input.matches(m))
                            .unwrap_or(0);
                        return Some((state, witness));
                    }
                }
            }
        }
        None
    }

    /// Fraction of `(state, input minterm)` pairs covered by some row.
    #[must_use]
    pub fn specification_coverage(&self) -> f64 {
        let total = self.states.len() * (1usize << self.num_inputs);
        if total == 0 {
            return 1.0;
        }
        let mut covered = 0usize;
        for state in 0..self.states.len() {
            for m in 0..(1u32 << self.num_inputs) {
                if self.lookup(m, state).is_some() {
                    covered += 1;
                }
            }
        }
        covered as f64 / total as f64
    }
}

impl fmt::Display for Fsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} states, {} rows",
            self.name,
            self.num_inputs,
            self.num_outputs,
            self.states.len(),
            self.transitions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle() -> Fsm {
        Fsm::new(
            "toggle",
            1,
            1,
            vec!["off".into(), "on".into()],
            0,
            vec![
                Transition {
                    input: Cube::parse("0").unwrap(),
                    from: 0,
                    to: 0,
                    outputs: vec![OutputBit::Zero],
                },
                Transition {
                    input: Cube::parse("1").unwrap(),
                    from: 0,
                    to: 1,
                    outputs: vec![OutputBit::One],
                },
                Transition {
                    input: Cube::parse("-").unwrap(),
                    from: 1,
                    to: 0,
                    outputs: vec![OutputBit::One],
                },
            ],
        )
    }

    #[test]
    fn lookup_first_match() {
        let f = toggle();
        assert_eq!(f.lookup(0, 0).unwrap().to, 0);
        assert_eq!(f.lookup(1, 0).unwrap().to, 1);
        assert_eq!(f.lookup(0, 1).unwrap().to, 0);
        assert_eq!(f.lookup(1, 1).unwrap().to, 0);
    }

    #[test]
    fn deterministic_check_passes_for_disjoint_rows() {
        assert_eq!(toggle().check_deterministic(), None);
    }

    #[test]
    fn deterministic_check_catches_conflicts() {
        let f = Fsm::new(
            "bad",
            1,
            1,
            vec!["a".into(), "b".into()],
            0,
            vec![
                Transition {
                    input: Cube::parse("-").unwrap(),
                    from: 0,
                    to: 0,
                    outputs: vec![OutputBit::Zero],
                },
                Transition {
                    input: Cube::parse("1").unwrap(),
                    from: 0,
                    to: 1,
                    outputs: vec![OutputBit::Zero],
                },
            ],
        );
        assert_eq!(f.check_deterministic(), Some((0, 1)));
    }

    #[test]
    fn coverage_full_for_toggle() {
        assert!((toggle().specification_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_partial_when_rows_missing() {
        let f = Fsm::new(
            "partial",
            1,
            1,
            vec!["a".into()],
            0,
            vec![Transition {
                input: Cube::parse("1").unwrap(),
                from: 0,
                to: 0,
                outputs: vec![OutputBit::One],
            }],
        );
        assert!((f.specification_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes() {
        assert!(toggle().to_string().contains("2 states"));
    }
}
