//! Berkeley PLA format (`.pla`, espresso interchange) parsing, writing,
//! and synthesis.
//!
//! Multi-output two-level covers come and go in this format throughout
//! the classic synthesis flow; supporting it lets users bring their own
//! espresso-minimized logic into the n-detection analysis.
//!
//! ```text
//! .i 3
//! .o 2
//! .p 2
//! 1-0 10
//! 011 01
//! .e
//! ```
//!
//! Output-plane characters: `1` (cube in this output's cover), `0` or
//! `~` (not in cover), `-` (don't care; treated as not-in-cover for
//! synthesis, preserved on round trips as `-`... see [`PlaRow`]).

use crate::cube::Cube;
use crate::error::FsmError;
use crate::fsm::OutputBit;
use crate::two_level::emit_two_level;
use ndetect_netlist::Netlist;
use std::fmt::Write as _;

/// One PLA row: an input cube plus one [`OutputBit`] per output.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlaRow {
    /// The product term.
    pub input: Cube,
    /// Output-plane entries, one per output.
    pub outputs: Vec<OutputBit>,
}

/// A parsed PLA: a multi-output two-level cover.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Pla {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    rows: Vec<PlaRow>,
}

impl Pla {
    /// Assembles a PLA from rows.
    ///
    /// # Panics
    ///
    /// Panics if a row's shape disagrees with the declared counts.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        rows: Vec<PlaRow>,
    ) -> Self {
        for row in &rows {
            assert_eq!(row.input.num_vars(), num_inputs, "row cube width");
            assert_eq!(row.outputs.len(), num_outputs, "row output width");
        }
        Pla {
            name: name.into(),
            num_inputs,
            num_outputs,
            rows,
        }
    }

    /// The PLA's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input variables.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The rows, in file order.
    #[must_use]
    pub fn rows(&self) -> &[PlaRow] {
        &self.rows
    }

    /// The cube cover of output `j` (`1` entries only).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn cover(&self, j: usize) -> Vec<Cube> {
        assert!(j < self.num_outputs);
        self.rows
            .iter()
            .filter(|r| r.outputs[j] == OutputBit::One)
            .map(|r| r.input)
            .collect()
    }

    /// Synthesizes the PLA as an AND/OR/NOT netlist with inputs
    /// `x0..x{i-1}` and outputs `z0..z{o-1}`.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::Synthesis`] on internal netlist errors.
    pub fn synthesize(&self) -> Result<Netlist, FsmError> {
        let input_names: Vec<String> = (0..self.num_inputs).map(|i| format!("x{i}")).collect();
        let output_names: Vec<String> = (0..self.num_outputs).map(|j| format!("z{j}")).collect();
        let covers: Vec<Vec<Cube>> = (0..self.num_outputs).map(|j| self.cover(j)).collect();
        emit_two_level(&self.name, &input_names, &covers, &output_names)
    }

    /// Evaluates the PLA on a minterm: output `j` is 1 iff some row with
    /// a `1` in that output plane matches.
    #[must_use]
    pub fn eval(&self, minterm: u32) -> Vec<bool> {
        (0..self.num_outputs)
            .map(|j| {
                self.rows
                    .iter()
                    .any(|r| r.outputs[j] == OutputBit::One && r.input.matches(minterm))
            })
            .collect()
    }
}

/// Parses PLA source text.
///
/// Handles `.i`, `.o`, `.p` (checked), `.ilb`/`.ob`/`.type` (ignored),
/// `.e`/`.end`, comments (`#`), and cube rows.
///
/// # Errors
///
/// Returns [`FsmError::Parse`] for malformed lines and
/// [`FsmError::Inconsistent`] for declaration mismatches.
pub fn parse_pla(name: &str, source: &str) -> Result<Pla, FsmError> {
    let mut num_inputs: Option<usize> = None;
    let mut num_outputs: Option<usize> = None;
    let mut declared_rows: Option<usize> = None;
    let mut rows: Vec<PlaRow> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let first = tokens.next().expect("non-empty");
        let parse_count = |tok: Option<&str>, what: &str| -> Result<usize, FsmError> {
            tok.and_then(|t| t.parse().ok()).ok_or(FsmError::Parse {
                line: lineno,
                message: format!("expected a count after {what}"),
            })
        };
        match first {
            ".i" => num_inputs = Some(parse_count(tokens.next(), ".i")?),
            ".o" => num_outputs = Some(parse_count(tokens.next(), ".o")?),
            ".p" => declared_rows = Some(parse_count(tokens.next(), ".p")?),
            ".e" | ".end" => break,
            ".ilb" | ".ob" | ".type" | ".phase" => {}
            _ if first.starts_with('.') => {
                return Err(FsmError::Parse {
                    line: lineno,
                    message: format!("unknown directive `{first}`"),
                });
            }
            cube_text => {
                let out_text = tokens.next().ok_or(FsmError::Parse {
                    line: lineno,
                    message: "missing output plane".into(),
                })?;
                if tokens.next().is_some() {
                    return Err(FsmError::Parse {
                        line: lineno,
                        message: "trailing tokens after output plane".into(),
                    });
                }
                let input = Cube::parse(cube_text).ok_or(FsmError::Parse {
                    line: lineno,
                    message: format!("bad input cube `{cube_text}`"),
                })?;
                if let Some(ni) = num_inputs {
                    if input.num_vars() != ni {
                        return Err(FsmError::Parse {
                            line: lineno,
                            message: format!(
                                "cube has {} variables, .i declared {ni}",
                                input.num_vars()
                            ),
                        });
                    }
                } else {
                    num_inputs = Some(input.num_vars());
                }
                let outputs: Vec<OutputBit> = out_text
                    .chars()
                    .map(|c| match c {
                        '1' | '4' => Ok(OutputBit::One),
                        '0' | '~' => Ok(OutputBit::Zero),
                        '-' | '2' | '3' => Ok(OutputBit::DontCare),
                        _ => Err(FsmError::Parse {
                            line: lineno,
                            message: format!("bad output character `{c}`"),
                        }),
                    })
                    .collect::<Result<_, _>>()?;
                if let Some(no) = num_outputs {
                    if outputs.len() != no {
                        return Err(FsmError::Parse {
                            line: lineno,
                            message: format!(
                                "output plane has {} bits, .o declared {no}",
                                outputs.len()
                            ),
                        });
                    }
                } else {
                    num_outputs = Some(outputs.len());
                }
                rows.push(PlaRow { input, outputs });
            }
        }
    }

    if let Some(p) = declared_rows {
        if p != rows.len() {
            return Err(FsmError::Inconsistent {
                message: format!(".p declared {p} rows, body has {}", rows.len()),
            });
        }
    }
    let num_inputs = num_inputs.ok_or(FsmError::Inconsistent {
        message: "no .i declaration and no rows to infer it from".into(),
    })?;
    let num_outputs = num_outputs.ok_or(FsmError::Inconsistent {
        message: "no .o declaration and no rows to infer it from".into(),
    })?;
    Ok(Pla::new(name, num_inputs, num_outputs, rows))
}

/// Serializes a PLA to `.pla` text (round-trips through [`parse_pla`]).
#[must_use]
pub fn write_pla(pla: &Pla) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", pla.name());
    let _ = writeln!(out, ".i {}", pla.num_inputs());
    let _ = writeln!(out, ".o {}", pla.num_outputs());
    let _ = writeln!(out, ".p {}", pla.rows().len());
    for row in pla.rows() {
        let outputs: String = row
            .outputs
            .iter()
            .map(|b| match b {
                OutputBit::One => '1',
                OutputBit::Zero => '0',
                OutputBit::DontCare => '-',
            })
            .collect();
        let _ = writeln!(out, "{} {}", row.input, outputs);
    }
    let _ = writeln!(out, ".e");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
# a 2-output sample
.i 3
.o 2
.p 3
1-0 10
011 01
11- 1-
.e
";

    #[test]
    fn parses_and_evaluates() {
        let pla = parse_pla("sample", SAMPLE).unwrap();
        assert_eq!(pla.num_inputs(), 3);
        assert_eq!(pla.num_outputs(), 2);
        assert_eq!(pla.rows().len(), 3);
        // Minterm 100 matches row 1 only: outputs 10.
        assert_eq!(pla.eval(0b100), vec![true, false]);
        // Minterm 011 matches row 2: outputs 01.
        assert_eq!(pla.eval(0b011), vec![false, true]);
        // Minterm 110 matches rows 1 and 3: outputs 1-,10 -> [true,false].
        assert_eq!(pla.eval(0b110), vec![true, false]);
        // Minterm 001 matches nothing.
        assert_eq!(pla.eval(0b001), vec![false, false]);
    }

    #[test]
    fn synthesized_netlist_matches_pla_semantics() {
        let pla = parse_pla("sample", SAMPLE).unwrap();
        let netlist = pla.synthesize().unwrap();
        assert_eq!(netlist.num_inputs(), 3);
        assert_eq!(netlist.num_outputs(), 2);
        for m in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (m >> (2 - i)) & 1 == 1).collect();
            assert_eq!(netlist.eval_bool(&bits), pla.eval(m), "minterm {m:03b}");
        }
    }

    #[test]
    fn round_trip() {
        let pla = parse_pla("sample", SAMPLE).unwrap();
        let text = write_pla(&pla);
        let back = parse_pla("sample", &text).unwrap();
        assert_eq!(pla, back);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(parse_pla("bad", ".i 2\n.o 1\n111 1\n.e\n").is_err());
        assert!(parse_pla("bad", ".i 3\n.o 2\n111 111\n.e\n").is_err());
        assert!(parse_pla("bad", ".i 3\n.o 2\n.p 5\n111 11\n.e\n").is_err());
        assert!(parse_pla("bad", ".quux 3\n").is_err());
        assert!(parse_pla("empty", "").is_err());
    }

    #[test]
    fn infers_counts_from_rows() {
        let pla = parse_pla("inferred", "10 1\n01 0\n.e\n").unwrap();
        assert_eq!(pla.num_inputs(), 2);
        assert_eq!(pla.num_outputs(), 1);
    }
}
