//! Quine–McCluskey two-level minimization with greedy covering.
//!
//! Classic exact prime-implicant generation followed by essential-prime
//! extraction and greedy set covering (Petrick's method is exponential;
//! greedy covers are within a log factor and deterministic). Intended for
//! the function sizes that arise when synthesizing FSM benchmark logic
//! (≤ ~14 variables); larger functions should use the direct (unminimized)
//! synthesis mode.

use crate::cube::Cube;
use std::collections::{HashMap, HashSet};

/// Minimizes a single-output function given by on-set and don't-care
/// minterms over `num_vars` variables (MSB-first indices, matching
/// [`Cube`]).
///
/// Returns a set of prime implicants covering every on-set minterm and no
/// off-set minterm. The result is deterministic.
///
/// ```
/// use ndetect_fsm::qm::minimize;
/// // f(a,b) = a'b + ab + ab' = a + b.
/// let cover = minimize(2, &[1, 2, 3], &[]);
/// assert_eq!(cover.len(), 2);
/// ```
///
/// # Panics
///
/// Panics if `num_vars > 20` (exact QM is intractable far earlier than
/// the representation limit) or if minterm indices exceed the domain.
#[must_use]
pub fn minimize(num_vars: usize, on_set: &[u32], dc_set: &[u32]) -> Vec<Cube> {
    assert!(num_vars <= 20, "exact QM limited to 20 variables");
    let domain: u64 = 1u64 << num_vars;
    for &m in on_set.iter().chain(dc_set) {
        assert!((u64::from(m)) < domain, "minterm {m} outside domain");
    }
    if on_set.is_empty() {
        return Vec::new();
    }

    let primes = prime_implicants(num_vars, on_set, dc_set);
    cover(on_set, &primes)
}

/// Generates all prime implicants of the function (on ∪ dc used for
/// merging; primality judged within that union).
#[must_use]
pub fn prime_implicants(num_vars: usize, on_set: &[u32], dc_set: &[u32]) -> Vec<Cube> {
    let full_mask: u32 = if num_vars == 32 {
        u32::MAX
    } else {
        ((1u64 << num_vars) - 1) as u32
    };

    // Current generation of implicants keyed by (care, value); value bool =
    // "was merged into something larger".
    let mut current: HashMap<(u32, u32), bool> = HashMap::new();
    for &m in on_set.iter().chain(dc_set) {
        current.insert((full_mask, m), false);
    }

    let mut primes: HashSet<(u32, u32)> = HashSet::new();
    while !current.is_empty() {
        let mut next: HashMap<(u32, u32), bool> = HashMap::new();
        // Group by care mask; only implicants with identical care masks and
        // Hamming-distance-1 values merge.
        let mut by_care: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(care, value) in current.keys() {
            by_care.entry(care).or_default().push(value);
        }
        let mut merged_keys: HashSet<(u32, u32)> = HashSet::new();
        for (&care, values) in &by_care {
            for (i, &a) in values.iter().enumerate() {
                for &b in &values[i + 1..] {
                    let diff = a ^ b;
                    if diff.count_ones() == 1 {
                        let new_care = care & !diff;
                        let new_value = a & new_care;
                        next.entry((new_care, new_value)).or_insert(false);
                        merged_keys.insert((care, a));
                        merged_keys.insert((care, b));
                    }
                }
            }
        }
        for (key, _) in current {
            if !merged_keys.contains(&key) {
                primes.insert(key);
            }
        }
        current = next;
    }

    let mut out: Vec<Cube> = primes
        .into_iter()
        .map(|(care, value)| Cube::from_masks(num_vars, care, value))
        .collect();
    out.sort_unstable();
    out
}

/// Selects a deterministic cover of `on_set` from candidate implicants:
/// essential primes first, then greedy by coverage count (ties broken by
/// cube order).
#[must_use]
pub fn cover(on_set: &[u32], primes: &[Cube]) -> Vec<Cube> {
    let mut uncovered: HashSet<u32> = on_set.iter().copied().collect();
    let mut chosen: Vec<Cube> = Vec::new();

    // Essential primes: the only cover of some minterm.
    loop {
        let mut essential: Option<Cube> = None;
        'search: for &m in &uncovered {
            let mut covering = primes.iter().filter(|p| p.matches(m));
            if let (Some(&first), None) = (covering.next(), covering.next()) {
                essential = Some(first);
                break 'search;
            }
        }
        match essential {
            Some(p) => {
                uncovered.retain(|&m| !p.matches(m));
                chosen.push(p);
            }
            None => break,
        }
        if uncovered.is_empty() {
            break;
        }
    }

    // Greedy: repeatedly take the prime covering the most uncovered
    // minterms (first in sorted order on ties).
    while !uncovered.is_empty() {
        let best = primes
            .iter()
            .map(|p| {
                let n = uncovered.iter().filter(|&&m| p.matches(m)).count();
                (n, p)
            })
            .max_by(|(na, pa), (nb, pb)| na.cmp(nb).then_with(|| pb.cmp(pa)))
            .map(|(n, p)| (n, *p))
            .expect("primes cover all on-set minterms");
        assert!(best.0 > 0, "prime implicants must cover the on-set");
        uncovered.retain(|&m| !best.1.matches(m));
        chosen.push(best.1);
    }

    chosen.sort_unstable();
    chosen.dedup();
    chosen
}

/// Evaluates a cover on a minterm (true if any cube matches) — the oracle
/// used to verify minimization.
#[must_use]
pub fn cover_matches(cover: &[Cube], minterm: u32) -> bool {
    cover.iter().any(|c| c.matches(minterm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn verify(num_vars: usize, on: &[u32], dc: &[u32]) -> Vec<Cube> {
        let result = minimize(num_vars, on, dc);
        let on_set: HashSet<u32> = on.iter().copied().collect();
        let dc_set: HashSet<u32> = dc.iter().copied().collect();
        for m in 0..(1u32 << num_vars) {
            let val = cover_matches(&result, m);
            if on_set.contains(&m) {
                assert!(val, "on-set minterm {m} uncovered");
            } else if !dc_set.contains(&m) {
                assert!(!val, "off-set minterm {m} covered");
            }
        }
        result
    }

    #[test]
    fn textbook_example() {
        // f = Σm(0,1,2,5,6,7) over 3 vars: minimal SOP has 3 terms
        // (a'b' + bc' is not enough; classic answer: a'c' ... ) -- just
        // check correctness and that size <= 4.
        let cover = verify(3, &[0, 1, 2, 5, 6, 7], &[]);
        assert!(cover.len() <= 4);
    }

    #[test]
    fn dont_cares_shrink_cover() {
        // f = Σm(1,3) dc(0,2) over 2 vars reduces to the single cube "-1"
        // ... wait: minterms 1,3 are b=1; dc lets nothing shrink further.
        let cover = verify(2, &[1, 3], &[0, 2]);
        assert_eq!(cover.len(), 1);
        // Without dc the same single cube works; with dc covering 0,2 is allowed.
        let with_dc = minimize(2, &[1], &[3]);
        assert_eq!(with_dc.len(), 1);
    }

    #[test]
    fn full_function_minimizes_to_universe() {
        let cover = verify(3, &(0..8).collect::<Vec<_>>(), &[]);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].num_literals(), 0);
    }

    #[test]
    fn empty_on_set() {
        assert!(minimize(3, &[], &[1, 2]).is_empty());
    }

    #[test]
    fn xor_does_not_minimize() {
        // Parity has no mergeable implicants: 4 minterms stay 4 cubes.
        let on: Vec<u32> = (0..16).filter(|m: &u32| m.count_ones() % 2 == 1).collect();
        let cover = verify(4, &on, &[]);
        assert_eq!(cover.len(), 8);
        assert!(cover.iter().all(|c| c.num_literals() == 4));
    }

    #[test]
    fn random_functions_are_covered_exactly() {
        // Deterministic pseudo-random functions over 4..6 vars.
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for num_vars in 4..=6usize {
            for _ in 0..8 {
                let mut on = Vec::new();
                let mut dc = Vec::new();
                for m in 0..(1u32 << num_vars) {
                    match next() % 4 {
                        0 => on.push(m),
                        1 => dc.push(m),
                        _ => {}
                    }
                }
                verify(num_vars, &on, &dc);
            }
        }
    }

    #[test]
    fn essential_primes_selected_first() {
        // f = Σm(0,1,5,7): prime a'b' is essential for 0.
        let cover = verify(3, &[0, 1, 5, 7], &[]);
        assert!(cover.iter().any(|c| c.matches(0)));
    }
}
