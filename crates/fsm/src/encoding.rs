//! State encodings: mapping symbolic states to binary codes.

use std::fmt;

/// An assignment of distinct binary codes to the states of an FSM.
///
/// ```
/// use ndetect_fsm::StateEncoding;
/// let enc = StateEncoding::binary(5);
/// assert_eq!(enc.num_bits(), 3);
/// assert_eq!(enc.code(4), 4);
/// assert!(enc.state_of_code(7).is_none()); // unused code
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StateEncoding {
    codes: Vec<u32>,
    num_bits: usize,
}

impl StateEncoding {
    /// Natural binary encoding: state `i` gets code `i`, using
    /// `ceil(log2(n))` bits (1 bit minimum).
    #[must_use]
    pub fn binary(num_states: usize) -> Self {
        assert!(num_states > 0, "an FSM has at least one state");
        let num_bits = bits_for(num_states);
        StateEncoding {
            codes: (0..num_states as u32).collect(),
            num_bits,
        }
    }

    /// Gray-code encoding: state `i` gets the `i`-th Gray code. Adjacent
    /// state indices differ in one bit, which tends to produce different
    /// two-level structure than natural binary — useful for studying
    /// encoding sensitivity.
    #[must_use]
    pub fn gray(num_states: usize) -> Self {
        assert!(num_states > 0);
        let num_bits = bits_for(num_states);
        StateEncoding {
            codes: (0..num_states as u32).map(|i| i ^ (i >> 1)).collect(),
            num_bits,
        }
    }

    /// A custom encoding from explicit codes.
    ///
    /// # Panics
    ///
    /// Panics if codes are not distinct or exceed `num_bits`.
    #[must_use]
    pub fn custom(codes: Vec<u32>, num_bits: usize) -> Self {
        assert!(!codes.is_empty());
        let limit = 1u64 << num_bits;
        for (i, &c) in codes.iter().enumerate() {
            assert!(
                (u64::from(c)) < limit,
                "code {c} of state {i} needs more bits"
            );
            assert!(!codes[..i].contains(&c), "code {c} assigned to two states");
        }
        StateEncoding { codes, num_bits }
    }

    /// Number of state bits.
    #[must_use]
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of encoded states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.codes.len()
    }

    /// The code of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn code(&self, state: usize) -> u32 {
        self.codes[state]
    }

    /// All codes, indexed by state.
    #[must_use]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Reverse lookup: the state using `code`, if any (unused codes are
    /// don't-care input combinations for the synthesized logic).
    #[must_use]
    pub fn state_of_code(&self, code: u32) -> Option<usize> {
        self.codes.iter().position(|&c| c == code)
    }
}

impl fmt::Display for StateEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} states in {} bits", self.codes.len(), self.num_bits)
    }
}

fn bits_for(num_states: usize) -> usize {
    (usize::BITS - (num_states - 1).leading_zeros()).max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_bit_widths() {
        assert_eq!(StateEncoding::binary(1).num_bits(), 1);
        assert_eq!(StateEncoding::binary(2).num_bits(), 1);
        assert_eq!(StateEncoding::binary(3).num_bits(), 2);
        assert_eq!(StateEncoding::binary(4).num_bits(), 2);
        assert_eq!(StateEncoding::binary(5).num_bits(), 3);
        assert_eq!(StateEncoding::binary(27).num_bits(), 5);
    }

    #[test]
    fn gray_codes_are_distinct_and_adjacent() {
        let enc = StateEncoding::gray(8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 {
            assert!(seen.insert(enc.code(i)));
        }
        for i in 1..8 {
            let diff = enc.code(i) ^ enc.code(i - 1);
            assert_eq!(diff.count_ones(), 1, "gray step {i}");
        }
    }

    #[test]
    fn reverse_lookup() {
        let enc = StateEncoding::binary(3);
        assert_eq!(enc.state_of_code(2), Some(2));
        assert_eq!(enc.state_of_code(3), None);
    }

    #[test]
    #[should_panic(expected = "assigned to two states")]
    fn custom_rejects_duplicates() {
        let _ = StateEncoding::custom(vec![1, 1], 2);
    }
}
