//! Synthesis of an FSM's combinational logic into a gate-level netlist.
//!
//! The synthesized circuit is the classic "combinational logic of the
//! FSM": inputs are the primary inputs `x0..` followed by the
//! present-state bits `s0..`; outputs are the primary outputs `z0..`
//! followed by the next-state bits `ns0..`. The logic is two-level
//! AND/OR with shared input inverters and shared product terms —
//! PLA-style, mirroring the two-level flow used for the MCNC benchmark
//! suite.

use crate::cube::Cube;
use crate::encoding::StateEncoding;
use crate::error::FsmError;
use crate::fsm::{Fsm, OutputBit};
use crate::qm;
use ndetect_netlist::Netlist;

/// When and how to apply two-level minimization during synthesis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MinimizeMode {
    /// Exact Quine–McCluskey up to
    /// [`SynthOptions::AUTO_MINIMIZE_LIMIT`] total inputs, the
    /// espresso-style EXPAND/IRREDUNDANT heuristic up to
    /// [`SynthOptions::AUTO_HEURISTIC_LIMIT`], direct row synthesis
    /// beyond that.
    #[default]
    Auto,
    /// Always minimize exactly (QM; practical up to ~14 total inputs).
    Always,
    /// Always minimize heuristically (EXPAND/IRREDUNDANT against the
    /// ON∪DC set; scales to the exhaustive-simulation limit). Requires
    /// a deterministic table (falls back to direct synthesis
    /// otherwise).
    Heuristic,
    /// Never minimize: one product term per table row.
    Never,
}

/// Options for [`synthesize`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SynthOptions {
    /// Minimization policy. Minimized synthesis treats unspecified
    /// `(state, input)` pairs, unused state codes, and `-` output bits as
    /// don't-cares (like the original MCNC flow); direct synthesis
    /// grounds them to 0.
    pub minimize: MinimizeMode,
}

impl SynthOptions {
    /// Input-count threshold below which [`MinimizeMode::Auto`] uses
    /// exact Quine–McCluskey.
    pub const AUTO_MINIMIZE_LIMIT: usize = 10;
    /// Input-count threshold below which [`MinimizeMode::Auto`] uses
    /// the EXPAND/IRREDUNDANT heuristic (beyond QM's reach).
    pub const AUTO_HEURISTIC_LIMIT: usize = 16;
}

/// Synthesizes the combinational logic of `fsm` under `encoding`.
///
/// # Errors
///
/// Returns [`FsmError::Synthesis`] if netlist construction fails
/// (indicates an internal bug) and [`FsmError::Inconsistent`] if the
/// encoding does not cover the FSM's states.
pub fn synthesize(
    fsm: &Fsm,
    encoding: &StateEncoding,
    options: SynthOptions,
) -> Result<Netlist, FsmError> {
    if encoding.num_states() != fsm.num_states() {
        return Err(FsmError::Inconsistent {
            message: format!(
                "encoding covers {} states, fsm has {}",
                encoding.num_states(),
                fsm.num_states()
            ),
        });
    }
    let ni = fsm.num_inputs();
    let nb = encoding.num_bits();
    let total_vars = ni + nb;
    #[derive(PartialEq)]
    enum Plan {
        Exact,
        Heuristic,
        Direct,
    }
    let plan = match options.minimize {
        MinimizeMode::Always => Plan::Exact,
        MinimizeMode::Never => Plan::Direct,
        MinimizeMode::Heuristic => Plan::Heuristic,
        MinimizeMode::Auto => {
            if total_vars <= SynthOptions::AUTO_MINIMIZE_LIMIT {
                Plan::Exact
            } else if total_vars <= SynthOptions::AUTO_HEURISTIC_LIMIT {
                Plan::Heuristic
            } else {
                Plan::Direct
            }
        }
    };
    // The heuristic expands the direct row cubes, which is only sound
    // for deterministic tables (overlapping rows that agree).
    let plan = if plan == Plan::Heuristic && fsm.check_deterministic().is_some() {
        Plan::Direct
    } else {
        plan
    };

    // Build the cube cover of every output function: primary outputs
    // first, then next-state bits.
    let num_functions = fsm.num_outputs() + nb;
    let covers: Vec<Vec<Cube>> = match plan {
        Plan::Exact => minimized_covers(fsm, encoding, total_vars, num_functions),
        Plan::Heuristic => heuristic_covers(fsm, encoding, total_vars, num_functions),
        Plan::Direct => direct_covers(fsm, encoding, num_functions),
    };

    // Emit the two-level netlist via the shared PLA-style emitter.
    let mut input_names: Vec<String> = Vec::with_capacity(ni + nb);
    for i in 0..ni {
        input_names.push(format!("x{i}"));
    }
    for j in 0..nb {
        input_names.push(format!("s{j}"));
    }
    let mut output_names: Vec<String> = Vec::with_capacity(num_functions);
    for j in 0..fsm.num_outputs() {
        output_names.push(format!("z{j}"));
    }
    for j in 0..nb {
        output_names.push(format!("nst{j}"));
    }
    crate::two_level::emit_two_level(fsm.name(), &input_names, &covers, &output_names)
}

/// One cube per table row, per function (sound for deterministic tables;
/// overlapping rows that agree OR together harmlessly). Unspecified
/// behaviour grounds to 0.
fn direct_covers(fsm: &Fsm, encoding: &StateEncoding, num_functions: usize) -> Vec<Vec<Cube>> {
    let nb = encoding.num_bits();
    let mut covers: Vec<Vec<Cube>> = vec![Vec::new(); num_functions];
    for t in fsm.transitions() {
        let state_cube = Cube::minterm(nb, encoding.code(t.from));
        let full = t.input.concat(&state_cube);
        for (j, bit) in t.outputs.iter().enumerate() {
            if *bit == OutputBit::One {
                covers[j].push(full);
            }
        }
        let to_code = encoding.code(t.to);
        for j in 0..nb {
            if (to_code >> (nb - 1 - j)) & 1 == 1 {
                covers[fsm.num_outputs() + j].push(full);
            }
        }
    }
    for c in &mut covers {
        c.sort_unstable();
        c.dedup();
    }
    covers
}

/// Exhaustive expansion to minterms (first-match-wins), with don't-cares
/// for unused codes and unspecified pairs, then QM minimization.
fn minimized_covers(
    fsm: &Fsm,
    encoding: &StateEncoding,
    total_vars: usize,
    num_functions: usize,
) -> Vec<Vec<Cube>> {
    let ni = fsm.num_inputs();
    let nb = encoding.num_bits();
    let mut on_sets: Vec<Vec<u32>> = vec![Vec::new(); num_functions];
    let mut dc_sets: Vec<Vec<u32>> = vec![Vec::new(); num_functions];

    for code in 0..(1u32 << nb) {
        let state = encoding.state_of_code(code);
        for m in 0..(1u32 << ni) {
            let full = (m << nb) | code;
            match state.and_then(|s| fsm.lookup(m, s).map(|t| (s, t))) {
                None => {
                    // Unused code or unspecified pair: every function free.
                    for set in &mut dc_sets[..num_functions] {
                        set.push(full);
                    }
                }
                Some((_, t)) => {
                    for (j, bit) in t.outputs.iter().enumerate() {
                        match bit {
                            OutputBit::One => on_sets[j].push(full),
                            OutputBit::DontCare => dc_sets[j].push(full),
                            OutputBit::Zero => {}
                        }
                    }
                    let to_code = encoding.code(t.to);
                    for j in 0..nb {
                        if (to_code >> (nb - 1 - j)) & 1 == 1 {
                            on_sets[fsm.num_outputs() + j].push(full);
                        }
                    }
                }
            }
        }
    }

    (0..num_functions)
        .map(|f| qm::minimize(total_vars, &on_sets[f], &dc_sets[f]))
        .collect()
}

/// EXPAND/IRREDUNDANT heuristic covers: the direct row cubes are
/// expanded against the exact ON∪DC sets obtained by a semantic walk
/// of the table (first-match-wins), then made irredundant. Scales to
/// the full exhaustive-simulation width.
fn heuristic_covers(
    fsm: &Fsm,
    encoding: &StateEncoding,
    total_vars: usize,
    num_functions: usize,
) -> Vec<Vec<Cube>> {
    use ndetect_sim::{PatternSpace, VectorSet};
    let ni = fsm.num_inputs();
    let nb = encoding.num_bits();
    let space = PatternSpace::new(total_vars).expect("synthesis width within exhaustive limit");
    let num_patterns = space.num_patterns();

    let mut on: Vec<VectorSet> = (0..num_functions)
        .map(|_| VectorSet::new(num_patterns))
        .collect();
    let mut allow: Vec<VectorSet> = (0..num_functions)
        .map(|_| VectorSet::new(num_patterns))
        .collect();

    for code in 0..(1u32 << nb) {
        let state = encoding.state_of_code(code);
        for m in 0..(1u32 << ni) {
            let full = (((m << nb) | code) as usize) & (num_patterns - 1);
            match state.and_then(|s| fsm.lookup(m, s)) {
                None => {
                    for set in &mut allow[..num_functions] {
                        set.insert(full);
                    }
                }
                Some(t) => {
                    for (j, bit) in t.outputs.iter().enumerate() {
                        match bit {
                            OutputBit::One => {
                                on[j].insert(full);
                                allow[j].insert(full);
                            }
                            OutputBit::DontCare => {
                                allow[j].insert(full);
                            }
                            OutputBit::Zero => {}
                        }
                    }
                    let to_code = encoding.code(t.to);
                    for j in 0..nb {
                        if (to_code >> (nb - 1 - j)) & 1 == 1 {
                            on[fsm.num_outputs() + j].insert(full);
                            allow[fsm.num_outputs() + j].insert(full);
                        }
                    }
                }
            }
        }
    }

    let seeds = direct_covers(fsm, encoding, num_functions);
    (0..num_functions)
        .map(|f| crate::expand::expand_cover(&space, &seeds[f], &on[f], &allow[f]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kiss2::parse_kiss2;

    const TOGGLE: &str = "
.i 1
.o 1
.s 2
.r off
0 off off 0
1 off on  1
0 on  on  1
1 on  off 0
.e
";

    fn check_against_fsm(fsm: &Fsm, enc: &StateEncoding, netlist: &Netlist, strict_zero: bool) {
        let ni = fsm.num_inputs();
        let nb = enc.num_bits();
        for code in 0..(1u32 << nb) {
            let state = enc.state_of_code(code);
            for m in 0..(1u32 << ni) {
                let mut bits: Vec<bool> = Vec::with_capacity(ni + nb);
                for i in 0..ni {
                    bits.push((m >> (ni - 1 - i)) & 1 == 1);
                }
                for j in 0..nb {
                    bits.push((code >> (nb - 1 - j)) & 1 == 1);
                }
                let outs = netlist.eval_bool(&bits);
                match state.and_then(|s| fsm.lookup(m, s)) {
                    Some(t) => {
                        for (j, bit) in t.outputs.iter().enumerate() {
                            match bit {
                                OutputBit::One => assert!(outs[j], "z{j} m={m} code={code}"),
                                OutputBit::Zero => {
                                    assert!(!outs[j], "z{j} m={m} code={code}")
                                }
                                OutputBit::DontCare => {}
                            }
                        }
                        let to_code = enc.code(t.to);
                        for j in 0..nb {
                            let expect = (to_code >> (nb - 1 - j)) & 1 == 1;
                            assert_eq!(
                                outs[fsm.num_outputs() + j],
                                expect,
                                "ns{j} m={m} code={code}"
                            );
                        }
                    }
                    None => {
                        if strict_zero {
                            assert!(
                                outs.iter().all(|&o| !o),
                                "unspecified pair must ground to 0 in direct mode"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn toggle_direct_synthesis_matches_table() {
        let fsm = parse_kiss2("toggle", TOGGLE).unwrap();
        let enc = StateEncoding::binary(fsm.num_states());
        let n = synthesize(
            &fsm,
            &enc,
            SynthOptions {
                minimize: MinimizeMode::Never,
            },
        )
        .unwrap();
        assert_eq!(n.num_inputs(), 2);
        assert_eq!(n.num_outputs(), 2);
        check_against_fsm(&fsm, &enc, &n, true);
    }

    #[test]
    fn toggle_minimized_synthesis_matches_table() {
        let fsm = parse_kiss2("toggle", TOGGLE).unwrap();
        let enc = StateEncoding::binary(fsm.num_states());
        let n = synthesize(
            &fsm,
            &enc,
            SynthOptions {
                minimize: MinimizeMode::Always,
            },
        )
        .unwrap();
        check_against_fsm(&fsm, &enc, &n, false);
        // toggle is an XOR: z = x ^ s. Two-level cover has 2 terms; the
        // netlist stays small.
        assert!(n.num_gates() <= 8);
    }

    #[test]
    fn gray_encoding_also_correct() {
        let fsm = parse_kiss2("toggle", TOGGLE).unwrap();
        let enc = StateEncoding::gray(fsm.num_states());
        let n = synthesize(&fsm, &enc, SynthOptions::default()).unwrap();
        check_against_fsm(&fsm, &enc, &n, false);
    }

    #[test]
    fn multi_state_machine_with_dont_cares() {
        let src = "
.i 2
.o 2
.s 3
.r a
0- a b 1-
1- a c 01
-- b a 10
00 c c -0
11 c a 11
.e
";
        let fsm = parse_kiss2("m", src).unwrap();
        let enc = StateEncoding::binary(fsm.num_states());
        for mode in [
            MinimizeMode::Never,
            MinimizeMode::Always,
            MinimizeMode::Heuristic,
        ] {
            let n = synthesize(&fsm, &enc, SynthOptions { minimize: mode }).unwrap();
            check_against_fsm(&fsm, &enc, &n, mode == MinimizeMode::Never);
        }
    }

    #[test]
    fn shared_terms_are_reused() {
        // Both outputs use the same product term: it must appear once.
        let src = ".i 2\n.o 2\n11 a a 11\n.e\n";
        let fsm = parse_kiss2("s", src).unwrap();
        let enc = StateEncoding::binary(fsm.num_states());
        let n = synthesize(
            &fsm,
            &enc,
            SynthOptions {
                minimize: MinimizeMode::Never,
            },
        )
        .unwrap();
        // Gates: one AND term (x0&x1&s-inverter? state bit 0 = code 0 so
        // inverted), inverter, two output buffers, one const0 for ns.
        let and_count = n
            .node_ids()
            .filter(|&id| n.node(id).kind() == ndetect_netlist::GateKind::And)
            .count();
        assert_eq!(
            and_count,
            1,
            "term sharing failed: {}",
            ndetect_netlist::bench_format::write(&n)
        );
    }

    #[test]
    fn encoding_mismatch_rejected() {
        let fsm = parse_kiss2("toggle", TOGGLE).unwrap();
        let enc = StateEncoding::binary(5);
        assert!(matches!(
            synthesize(&fsm, &enc, SynthOptions::default()),
            Err(FsmError::Inconsistent { .. })
        ));
    }
}
