//! Cubes: products of literals over a fixed variable set.

use std::fmt;

/// A cube (product term) over `num_vars` Boolean variables.
///
/// Bit `num_vars-1-i` of `care` is set iff variable `i` is a literal of
/// the product; `value` holds the literal polarity on care bits (0
/// elsewhere). This is the MSB-first convention shared with
/// `ndetect_sim::PatternSpace`, so a full-care cube's `value` equals the
/// minterm index.
///
/// ```
/// use ndetect_fsm::Cube;
/// // "1-0" over 3 variables: v0=1, v1 free, v2=0.
/// let c = Cube::parse("1-0").unwrap();
/// assert!(c.matches(0b100));
/// assert!(c.matches(0b110));
/// assert!(!c.matches(0b001));
/// assert_eq!(c.to_string(), "1-0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Cube {
    num_vars: usize,
    care: u32,
    value: u32,
}

impl Cube {
    /// The universal cube (matches every assignment).
    #[must_use]
    pub fn universe(num_vars: usize) -> Self {
        assert!(num_vars <= 32);
        Cube {
            num_vars,
            care: 0,
            value: 0,
        }
    }

    /// A full-care cube equal to one minterm.
    #[must_use]
    pub fn minterm(num_vars: usize, index: u32) -> Self {
        assert!(num_vars <= 32);
        let mask = if num_vars == 32 {
            u32::MAX
        } else {
            (1u32 << num_vars) - 1
        };
        debug_assert!(index <= mask);
        Cube {
            num_vars,
            care: mask,
            value: index & mask,
        }
    }

    /// Builds a cube from raw (care, value) masks.
    ///
    /// # Panics
    ///
    /// Panics if `value` has bits outside `care`.
    #[must_use]
    pub fn from_masks(num_vars: usize, care: u32, value: u32) -> Self {
        assert!(num_vars <= 32);
        assert_eq!(value & !care, 0, "value bits outside care set");
        Cube {
            num_vars,
            care,
            value,
        }
    }

    /// Parses a KISS/PLA-style cube string of `0`, `1`, `-` characters
    /// (leftmost character is variable 0).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let num_vars = text.chars().count();
        if num_vars > 32 {
            return None;
        }
        let mut care = 0u32;
        let mut value = 0u32;
        for (i, ch) in text.chars().enumerate() {
            let bit = 1u32 << (num_vars - 1 - i);
            match ch {
                '0' => care |= bit,
                '1' => {
                    care |= bit;
                    value |= bit;
                }
                '-' | '~' | '2' => {}
                _ => return None,
            }
        }
        Some(Cube {
            num_vars,
            care,
            value,
        })
    }

    /// Number of variables of the cube's domain.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The care mask (MSB-first).
    #[must_use]
    pub fn care(&self) -> u32 {
        self.care
    }

    /// The literal polarities on care bits (MSB-first).
    #[must_use]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Number of literals (care bits).
    #[must_use]
    pub fn num_literals(&self) -> usize {
        self.care.count_ones() as usize
    }

    /// Whether `assignment` (a minterm index, MSB-first) satisfies the
    /// product.
    #[must_use]
    pub fn matches(&self, assignment: u32) -> bool {
        assignment & self.care == self.value
    }

    /// The literal of variable `i`: `Some(polarity)` or `None` if free.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars`.
    #[must_use]
    pub fn literal(&self, var: usize) -> Option<bool> {
        assert!(var < self.num_vars);
        let bit = 1u32 << (self.num_vars - 1 - var);
        if self.care & bit == 0 {
            None
        } else {
            Some(self.value & bit != 0)
        }
    }

    /// Concatenates two cubes over disjoint variable tails: the result
    /// ranges over `self`'s variables followed by `other`'s.
    #[must_use]
    pub fn concat(&self, other: &Cube) -> Cube {
        let num_vars = self.num_vars + other.num_vars;
        assert!(num_vars <= 32);
        Cube {
            num_vars,
            care: (self.care << other.num_vars) | other.care,
            value: (self.value << other.num_vars) | other.value,
        }
    }

    /// Returns `true` if every assignment matching `other` also matches
    /// `self`.
    #[must_use]
    pub fn covers(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.num_vars, other.num_vars);
        // self's literals must be a subset of other's, with equal values.
        self.care & !other.care == 0 && other.value & self.care == self.value
    }

    /// Returns `true` if the two cubes share at least one assignment.
    #[must_use]
    pub fn intersects(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.num_vars, other.num_vars);
        let common = self.care & other.care;
        (self.value ^ other.value) & common == 0
    }

    /// Enumerates all minterm indices covered by this cube (ascending).
    #[must_use]
    pub fn minterms(&self) -> Vec<u32> {
        let free = (!self.care)
            & if self.num_vars == 32 {
                u32::MAX
            } else {
                (1u32 << self.num_vars) - 1
            };
        let free_bits: Vec<u32> = (0..32).filter(|&b| free >> b & 1 == 1).collect();
        let mut out = Vec::with_capacity(1 << free_bits.len());
        for combo in 0u32..(1 << free_bits.len()) {
            let mut m = self.value;
            for (k, &b) in free_bits.iter().enumerate() {
                if combo >> k & 1 == 1 {
                    m |= 1 << b;
                }
            }
            out.push(m);
        }
        out.sort_unstable();
        out
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.num_vars {
            match self.literal(i) {
                Some(true) => write!(f, "1")?,
                Some(false) => write!(f, "0")?,
                None => write!(f, "-")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-", "01-", "1-0-1", "--------"] {
            assert_eq!(Cube::parse(s).unwrap().to_string(), s);
        }
        assert!(Cube::parse("01x2?").is_none());
    }

    #[test]
    fn minterm_matches_only_itself() {
        let c = Cube::minterm(4, 6);
        for m in 0..16 {
            assert_eq!(c.matches(m), m == 6);
        }
        assert_eq!(c.minterms(), vec![6]);
    }

    #[test]
    fn universe_matches_everything() {
        let c = Cube::universe(3);
        assert_eq!(c.minterms().len(), 8);
        assert_eq!(c.num_literals(), 0);
    }

    #[test]
    fn matching_respects_msb_first() {
        // "1-0": var0 = 1 (MSB), var2 = 0 (LSB).
        let c = Cube::parse("1-0").unwrap();
        assert_eq!(c.minterms(), vec![0b100, 0b110]);
    }

    #[test]
    fn concat_places_self_high() {
        let a = Cube::parse("1-").unwrap();
        let b = Cube::parse("01").unwrap();
        let c = a.concat(&b);
        assert_eq!(c.to_string(), "1-01");
        assert!(c.matches(0b1001));
        assert!(c.matches(0b1101));
        assert!(!c.matches(0b0101));
    }

    #[test]
    fn covers_and_intersects() {
        let big = Cube::parse("1--").unwrap();
        let small = Cube::parse("1-0").unwrap();
        let other = Cube::parse("0--").unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.intersects(&small));
        assert!(!big.intersects(&other));
        assert!(big.covers(&big));
    }

    #[test]
    fn literal_extraction() {
        let c = Cube::parse("0-1").unwrap();
        assert_eq!(c.literal(0), Some(false));
        assert_eq!(c.literal(1), None);
        assert_eq!(c.literal(2), Some(true));
    }
}
