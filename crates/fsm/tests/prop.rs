//! Property tests for the FSM substrate: cube algebra, QM minimization,
//! KISS2/PLA round trips, and synthesis equivalence.

use ndetect_fsm::{
    parse_kiss2, parse_pla, qm, random_fsm, synthesize, write_kiss2, write_pla, Cube, MinimizeMode,
    RandomFsmConfig, StateEncoding, SynthOptions,
};
use proptest::prelude::*;

fn arb_cube(num_vars: usize) -> impl Strategy<Value = Cube> {
    prop::collection::vec(0u8..3, num_vars).prop_map(move |chars| {
        let text: String = chars
            .iter()
            .map(|c| match c {
                0 => '0',
                1 => '1',
                _ => '-',
            })
            .collect();
        Cube::parse(&text).expect("valid cube text")
    })
}

proptest! {
    /// `covers` is equivalent to minterm-set inclusion; `intersects` to
    /// non-empty minterm intersection.
    #[test]
    fn cube_algebra_matches_minterm_semantics(
        a in arb_cube(5),
        b in arb_cube(5),
    ) {
        let ma: Vec<u32> = a.minterms();
        let mb: Vec<u32> = b.minterms();
        let subset = mb.iter().all(|m| ma.contains(m));
        prop_assert_eq!(a.covers(&b), subset, "covers {} {}", a, b);
        let inter = ma.iter().any(|m| mb.contains(m));
        prop_assert_eq!(a.intersects(&b), inter, "intersects {} {}", a, b);
    }

    /// QM minimization implements exactly the specified function.
    #[test]
    fn qm_is_exact_on_random_functions(
        num_vars in 2usize..=6,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut on = Vec::new();
        let mut dc = Vec::new();
        for m in 0..(1u32 << num_vars) {
            match next() % 4 {
                0 => on.push(m),
                1 => dc.push(m),
                _ => {}
            }
        }
        let cover = qm::minimize(num_vars, &on, &dc);
        for m in 0..(1u32 << num_vars) {
            let val = qm::cover_matches(&cover, m);
            if on.contains(&m) {
                prop_assert!(val, "on minterm {} uncovered", m);
            } else if !dc.contains(&m) {
                prop_assert!(!val, "off minterm {} covered", m);
            }
        }
        // Primality: no literal of any cube can be dropped without
        // covering an off-set minterm.
        for cube in &cover {
            for var in 0..num_vars {
                if cube.literal(var).is_none() { continue; }
                let bit = 1u32 << (num_vars - 1 - var);
                let bigger = Cube::from_masks(num_vars, cube.care() & !bit, cube.value() & !bit);
                let leaks = bigger.minterms().iter().any(|m| !on.contains(m) && !dc.contains(m));
                prop_assert!(leaks, "cube {} is not prime (drop var {})", cube, var);
            }
        }
    }

    /// Random FSMs round-trip through KISS2 text up to state
    /// renumbering (the parser interns states in first-appearance
    /// order): same state names, same reset, same behaviour on every
    /// (state, minterm) pair.
    #[test]
    fn kiss2_round_trip(seed in any::<u64>(), states in 1usize..=9, inputs in 1usize..=4) {
        let fsm = random_fsm("rt", &RandomFsmConfig {
            num_inputs: inputs,
            num_outputs: 2,
            num_states: states,
            seed,
            ..Default::default()
        });
        let text = write_kiss2(&fsm);
        let back = parse_kiss2("rt", &text).expect("own output parses");
        prop_assert_eq!(back.num_inputs(), fsm.num_inputs());
        prop_assert_eq!(back.num_outputs(), fsm.num_outputs());
        // Same state-name population (order may differ) and same reset.
        let mut a: Vec<&String> = fsm.states().iter().collect();
        let mut b: Vec<&String> = back.states().iter().collect();
        a.sort(); b.sort();
        prop_assert_eq!(a, b);
        prop_assert_eq!(
            &fsm.states()[fsm.reset_state()],
            &back.states()[back.reset_state()]
        );
        // Behavioural equality keyed by state name.
        for (si, name) in fsm.states().iter().enumerate() {
            let bi = back.state_index(name).expect("state survives");
            for m in 0..(1u32 << fsm.num_inputs()) {
                match (fsm.lookup(m, si), back.lookup(m, bi)) {
                    (None, None) => {}
                    (Some(ta), Some(tb)) => {
                        prop_assert_eq!(&fsm.states()[ta.to], &back.states()[tb.to]);
                        prop_assert_eq!(&ta.outputs, &tb.outputs);
                    }
                    (x, y) => prop_assert!(
                        false,
                        "specification mismatch at state {} minterm {}: {:?} vs {:?}",
                        name, m, x.is_some(), y.is_some()
                    ),
                }
            }
        }
    }

    /// Synthesis (any mode) implements the table on specified entries.
    #[test]
    fn synthesis_equivalence(seed in any::<u64>(), states in 2usize..=6) {
        let fsm = random_fsm("synth", &RandomFsmConfig {
            num_inputs: 2,
            num_outputs: 2,
            num_states: states,
            seed,
            ..Default::default()
        });
        let enc = StateEncoding::binary(fsm.num_states());
        for mode in [MinimizeMode::Never, MinimizeMode::Always, MinimizeMode::Heuristic] {
            let netlist = synthesize(&fsm, &enc, SynthOptions { minimize: mode })
                .expect("synthesizes");
            let ni = fsm.num_inputs();
            let nb = enc.num_bits();
            for code in 0..(1u32 << nb) {
                let Some(state) = enc.state_of_code(code) else { continue };
                for m in 0..(1u32 << ni) {
                    let Some(t) = fsm.lookup(m, state) else { continue };
                    let mut bits = Vec::new();
                    for i in 0..ni { bits.push((m >> (ni - 1 - i)) & 1 == 1); }
                    for j in 0..nb { bits.push((code >> (nb - 1 - j)) & 1 == 1); }
                    let outs = netlist.eval_bool(&bits);
                    let to_code = enc.code(t.to);
                    for j in 0..nb {
                        prop_assert_eq!(
                            outs[fsm.num_outputs() + j],
                            (to_code >> (nb - 1 - j)) & 1 == 1,
                            "mode {:?} ns{} m={} code={}", mode, j, m, code
                        );
                    }
                }
            }
        }
    }

    /// PLA text round-trips and the synthesized netlist matches PLA
    /// evaluation on every minterm.
    #[test]
    fn pla_round_trip_and_synthesis(
        num_inputs in 1usize..=5,
        rows in prop::collection::vec((any::<u64>(), 0u8..3, 0u8..3), 1..12),
    ) {
        use ndetect_fsm::{Pla, PlaRow, OutputBit};
        let to_bit = |c: u8| match c { 0 => OutputBit::Zero, 1 => OutputBit::One, _ => OutputBit::DontCare };
        let pla_rows: Vec<PlaRow> = rows.iter().map(|&(seed, o1, o2)| {
            let text: String = (0..num_inputs).map(|i| {
                match (seed >> (2 * i)) & 3 { 0 => '0', 1 => '1', _ => '-' }
            }).collect();
            PlaRow {
                input: Cube::parse(&text).expect("valid"),
                outputs: vec![to_bit(o1), to_bit(o2)],
            }
        }).collect();
        let pla = Pla::new("prop", num_inputs, 2, pla_rows);
        let text = write_pla(&pla);
        let back = parse_pla("prop", &text).expect("own output parses");
        prop_assert_eq!(&pla, &back);
        let netlist = pla.synthesize().expect("synthesizes");
        for m in 0..(1u32 << num_inputs) {
            let bits: Vec<bool> = (0..num_inputs)
                .map(|i| (m >> (num_inputs - 1 - i)) & 1 == 1)
                .collect();
            prop_assert_eq!(netlist.eval_bool(&bits), pla.eval(m), "minterm {}", m);
        }
    }
}
