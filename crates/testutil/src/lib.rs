//! Internal test utilities shared across the workspace's test suites:
//! seeded random netlist generation and the matching proptest strategy.
//!
//! Not part of the public API surface of the project; `publish = false`.

#![forbid(unsafe_code)]

use ndetect_netlist::{GateKind, Netlist, NetlistBuilder, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for [`random_netlist`].
#[derive(Clone, Copy, Debug)]
pub struct RandomNetlistConfig {
    /// Number of primary inputs (1..=12 recommended for exhaustive use).
    pub num_inputs: usize,
    /// Number of gates to create.
    pub num_gates: usize,
    /// Number of primary outputs (drawn from the last gates).
    pub num_outputs: usize,
}

impl Default for RandomNetlistConfig {
    fn default() -> Self {
        RandomNetlistConfig {
            num_inputs: 4,
            num_gates: 12,
            num_outputs: 2,
        }
    }
}

/// Builds a deterministic pseudo-random combinational DAG: each gate
/// picks a random kind and random already-created fanins, so the result
/// is always acyclic; outputs are taken from the latest gates so that
/// most of the circuit is observable.
pub fn random_netlist(seed: u64, config: &RandomNetlistConfig) -> Netlist {
    assert!(config.num_inputs >= 1 && config.num_gates >= 1 && config.num_outputs >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e57_ab1e_u64);
    let mut b = NetlistBuilder::new(format!("rand{seed}"));
    let mut nodes: Vec<NodeId> = (0..config.num_inputs)
        .map(|i| b.input(format!("i{i}")))
        .collect();

    const KINDS: &[GateKind] = &[
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    for g in 0..config.num_gates {
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let arity = match kind {
            GateKind::Not | GateKind::Buf => 1,
            // Fanins are drawn with replacement, so arity never needs to
            // be capped by the number of available nodes.
            _ => rng.gen_range(2..=3),
        };
        let fanins: Vec<NodeId> = (0..arity)
            .map(|_| nodes[rng.gen_range(0..nodes.len())])
            .collect();
        let id = b
            .gate(kind, format!("g{g}"), &fanins)
            .expect("fresh names and valid arity");
        nodes.push(id);
    }
    let num_outputs = config.num_outputs.min(config.num_gates);
    for k in 0..num_outputs {
        b.output(nodes[nodes.len() - 1 - k]);
    }
    b.build().expect("randomly grown DAG is valid")
}

/// Proptest strategy producing random netlists with up to `max_inputs`
/// inputs — small enough for exhaustive cross-checking against scalar
/// oracles.
pub fn arb_netlist(max_inputs: usize) -> impl Strategy<Value = Netlist> {
    arb_netlist_sized(max_inputs, 20)
}

/// Like [`arb_netlist`], with an explicit gate budget: larger budgets
/// yield deeper DAGs with more reconvergence and wider fanout — the
/// regime that stresses frontier-pruned (event-driven) fault
/// propagation, where effects must die mid-cone without skipping any
/// observable path.
pub fn arb_netlist_sized(max_inputs: usize, max_gates: usize) -> impl Strategy<Value = Netlist> {
    (any::<u64>(), 1..=max_inputs, 1..=max_gates, 1usize..=3).prop_map(
        |(seed, num_inputs, num_gates, num_outputs)| {
            random_netlist(
                seed,
                &RandomNetlistConfig {
                    num_inputs,
                    num_gates,
                    num_outputs,
                },
            )
        },
    )
}

/// Proptest strategy producing random **sequential** netlists: a random
/// combinational core whose last `k` inputs are reinterpreted as
/// flip-flop outputs and last `k` outputs as the matching next-state
/// functions, for `k` drawn up to `min(inputs, outputs)`. `k = 0`
/// (purely combinational) is included on purpose — the time-frame
/// expansion must degrade gracefully to two shared-input frames.
pub fn arb_seq_netlist(max_inputs: usize) -> impl Strategy<Value = ndetect_netlist::SeqNetlist> {
    (arb_netlist(max_inputs), any::<u64>()).prop_map(|(n, ff_pick)| {
        let max_ffs = n.num_inputs().min(n.num_outputs());
        let num_ffs = usize::try_from(ff_pick % (max_ffs as u64 + 1)).expect("small modulus");
        let num_true_inputs = n.num_inputs() - num_ffs;
        let num_true_outputs = n.num_outputs() - num_ffs;
        let ffs: Vec<String> = n.inputs()[num_true_inputs..]
            .iter()
            .map(|&q| n.node_name(q).to_string())
            .collect();
        ndetect_netlist::SeqNetlist::from_parts(n, num_true_inputs, num_true_outputs, ffs)
            .expect("counts are consistent by construction")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomNetlistConfig::default();
        let a = random_netlist(7, &cfg);
        let b = random_netlist(7, &cfg);
        assert_eq!(
            ndetect_netlist::bench_format::write(&a),
            ndetect_netlist::bench_format::write(&b)
        );
    }

    #[test]
    fn respects_config() {
        let cfg = RandomNetlistConfig {
            num_inputs: 5,
            num_gates: 9,
            num_outputs: 2,
        };
        let n = random_netlist(3, &cfg);
        assert_eq!(n.num_inputs(), 5);
        assert_eq!(n.num_gates(), 9);
        assert_eq!(n.num_outputs(), 2);
    }
}
