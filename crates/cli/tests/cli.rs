//! Integration tests for the `ndet` CLI: drives `commands::dispatch`
//! in-process for exit-status checks, and the compiled binary for
//! output checks (the commands print to the process stdout).

use ndetect_cli::commands;
use std::process::Command;

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(ToString::to_string).collect()
}

fn run_binary(parts: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ndet"))
        .args(parts)
        .output()
        .expect("ndet binary runs");
    (
        out.status.success(),
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn dispatch_succeeds_on_core_commands() {
    assert_eq!(commands::dispatch(&args(&["list"])), Ok(()));
    assert_eq!(commands::dispatch(&args(&["stats", "figure1"])), Ok(()));
    assert_eq!(commands::dispatch(&args(&["worst", "figure1"])), Ok(()));
}

#[test]
fn dispatch_rejects_bad_invocations() {
    assert!(commands::dispatch(&args(&[])).is_err());
    assert!(commands::dispatch(&args(&["frobnicate"])).is_err());
    assert!(commands::dispatch(&args(&["stats", "no-such-circuit"])).is_err());
    assert!(commands::dispatch(&args(&["worst", "figure1", "--floor", "NaN"])).is_err());
}

#[test]
fn list_shows_the_suite_and_figure1_is_buildable() {
    let (ok, stdout, _) = run_binary(&["list"]);
    assert!(ok);
    assert!(stdout.contains("circuit"), "header line:\n{stdout}");
    // A few paper-suite members that must always be present.
    for name in ["lion", "dk27", "bbtas", "cse"] {
        assert!(stdout.contains(name), "missing {name}:\n{stdout}");
    }
}

#[test]
fn stats_reports_figure1_fault_population() {
    let (ok, stdout, _) = run_binary(&["stats", "figure1"]);
    assert!(ok);
    assert!(
        stdout.contains("figure1: 4 inputs, 3 outputs, 3 gates, 11 lines"),
        "structure line:\n{stdout}"
    );
    // The paper's collapsed fault list has 16 entries and 10 detectable
    // bridging faults g0..g9 (2 undetectable excluded).
    assert!(
        stdout.contains("|F| = 16 collapsed stuck-at, |G| = 10 bridging"),
        "fault population:\n{stdout}"
    );
}

#[test]
fn worst_reports_the_papers_figure1_nmin_profile() {
    let (ok, stdout, _) = run_binary(&["worst", "figure1"]);
    assert!(ok);
    // nmin values from the paper: 4 of 10 faults at nmin <= 1,
    // nmin(g0) = 3 lifts coverage to 80% at n <= 3, and nmin(g6) = 4 is
    // the maximum, reaching 100% at n <= 4.
    assert!(stdout.contains("40.00% at n=1"), "n=1 coverage:\n{stdout}");
    let row = stdout
        .lines()
        .find(|l| l.starts_with("figure1") && l.contains('|') && l.contains("80.00"))
        .unwrap_or_else(|| panic!("missing coverage row:\n{stdout}"));
    let cells: Vec<&str> = row.split_whitespace().collect();
    assert_eq!(
        &cells[cells.len() - 4..],
        &["40.00", "40.00", "80.00", "100.00"],
        "coverage profile must match nmin(g0)=3, nmin(g6)=4:\n{stdout}"
    );
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let (ok, _, stderr) = run_binary(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "usage on stderr:\n{stderr}");
}

/// A throwaway cache directory, removed at the end of the test.
fn temp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ndet-cli-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/corpus")
}

#[test]
fn corpus_emits_csv_and_json_summaries() {
    let corpus = corpus_dir();
    let corpus = corpus.to_str().expect("utf8 path");
    let (ok, csv, _) = run_binary(&["corpus", corpus]);
    assert!(ok);
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some(
            "circuit,mode,inputs,outputs,gates,targets,bridges,cov1_pct,cov10_pct,tail11,max_nmin,space,gen1,gen5,gen10,kernel,peak_bytes"
        )
    );
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 4, "4 corpus circuits:\n{csv}");
    // Sorted walk: c17, figure1, mux_parity, s27; figure1's numbers
    // are the paper's. s27 contains DFFs, so it classifies as a `seq`
    // row analysed through its two-frame transition expansion — the
    // structure columns describe the sequential circuit itself.
    assert!(rows[0].starts_with("c17,full,5,2,6,22,26,"), "{csv}");
    assert!(
        rows[1].starts_with("figure1,full,4,3,3,16,10,40.00,100.00,0,4,16,"),
        "{csv}"
    );
    assert!(rows[2].starts_with("mux_parity,full,"), "{csv}");
    assert!(rows[3].starts_with("s27,seq,4,1,"), "{csv}");
    // Generated-set sizes: monotone in n, never above the exhaustive
    // baseline |U| = 2^inputs.
    for row in &rows {
        let cells: Vec<&str> = row.split(',').collect();
        let space: usize = cells[11].parse().expect("space cell");
        let gen1: usize = cells[12].parse().expect("gen1 cell");
        let gen5: usize = cells[13].parse().expect("gen5 cell");
        let gen10: usize = cells[14].parse().expect("gen10 cell");
        assert!(gen1 >= 1 && gen1 <= gen5 && gen5 <= gen10, "{row}");
        assert!(gen10 <= space, "{row}");
        // Kernel/memory reporting: unbounded runs use the full kernel
        // and report a non-zero per-worker working set.
        assert_eq!(cells[15], "full", "{row}");
        let peak: u64 = cells[16].parse().expect("peak_bytes cell");
        assert!(peak > 0, "{row}");
    }

    let (ok, json, _) = run_binary(&["corpus", corpus, "--format", "json"]);
    assert!(ok);
    assert!(json.trim_start().starts_with('['), "{json}");
    assert!(json.trim_end().ends_with(']'), "{json}");
    assert!(json.contains("\"circuit\": \"figure1\""), "{json}");
    assert!(json.contains("\"max_nmin\": 4"), "{json}");
    assert!(json.contains("\"space\": 16"), "{json}");
    assert!(json.contains("\"gen1\": "), "{json}");
    assert!(json.contains("\"kernel\": \"full\""), "{json}");
    assert!(json.contains("\"peak_bytes\": "), "{json}");

    // A 1-byte budget must not change any analysis column (budget is a
    // performance knob, not a semantic one). These fixtures are all
    // single-block, so the kernel stays `full` even under the cap — the
    // tiled path is exercised by the wider differential tests.
    let (ok, tiny_csv, _) = run_binary(&["corpus", corpus, "--mem-budget", "1"]);
    assert!(ok);
    for (a, b) in csv.lines().zip(tiny_csv.lines()).skip(1) {
        let a_cells: Vec<&str> = a.split(',').collect();
        let b_cells: Vec<&str> = b.split(',').collect();
        assert_eq!(a_cells[..15], b_cells[..15], "analysis columns differ");
    }

    let (ok, _, _) = run_binary(&["corpus", corpus, "--format", "yaml"]);
    assert!(!ok, "unknown format must fail");
    let (ok, _, _) = run_binary(&["corpus", "/nonexistent-dir"]);
    assert!(!ok, "missing directory must fail");
}

#[test]
fn gen_reports_a_satisfying_compact_set() {
    let (ok, stdout, stderr) = run_binary(&["gen", "figure1", "--n", "1", "--compact"]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("generated 1-detection set:"),
        "summary line:\n{stdout}"
    );
    assert!(stdout.contains(", compacted"), "{stdout}");
    assert!(stdout.contains("targets: 16 detectable of 16"), "{stdout}");
    assert!(stdout.contains("bridging coverage:"), "{stdout}");
    // The vector list is the last line; it must be far below |U| = 16.
    let vectors = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('['))
        .unwrap_or_else(|| panic!("missing vector list:\n{stdout}"));
    let count = vectors.trim_matches(['[', ']']).split_whitespace().count();
    assert!((1..=8).contains(&count), "{stdout}");
}

#[test]
fn gen_warm_reruns_hit_the_cache_with_identical_output() {
    let dir = temp_cache("gen-warm");
    let dirs = dir.to_str().expect("utf8 path");
    let (ok, cold, _) = run_binary(&[
        "gen",
        "figure1",
        "--n",
        "5",
        "--compact",
        "--cache-dir",
        dirs,
    ]);
    assert!(ok);
    let (ok, warm, _) = run_binary(&[
        "gen",
        "figure1",
        "--n",
        "5",
        "--compact",
        "--cache-dir",
        dirs,
    ]);
    assert!(ok);
    assert_eq!(cold, warm, "warm generation must be byte-identical");

    let (ok, stats, _) = run_binary(&["cache", "stats", "--cache-dir", dirs]);
    assert!(ok);
    // Universe + generated set, each hit once on the warm run.
    assert!(stats.contains("entries: 2"), "{stats}");
    assert!(stats.contains("hits: 2"), "{stats}");
    assert!(stats.contains("misses: 2"), "{stats}");

    // A different seed is a different artifact (a third entry) and a
    // different (but still valid) invocation.
    let (ok, seeded, _) = run_binary(&[
        "gen",
        "figure1",
        "--n",
        "5",
        "--compact",
        "--seed",
        "9",
        "--cache-dir",
        dirs,
    ]);
    assert!(ok);
    assert!(seeded.contains("generated 5-detection set:"), "{seeded}");
    let (ok, stats, _) = run_binary(&["cache", "stats", "--cache-dir", dirs]);
    assert!(ok);
    assert!(stats.contains("entries: 3"), "{stats}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_recursive_walks_subdirectories_in_sorted_order() {
    let dir = temp_cache("recursive-corpus");
    std::fs::create_dir_all(dir.join("sub/deep")).unwrap();
    std::fs::write(
        dir.join("top.bench"),
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("sub/middle.bench"),
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("sub/deep/bottom.bench"),
        "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
    )
    .unwrap();

    // Without --recursive only the top-level file is seen.
    let (ok, csv, _) = run_binary(&["corpus", dir.to_str().unwrap()]);
    assert!(ok);
    assert!(csv.contains("top,full,"), "{csv}");
    assert!(!csv.contains("middle"), "{csv}");
    assert!(!csv.contains("bottom"), "{csv}");

    // With --recursive every file appears, ordered by sorted full path:
    // sub/deep/bottom.bench < sub/middle.bench < top.bench.
    let (ok, csv, _) = run_binary(&["corpus", "--recursive", dir.to_str().unwrap()]);
    assert!(ok);
    let order: Vec<&str> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').next().unwrap())
        .collect();
    assert_eq!(order, vec!["bottom", "middle", "top"], "{csv}");

    // Determinism: a second run produces byte-identical output.
    let (ok, again, _) = run_binary(&["corpus", "--recursive", dir.to_str().unwrap()]);
    assert!(ok);
    assert_eq!(csv, again);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_cones_fallback_kicks_in_below_max_inputs() {
    let corpus = corpus_dir();
    let (ok, csv, _) = run_binary(&["corpus", corpus.to_str().unwrap(), "--max-inputs", "4"]);
    assert!(ok);
    // c17 (5 inputs) and mux_parity (5 inputs) fall back to the
    // per-output-cone partition; figure1 (4 inputs) stays exhaustive.
    assert!(csv.contains("c17,cones,"), "{csv}");
    assert!(csv.contains("figure1,full,"), "{csv}");
    assert!(csv.contains("mux_parity,cones,"), "{csv}");
}

#[test]
fn corpus_marks_fully_unanalysable_circuits_as_skipped() {
    // A circuit whose every cone exceeds --max-inputs must report
    // empty coverage, not a fabricated 100%.
    let dir = temp_cache("skipped-corpus");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("wide.bench"),
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\ny = AND(a, b, c, d, e)\n",
    )
    .unwrap();
    let (ok, csv, stderr) = run_binary(&["corpus", dir.to_str().unwrap(), "--max-inputs", "4"]);
    assert!(ok, "{stderr}");
    assert!(csv.contains("wide,skipped,5,1,1,0,0,,,0,"), "{csv}");
    let (ok, json, _) = run_binary(&[
        "corpus",
        dir.to_str().unwrap(),
        "--max-inputs",
        "4",
        "--format",
        "json",
    ]);
    assert!(ok);
    assert!(json.contains("\"cov10_pct\": null"), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_tolerates_malformed_files_as_error_rows() {
    // One malformed .bench must not abort the run: it becomes an
    // `error` row (details on stderr) and every other file is still
    // analysed.
    let dir = temp_cache("error-corpus");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("broken.bench"),
        "INPUT(a)\nOUTPUT(y)\ny = FROB(a, what)\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("good.bench"),
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
    )
    .unwrap();
    let (ok, csv, stderr) = run_binary(&["corpus", dir.to_str().unwrap()]);
    assert!(ok, "malformed file must not abort the corpus run: {stderr}");
    assert!(csv.contains("broken,error,0,0,0,0,0,,,0,"), "{csv}");
    assert!(csv.contains("good,full,2,1,1,"), "{csv}");
    assert!(stderr.contains("corpus error:"), "{stderr}");
    assert!(stderr.contains("1 of 2 files failed"), "{stderr}");

    let (ok, json, _) = run_binary(&["corpus", dir.to_str().unwrap(), "--format", "json"]);
    assert!(ok);
    assert!(json.contains("\"mode\": \"error\""), "{json}");
    assert!(json.contains("\"circuit\": \"good\""), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_broken_cache_dir_degrades_analysis_and_fails_cache_maintenance() {
    // list/synth/dot never touch the store, so an unusable
    // NDETECT_CACHE_DIR must not break them (and must not create
    // directories as a side effect).
    let out = Command::new(env!("CARGO_BIN_EXE_ndet"))
        .args(["list"])
        .env("NDETECT_CACHE_DIR", "/dev/null/not-a-dir")
        .output()
        .expect("ndet binary runs");
    assert!(out.status.success(), "list must ignore the cache dir");
    // Analysis commands warn and run uncached — the cache is
    // best-effort, so a broken dir can never fail a request — and the
    // output is byte-identical to an uncached run.
    let out = Command::new(env!("CARGO_BIN_EXE_ndet"))
        .args(["worst", "figure1"])
        .env("NDETECT_CACHE_DIR", "/dev/null/not-a-dir")
        .output()
        .expect("ndet binary runs");
    assert!(out.status.success(), "worst must degrade, not fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("continuing uncached"), "{stderr}");
    let (ok, clean, _) = run_binary(&["worst", "figure1"]);
    assert!(ok);
    assert_eq!(String::from_utf8_lossy(&out.stdout), clean);
    // Cache maintenance pointed at the same dir still fails loudly: a
    // repair/verify that silently no-ops would hide real damage.
    let out = Command::new(env!("CARGO_BIN_EXE_ndet"))
        .args(["cache", "stats"])
        .env("NDETECT_CACHE_DIR", "/dev/null/not-a-dir")
        .output()
        .expect("ndet binary runs");
    assert!(
        !out.status.success(),
        "cache stats must report the broken dir"
    );
}

#[test]
fn cache_subcommands_and_warm_analysis_round_trip() {
    let dir = temp_cache("cache-cmds");
    let dirs = dir.to_str().expect("utf8 path");

    // No cache configured -> cache stats errors with guidance.
    let (ok, _, stderr) = run_binary(&["cache", "stats"]);
    assert!(!ok);
    assert!(stderr.contains("cache-dir"), "{stderr}");

    // Cold worst run populates the store; warm run prints identically.
    let (ok, cold, _) = run_binary(&["worst", "figure1", "--cache-dir", dirs]);
    assert!(ok);
    let (ok, warm, _) = run_binary(&["worst", "figure1", "--cache-dir", dirs]);
    assert!(ok);
    assert_eq!(cold, warm, "warm output must be byte-identical");

    let (ok, stats, _) = run_binary(&["cache", "stats", "--cache-dir", dirs]);
    assert!(ok);
    assert!(stats.contains("entries: 2"), "{stats}"); // universe + nmin
    assert!(stats.contains("hits: 2"), "{stats}");
    assert!(stats.contains("misses: 2"), "{stats}");

    let (ok, verify, _) = run_binary(&["cache", "verify", "--cache-dir", dirs]);
    assert!(ok);
    assert!(verify.contains("valid entries: 2"), "{verify}");
    assert!(verify.contains("corrupt entries: 0"), "{verify}");

    // gc to zero bytes evicts everything; clear then leaves it empty.
    let (ok, gc, _) = run_binary(&["cache", "gc", "--cache-dir", dirs, "--max-bytes", "0"]);
    assert!(ok);
    assert!(gc.contains("evicted 2"), "{gc}");
    let (ok, _, _) = run_binary(&["cache", "clear", "--cache-dir", dirs]);
    assert!(ok);
    let (ok, stats, _) = run_binary(&["cache", "stats", "--cache-dir", dirs]);
    assert!(ok);
    assert!(stats.contains("entries: 0"), "{stats}");

    let (ok, _, _) = run_binary(&["cache", "frobnicate", "--cache-dir", dirs]);
    assert!(!ok, "unknown cache subcommand must fail");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_verify_reports_corruption_and_analysis_still_succeeds() {
    let dir = temp_cache("cache-corrupt");
    let dirs = dir.to_str().expect("utf8 path");
    let (ok, cold, _) = run_binary(&["worst", "c17", "--cache-dir", dirs]);
    assert!(ok);

    // Flip a byte in the middle of every cached entry (entries live in
    // fan-out shard subdirectories of objects/).
    let mut corrupted = 0;
    for entry in std::fs::read_dir(dir.join("objects")).expect("objects dir") {
        let path = entry.expect("entry").path();
        let files: Vec<_> = if path.is_dir() {
            std::fs::read_dir(&path)
                .expect("shard dir")
                .map(|e| e.expect("shard entry").path())
                .collect()
        } else {
            vec![path]
        };
        for file in files {
            let mut bytes = std::fs::read(&file).expect("entry bytes");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&file, &bytes).expect("rewrite entry");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "no cache entries found to corrupt");

    let (ok, _, _) = run_binary(&["cache", "verify", "--cache-dir", dirs]);
    assert!(!ok, "verify must flag corrupt entries");

    // Corrupt entries are silent misses: the analysis recomputes and
    // prints the same result.
    let (ok, redo, _) = run_binary(&["worst", "c17", "--cache-dir", dirs]);
    assert!(ok, "corrupt cache must not break analysis");
    assert_eq!(cold, redo);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flags_may_precede_positionals_everywhere() {
    // Flag-first orderings must parse for every positional extractor:
    // corpus directory, cache subcommand, and bench-file path/sub.
    let dir = temp_cache("flag-first");
    let dirs = dir.to_str().expect("utf8 path");
    let corpus = corpus_dir();
    let corpus = corpus.to_str().expect("utf8 path");

    let (ok, csv, stderr) = run_binary(&["corpus", "--format", "csv", corpus]);
    assert!(ok, "{stderr}");
    assert!(csv.contains("figure1,full,"), "{csv}");

    let (ok, _, stderr) = run_binary(&["cache", "--cache-dir", dirs, "stats"]);
    assert!(ok, "{stderr}");

    let bench = std::path::Path::new(corpus).join("figure1.bench");
    let bench = bench.to_str().expect("utf8 path");
    let (ok, _, stderr) = run_binary(&["bench-file", bench, "worst", "--cache-dir", dirs]);
    assert!(ok, "trailing --cache-dir on bench-file: {stderr}");
    let (ok, _, stderr) = run_binary(&["bench-file", "--cache-dir", dirs, bench, "stats"]);
    assert!(ok, "leading --cache-dir on bench-file: {stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_dir_flag_does_not_shadow_the_circuit_name() {
    // String-valued flags must not be mistaken for the positional
    // circuit name, in either order.
    let dir = temp_cache("flag-order");
    let dirs = dir.to_str().expect("utf8 path");
    assert_eq!(
        commands::dispatch(&args(&["stats", "--cache-dir", dirs, "figure1"])),
        Ok(())
    );
    assert_eq!(
        commands::dispatch(&args(&["stats", "figure1", "--cache-dir", dirs])),
        Ok(())
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end service lifecycle: spawn `ndet serve`, discover the bound
/// address via --addr-file, drive it with `ndet request`, check the
/// reply matches the one-shot output byte for byte, then SIGTERM and
/// require a clean exit 0 (the graceful drain path).
#[cfg(unix)]
#[test]
fn serve_binary_answers_requests_and_drains_on_sigterm() {
    let dir = temp_cache("serve-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let addr_file = dir.join("addr");
    let mut server = Command::new(env!("CARGO_BIN_EXE_ndet"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().expect("utf8 path"),
        ])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("serve spawns");

    // Wait for the server to announce its address.
    let addr = {
        let mut addr = None;
        for _ in 0..100 {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                addr = Some(text.trim().to_string());
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        addr.expect("server wrote --addr-file")
    };

    let (ok, served, stderr) = run_binary(&["request", &addr, "worst", "figure1"]);
    assert!(ok, "request failed: {stderr}");
    let (ok, oneshot, _) = run_binary(&["worst", "figure1"]);
    assert!(ok);
    assert_eq!(served, oneshot, "serve reply must match one-shot stdout");

    // Structured errors surface as a nonzero client exit.
    let (ok, _, stderr) = run_binary(&["request", &addr, "stats", "no-such-circuit"]);
    assert!(!ok, "analysis error must fail the client");
    assert!(stderr.contains("analysis"), "{stderr}");

    // SIGTERM → drain → exit 0.
    let pid = server.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success());
    let status = server.wait().expect("server exits");
    assert!(status.success(), "graceful shutdown must exit 0: {status}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failpoints_from_the_environment_degrade_but_never_corrupt() {
    let dir = temp_cache("chaos-env");
    let dirs = dir.to_str().expect("utf8 path");

    // A malformed spec is a loud startup error, not a silent no-op.
    let out = Command::new(env!("CARGO_BIN_EXE_ndet"))
        .args(["worst", "figure1", "--cache-dir", dirs])
        .env("NDETECT_FAILPOINTS", "store.save.write=sometimes:maybe")
        .output()
        .expect("ndet binary runs");
    assert!(!out.status.success(), "bad spec must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("NDETECT_FAILPOINTS"),
        "error must name the env var"
    );

    // With every store write failing, analysis output is byte-identical
    // to an unfailed run — the cache degrades, the answer does not.
    let failing = "store.save.create=always:return-err;\
                   store.save.write=always:torn-write;\
                   store.save.rename=always:return-err;\
                   store.counters.flush=always:return-err";
    let out = Command::new(env!("CARGO_BIN_EXE_ndet"))
        .args(["worst", "figure1", "--cache-dir", dirs])
        .env("NDETECT_FAILPOINTS", failing)
        .output()
        .expect("ndet binary runs");
    assert!(
        out.status.success(),
        "writes failing must not fail analysis"
    );
    let degraded = String::from_utf8_lossy(&out.stdout).to_string();
    let (ok, clean, _) = run_binary(&["worst", "figure1", "--cache-dir", dirs]);
    assert!(ok);
    assert_eq!(degraded, clean, "degraded output must be byte-identical");

    // Nothing torn was published: the store verifies clean and a warm
    // run (now with writes working) still succeeds.
    let (ok, _, stderr) = run_binary(&["cache", "verify", "--cache-dir", dirs]);
    assert!(ok, "torn writes must never publish: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_repair_quarantines_corruption_and_the_cache_recovers() {
    let dir = temp_cache("repair");
    let dirs = dir.to_str().expect("utf8 path");

    let (ok, _, _) = run_binary(&["worst", "figure1", "--cache-dir", dirs]);
    assert!(ok);
    // A healthy store repairs to "nothing quarantined".
    let (ok, stdout, _) = run_binary(&["cache", "repair", "--cache-dir", dirs]);
    assert!(ok);
    assert!(stdout.contains("quarantined: 0"), "{stdout}");

    // Corrupt one entry on disk; verify flags it, repair quarantines it.
    let victim = walk_entries(&dir)
        .into_iter()
        .next()
        .expect("cache has entries");
    std::fs::write(&victim, b"garbage").expect("corrupt the entry");
    let (ok, _, _) = run_binary(&["cache", "verify", "--cache-dir", dirs]);
    assert!(!ok, "verify must flag the corruption");
    let (ok, stdout, _) = run_binary(&["cache", "repair", "--cache-dir", dirs]);
    assert!(ok);
    assert!(stdout.contains("quarantined: 1"), "{stdout}");
    assert!(stdout.contains("MANIFEST"), "{stdout}");
    assert!(dir.join("quarantine/MANIFEST").is_file());

    // Post-repair the store is clean again and analysis still works.
    let (ok, _, _) = run_binary(&["cache", "verify", "--cache-dir", dirs]);
    assert!(ok, "repair must leave a clean store");
    let (ok, _, _) = run_binary(&["worst", "figure1", "--cache-dir", dirs]);
    assert!(ok);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every regular file under the store's objects/ tree (sharded or
/// flat), for corruption tests.
fn walk_entries(root: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("objects")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.is_file() {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn request_retry_on_flag_validation() {
    // Unknown tokens are rejected with the allowed list in the message.
    let err = commands::dispatch(&args(&[
        "request",
        "127.0.0.1:1",
        "ping",
        "--retry-on",
        "zebra",
    ]))
    .expect_err("bad token must fail");
    assert!(err.contains("--retry-on"), "{err}");
    assert!(err.contains("refused,busy,timeout"), "{err}");
    // Valid lists parse; with zero retries the request itself still
    // fails fast against a dead port.
    let err = commands::dispatch(&args(&[
        "request",
        "127.0.0.1:1",
        "ping",
        "--retry-on",
        "busy,timeout",
    ]))
    .expect_err("dead port must fail");
    assert!(err.contains("cannot connect"), "{err}");
}
