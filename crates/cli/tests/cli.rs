//! Integration tests for the `ndet` CLI: drives `commands::dispatch`
//! in-process for exit-status checks, and the compiled binary for
//! output checks (the commands print to the process stdout).

use ndetect_cli::commands;
use std::process::Command;

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(ToString::to_string).collect()
}

fn run_binary(parts: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ndet"))
        .args(parts)
        .output()
        .expect("ndet binary runs");
    (
        out.status.success(),
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn dispatch_succeeds_on_core_commands() {
    assert_eq!(commands::dispatch(&args(&["list"])), Ok(()));
    assert_eq!(commands::dispatch(&args(&["stats", "figure1"])), Ok(()));
    assert_eq!(commands::dispatch(&args(&["worst", "figure1"])), Ok(()));
}

#[test]
fn dispatch_rejects_bad_invocations() {
    assert!(commands::dispatch(&args(&[])).is_err());
    assert!(commands::dispatch(&args(&["frobnicate"])).is_err());
    assert!(commands::dispatch(&args(&["stats", "no-such-circuit"])).is_err());
    assert!(commands::dispatch(&args(&["worst", "figure1", "--floor", "NaN"])).is_err());
}

#[test]
fn list_shows_the_suite_and_figure1_is_buildable() {
    let (ok, stdout, _) = run_binary(&["list"]);
    assert!(ok);
    assert!(stdout.contains("circuit"), "header line:\n{stdout}");
    // A few paper-suite members that must always be present.
    for name in ["lion", "dk27", "bbtas", "cse"] {
        assert!(stdout.contains(name), "missing {name}:\n{stdout}");
    }
}

#[test]
fn stats_reports_figure1_fault_population() {
    let (ok, stdout, _) = run_binary(&["stats", "figure1"]);
    assert!(ok);
    assert!(
        stdout.contains("figure1: 4 inputs, 3 outputs, 3 gates, 11 lines"),
        "structure line:\n{stdout}"
    );
    // The paper's collapsed fault list has 16 entries and 10 detectable
    // bridging faults g0..g9 (2 undetectable excluded).
    assert!(
        stdout.contains("|F| = 16 collapsed stuck-at, |G| = 10 bridging"),
        "fault population:\n{stdout}"
    );
}

#[test]
fn worst_reports_the_papers_figure1_nmin_profile() {
    let (ok, stdout, _) = run_binary(&["worst", "figure1"]);
    assert!(ok);
    // nmin values from the paper: 4 of 10 faults at nmin <= 1,
    // nmin(g0) = 3 lifts coverage to 80% at n <= 3, and nmin(g6) = 4 is
    // the maximum, reaching 100% at n <= 4.
    assert!(stdout.contains("40.00% at n=1"), "n=1 coverage:\n{stdout}");
    let row = stdout
        .lines()
        .find(|l| l.starts_with("figure1") && l.contains('|') && l.contains("80.00"))
        .unwrap_or_else(|| panic!("missing coverage row:\n{stdout}"));
    let cells: Vec<&str> = row.split_whitespace().collect();
    assert_eq!(
        &cells[cells.len() - 4..],
        &["40.00", "40.00", "80.00", "100.00"],
        "coverage profile must match nmin(g0)=3, nmin(g6)=4:\n{stdout}"
    );
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let (ok, _, stderr) = run_binary(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "usage on stderr:\n{stderr}");
}
