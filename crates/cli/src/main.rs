//! `ndet` — command-line interface to the n-detection analysis library.
//!
//! ```text
//! ndet list                         # suite circuits and signatures
//! ndet stats <circuit>              # structure + fault population
//! ndet worst <circuit>              # worst-case nmin analysis
//! ndet average <circuit> [opts]     # Procedure-1 detection probabilities
//! ndet greedy <circuit> --n N       # compact greedy n-detection set
//! ndet synth <circuit>              # print synthesized .bench netlist
//! ndet bench-file <path> <command>  # analyze a user-provided .bench file
//! ndet cones <circuit|path>         # per-output-cone partitioned analysis
//! ```
//!
//! `<circuit>` is any suite name (see `ndet list`), `figure1`, or `c17`.

use ndetect_cli::commands;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
