//! Subcommand implementations for `ndet`.

use ndetect_core::atpg::{bridge_coverage, greedy_n_detection};
use ndetect_core::partition::analyze_output_cones_with;
use ndetect_core::report::{render_table2, render_table3, table2_row, table3_row};
use ndetect_core::{
    estimate_detection_probabilities, DetectionDefinition, NminDistribution, Procedure1Config,
    WorstCaseAnalysis,
};
use ndetect_faults::FaultUniverse;
use ndetect_netlist::{bench_format, Netlist, NetlistStats};

/// Usage text shown on errors.
pub const USAGE: &str = "usage:
  ndet list
  ndet stats <circuit>
  ndet worst <circuit> [--floor N]
  ndet average <circuit> [--k K] [--nmax N] [--def 1|2] [--tail T]
  ndet greedy <circuit> [--n N]
  ndet synth <circuit>
  ndet bench-file <path> <stats|worst|cones>
  ndet pla-file <path> <stats|worst|synth>
  ndet dot <circuit>
  ndet cones <circuit> [--max-inputs N]

<circuit>: a suite name (`ndet list`), `figure1`, or `c17`.

Every analysis command accepts `--threads N` (worker threads for fault
simulation; default: the NDETECT_THREADS environment variable, then all
available cores). Results are identical for every thread count.";

/// Parses and runs a command line; returns a user-facing error string on
/// failure.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let command = it.next().ok_or("missing command")?;
    let rest: Vec<&String> = it.collect();
    // Worker threads for fault simulation and analysis; 0 = auto
    // (NDETECT_THREADS, then the machine's available parallelism).
    let threads = flag_value(&rest, "--threads")?.unwrap_or(0);
    match command.as_str() {
        "list" => list(),
        "stats" => with_circuit(&rest, |_, n| stats(&n, threads)),
        "worst" => {
            let floor = flag_value(&rest, "--floor")?.unwrap_or(100);
            with_circuit(&rest, |_, n| worst(&n, floor, threads))
        }
        "average" => {
            let k = flag_value(&rest, "--k")?.unwrap_or(200);
            let nmax = flag_value(&rest, "--nmax")?.unwrap_or(10);
            let def = flag_value(&rest, "--def")?.unwrap_or(1) as u32;
            let tail = flag_value(&rest, "--tail")?.unwrap_or(nmax + 1);
            with_circuit(&rest, |name, n| {
                average(name, &n, k, nmax as u32, def, tail as u32, threads)
            })
        }
        "greedy" => {
            let n_det = flag_value(&rest, "--n")?.unwrap_or(10);
            with_circuit(&rest, |_, n| greedy(&n, n_det as u32, threads))
        }
        "synth" => with_circuit(&rest, |_, n| {
            print!("{}", bench_format::write(&n));
            Ok(())
        }),
        "bench-file" => bench_file(&rest, threads),
        "pla-file" => pla_file(&rest, threads),
        "dot" => with_circuit(&rest, |_, n| {
            print!("{}", ndetect_netlist::dot::write(&n));
            Ok(())
        }),
        "cones" => {
            let max_inputs = flag_value(&rest, "--max-inputs")?.unwrap_or(14);
            with_circuit(&rest, |_, n| cones(&n, max_inputs, threads))
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn flag_value(rest: &[&String], flag: &str) -> Result<Option<usize>, String> {
    for (i, arg) in rest.iter().enumerate() {
        if arg.as_str() == flag {
            let v = rest
                .get(i + 1)
                .ok_or_else(|| format!("missing value for {flag}"))?;
            return v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value for {flag}: `{v}`"));
        }
    }
    Ok(None)
}

fn with_circuit(
    rest: &[&String],
    f: impl FnOnce(&str, Netlist) -> Result<(), String>,
) -> Result<(), String> {
    let name = rest
        .iter()
        .find(|a| !a.starts_with("--") && !a.chars().all(|c| c.is_ascii_digit()))
        .ok_or("missing circuit name")?;
    let netlist = ndetect_circuits::build(name).map_err(|e| e.to_string())?;
    f(name, netlist)
}

fn list() -> Result<(), String> {
    println!(
        "{:<10} {:>6} {:>7} {:>7} {:>10} {:<14}",
        "circuit", "inputs", "outputs", "states", "sim bits", "source"
    );
    for spec in ndetect_circuits::suite() {
        println!(
            "{:<10} {:>6} {:>7} {:>7} {:>10} {:<14}",
            spec.name(),
            spec.inputs(),
            spec.outputs(),
            spec.states(),
            spec.total_input_bits(),
            format!("{:?}", spec.source()),
        );
    }
    println!("\nspecials: figure1 (paper example), c17 (ISCAS-85)");
    Ok(())
}

fn universe_of(netlist: &Netlist, threads: usize) -> Result<FaultUniverse, String> {
    FaultUniverse::build_with(
        netlist,
        ndetect_faults::UniverseOptions::with_threads(threads),
    )
    .map_err(|e| e.to_string())
}

fn stats(netlist: &Netlist, threads: usize) -> Result<(), String> {
    println!("{netlist}");
    println!("{}", NetlistStats::compute(netlist));
    let universe = universe_of(netlist, threads)?;
    println!("{universe}");
    Ok(())
}

fn worst(netlist: &Netlist, floor: usize, threads: usize) -> Result<(), String> {
    let universe = universe_of(netlist, threads)?;
    let wc = WorstCaseAnalysis::compute_with(&universe, threads);
    println!("{universe}");
    println!("{wc}");
    println!();
    print!("{}", render_table2(&[table2_row(netlist.name(), &wc)]));
    println!();
    print!("{}", render_table3(&[table3_row(netlist.name(), &wc)]));
    let dist = NminDistribution::collect(&wc, floor as u32);
    if !dist.is_empty() {
        println!("\nnmin distribution (nmin >= {floor}):");
        print!("{}", dist.render_ascii(24));
    }
    Ok(())
}

fn average(
    name: &str,
    netlist: &Netlist,
    k: usize,
    nmax: u32,
    def: u32,
    tail: u32,
    threads: usize,
) -> Result<(), String> {
    let definition = match def {
        1 => DetectionDefinition::Standard,
        2 => DetectionDefinition::SufficientlyDifferent,
        other => return Err(format!("--def must be 1 or 2, got {other}")),
    };
    let universe = universe_of(netlist, threads)?;
    let wc = WorstCaseAnalysis::compute_with(&universe, threads);
    let tracked = wc.tail_indices(tail);
    if tracked.is_empty() {
        println!("{name}: no untargeted faults with nmin >= {tail}; nothing to estimate");
        return Ok(());
    }
    let config = Procedure1Config {
        nmax,
        num_test_sets: k,
        definition,
        threads,
        ..Default::default()
    };
    let probs = estimate_detection_probabilities(&universe, &tracked, &config)
        .map_err(|e| e.to_string())?;
    println!(
        "{name}: {} tracked faults (nmin >= {tail}), K = {k}, definition {def}",
        tracked.len()
    );
    println!(
        "p({nmax},g) >= thresholds 1.0..0.0: {:?}",
        probs.histogram_row(nmax)
    );
    if let Some((pos, p)) = probs.min_probability(nmax) {
        println!(
            "lowest p({nmax},g) = {p:.3} for {}",
            universe.bridges()[tracked[pos]].name(universe.netlist())
        );
    }
    println!(
        "expected escapes at n = {nmax}: {:.2} of {} tracked faults",
        probs.expected_escapes(nmax),
        tracked.len()
    );
    Ok(())
}

fn greedy(netlist: &Netlist, n: u32, threads: usize) -> Result<(), String> {
    let universe = universe_of(netlist, threads)?;
    let set = greedy_n_detection(&universe, n);
    println!(
        "greedy {n}-detection set: {} tests, bridging coverage {:.2}%",
        set.len(),
        bridge_coverage(&universe, &set)
    );
    println!("{set}");
    Ok(())
}

fn pla_file(rest: &[&String], threads: usize) -> Result<(), String> {
    let path = rest.first().ok_or("missing .pla path")?;
    let sub = rest.get(1).map_or("stats", |s| s.as_str());
    let text =
        std::fs::read_to_string(path.as_str()).map_err(|e| format!("cannot read {path}: {e}"))?;
    let name = std::path::Path::new(path.as_str())
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("pla");
    let pla = ndetect_fsm::parse_pla(name, &text).map_err(|e| e.to_string())?;
    let netlist = pla.synthesize().map_err(|e| e.to_string())?;
    match sub {
        "stats" => stats(&netlist, threads),
        "worst" => worst(&netlist, 100, threads),
        "synth" => {
            print!("{}", bench_format::write(&netlist));
            Ok(())
        }
        other => Err(format!("unknown pla-file subcommand `{other}`")),
    }
}

fn bench_file(rest: &[&String], threads: usize) -> Result<(), String> {
    let path = rest.first().ok_or("missing .bench path")?;
    let sub = rest.get(1).map_or("stats", |s| s.as_str());
    let text =
        std::fs::read_to_string(path.as_str()).map_err(|e| format!("cannot read {path}: {e}"))?;
    let name = std::path::Path::new(path.as_str())
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    let netlist = bench_format::parse(name, &text).map_err(|e| e.to_string())?;
    match sub {
        "stats" => stats(&netlist, threads),
        "worst" => worst(&netlist, 100, threads),
        "cones" => cones(&netlist, 14, threads),
        other => Err(format!("unknown bench-file subcommand `{other}`")),
    }
}

fn cones(netlist: &Netlist, max_inputs: usize, threads: usize) -> Result<(), String> {
    let reports =
        analyze_output_cones_with(netlist, max_inputs, threads).map_err(|e| e.to_string())?;
    println!(
        "{}: {} output cones analysed (cones wider than {max_inputs} inputs skipped)",
        netlist.name(),
        reports.len()
    );
    println!(
        "{:<12} {:>6} {:>6} {:>7} {:>8} {:>9} {:>8}",
        "output", "inputs", "gates", "targets", "bridges", "cov@10", "tail11"
    );
    for r in reports {
        let cov10 = r
            .coverage
            .iter()
            .find(|(n, _)| *n == 10)
            .map_or(100.0, |(_, pct)| *pct);
        println!(
            "{:<12} {:>6} {:>6} {:>7} {:>8} {:>8.2}% {:>8}",
            r.output_name,
            r.num_inputs,
            r.num_gates,
            r.num_targets,
            r.num_bridges,
            cov10,
            r.tail_11
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<(), String> {
        let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
        dispatch(&owned)
    }

    #[test]
    fn rejects_missing_and_unknown_commands() {
        assert!(dispatch(&[]).is_err());
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn list_succeeds() {
        assert!(run(&["list"]).is_ok());
    }

    #[test]
    fn stats_and_worst_on_figure1() {
        assert!(run(&["stats", "figure1"]).is_ok());
        assert!(run(&["worst", "figure1"]).is_ok());
        assert!(run(&["stats", "not-a-circuit"]).is_err());
    }

    #[test]
    fn average_flag_validation() {
        assert!(run(&["average", "figure1", "--k", "10", "--nmax", "3", "--tail", "3"]).is_ok());
        assert!(run(&["average", "figure1", "--def", "7"]).is_err());
        assert!(run(&["average", "figure1", "--k"]).is_err());
        assert!(run(&["average", "figure1", "--k", "zebra"]).is_err());
    }

    #[test]
    fn greedy_synth_dot_cones() {
        assert!(run(&["greedy", "figure1", "--n", "2"]).is_ok());
        assert!(run(&["synth", "figure1"]).is_ok());
        assert!(run(&["dot", "c17"]).is_ok());
        assert!(run(&["cones", "c17"]).is_ok());
    }

    #[test]
    fn threads_flag_accepted_and_validated() {
        assert!(run(&["stats", "figure1", "--threads", "1"]).is_ok());
        assert!(run(&["worst", "figure1", "--threads", "2"]).is_ok());
        assert!(run(&[
            "average",
            "figure1",
            "--k",
            "10",
            "--nmax",
            "2",
            "--threads",
            "2"
        ])
        .is_ok());
        assert!(run(&["worst", "figure1", "--threads", "zebra"]).is_err());
        assert!(run(&["worst", "figure1", "--threads"]).is_err());
    }

    #[test]
    fn file_commands_validate_paths() {
        assert!(run(&["bench-file", "/nonexistent/x.bench"]).is_err());
        assert!(run(&["pla-file", "/nonexistent/x.pla"]).is_err());
    }
}
