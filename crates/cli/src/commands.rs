//! Subcommand implementations for `ndet`.

use ndetect_core::atpg::{bridge_coverage, greedy_n_detection};
use ndetect_core::partition::analyze_output_cones_budget;
use ndetect_core::{
    estimate_detection_probabilities_stored, DetectionDefinition, Procedure1Config,
    WorstCaseAnalysis,
};
use ndetect_faults::FaultUniverse;
use ndetect_netlist::{bench_format, Netlist, NetlistError, SeqNetlist};
use ndetect_seq::{expand_stored, FaultModel};
use ndetect_serve::render::{CorpusRequest, Knobs, StoreProvider};
use ndetect_sim::MemoryBudget;
use ndetect_store::Store;
use std::path::PathBuf;

mod serve_cmd;

/// Usage text shown on errors.
pub const USAGE: &str = "usage:
  ndet list
  ndet stats <circuit> [--seq] [--fault-model M]
  ndet worst <circuit> [--floor N] [--seq] [--fault-model M]
  ndet average <circuit> [--k K] [--nmax N] [--def 1|2] [--tail T]
              [--seq] [--fault-model M]
  ndet greedy <circuit> [--n N]
  ndet gen <circuit> [--n N] [--compact] [--seed S] [--seq]
          [--fault-model M]
  ndet synth <circuit>
  ndet bench-file <path> <stats|worst|cones> [--seq] [--fault-model M]
  ndet pla-file <path> <stats|worst|synth>
  ndet dot <circuit>
  ndet cones <circuit> [--max-inputs N]
  ndet corpus <dir> [--format csv|json] [--max-inputs N] [--recursive]
  ndet cache <stats|verify|repair|clear|gc> [--max-bytes N]
  ndet serve [--addr A] [--addr-file F] [--request-timeout-ms T]
             [--hot-universes N] [--hot-sets N] [--max-conns N] [--chaos]
  ndet request <addr> <verb> [args...] [--retry N] [--retry-on LIST]
  ndet trace report <file>

<circuit>: a suite name (`ndet list`), `figure1`, `c17`, or a bundled
sequential circuit (`s27`, `shift4`, `cnt3`). Sequential circuits are
analysed through deterministic two-frame broadside time-frame
expansion: flip-flop outputs become free pseudo-inputs of frame 1 and
the frame-2 flip-flop inputs are observed alongside the primary
outputs. `--fault-model M` picks the lowered fault model — `transition`
(default: slow-to-rise/slow-to-fall delay faults launched by frame 1
and captured in frame 2) or `stuck-at` (collapsed stuck-at faults of
the expanded netlist). `--seq` forces sequential interpretation
(registry lookup for named circuits, DFF-accepting parse for
`bench-file`); files containing DFFs are auto-detected either way.
`ndet corpus` classifies sequential `.bench` files as `seq` rows
analysed under the transition model.

`ndet serve` keeps an analysis process resident: it binds a TCP socket
(default 127.0.0.1:0; the chosen address is printed on stdout and, with
--addr-file, written to a file) and answers newline-delimited requests
(`stats <circuit>`, `worst <circuit> [floor=N]`, `gen <circuit> [n=N]
[compact] [seed=S]`, `corpus <dir> [format=csv|json] [max_inputs=N]
[recursive]`, `counters`, `metrics`, `ping`) with exactly the bytes the
matching one-shot command prints. Hot artifacts stay in an in-memory
LRU, identical concurrent requests coalesce into a single build,
connections beyond --max-conns get a one-line `err busy` reply, and
SIGTERM/ctrl-c drains in-flight work before exiting 0. `ndet request`
is the matching one-shot client: it sends one request line and prints
the reply payload; `--retry N` retries up to N times with exponential
backoff. By default a retry covers refused connections and `err busy` /
`err timeout` replies (for supervisors racing server startup and herds
hitting a saturated server); `--retry-on LIST` narrows or widens that
to any comma-separated subset of refused,busy,timeout,internal,
shutdown.

Fault injection: every command honours the NDETECT_FAILPOINTS
environment variable (`site=trigger:action` entries separated by `;`,
e.g. `store.save.write=always:return-err`) to deterministically inject
faults at named sites in the store, codec, engine, and serve layers —
see README \"Fault tolerance & chaos testing\" for the site table.
`ndet serve --chaos` additionally enables the `chaos set|list|clear`
verb for arming failpoints over the wire; without the flag the verb
answers `err denied`. `ndet cache repair` moves undecodable cache
entries into a `quarantine/` directory (with a MANIFEST recording the
original path and reason) instead of deleting them.

Every command accepts `--trace-out FILE` (or the NDETECT_TRACE
environment variable): spans covering the analysis hot paths — universe
build phases, kernel selection, store load/save, generator rounds,
serve request lifecycle — are appended to FILE as JSONL. `ndet trace
report <file>` aggregates such a file into a per-span time table.
`metrics` (over `ndet request`) returns a Prometheus-style text
exposition of the serve counters, store session counters, and request
latency histogram.

Every analysis command accepts `--threads N` (worker threads for fault
simulation; default: the NDETECT_THREADS environment variable, then all
available cores). Results are identical for every thread count.

Every analysis command accepts `--mem-budget B` (per-worker cap on the
fault-simulation working set, e.g. `16MiB`, `64K`, a plain byte count,
or `unbounded`; default: the NDETECT_MEM_BUDGET environment variable,
then unbounded). Bounded budgets stream block tiles through the kernel;
results are identical for every budget.

Every analysis command also accepts `--cache-dir DIR` (default: the
NDETECT_CACHE_DIR environment variable): a content-addressed on-disk
cache of fault universes and nmin vectors, making repeated analyses of
the same circuit incremental across invocations. `ndet cache` inspects
and maintains that directory (gc evicts least-recently-used entries
down to --max-bytes). The cache is strictly best-effort: an unusable
cache directory (read-only, full disk) makes analysis commands warn
once and continue uncached — only `ndet cache` itself treats an
unopenable store as fatal.";

/// Parses and runs a command line; returns a user-facing error string on
/// failure.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let command = it.next().ok_or("missing command")?;
    let rest: Vec<&String> = it.collect();
    // Failpoints from NDETECT_FAILPOINTS arm before anything touches
    // the store or engine; a malformed spec is a hard error so a typo'd
    // chaos run cannot silently test nothing.
    ndetect_chaos::init_from_env()?;
    // Tracing: an explicit --trace-out wins over NDETECT_TRACE; either
    // way the sink is flushed after the command so the JSONL is
    // complete even for buffered writers.
    match flag_str(&rest, "--trace-out")? {
        Some(path) => ndetect_obs::trace::init_file(path)
            .map_err(|e| format!("cannot open --trace-out file `{path}`: {e}"))?,
        None => {
            let _ = ndetect_obs::trace::init_from_env();
        }
    }
    let result = dispatch_command(command, &rest);
    ndetect_obs::trace::flush();
    result
}

fn dispatch_command(command: &str, rest: &[&String]) -> Result<(), String> {
    let rest: Vec<&String> = rest.to_vec();
    // Worker threads for fault simulation and analysis; 0 = auto
    // (NDETECT_THREADS, then the machine's available parallelism).
    let threads = flag_value(&rest, "--threads")?.unwrap_or(0);
    // Per-worker kernel memory budget; Auto = NDETECT_MEM_BUDGET, then
    // unbounded.
    let mem_budget = match flag_str(&rest, "--mem-budget")? {
        None => MemoryBudget::Auto,
        Some(v) => {
            MemoryBudget::parse(v).map_err(|e| format!("bad value for --mem-budget: {e}"))?
        }
    };
    let knobs = Knobs {
        threads,
        mem_budget,
    };
    match command {
        "list" => list(),
        "stats" => {
            let store = open_store_degraded(&rest)?;
            with_any_circuit(&rest, |_, kind| match kind {
                CircuitKind::Comb(n) => stats(&n, knobs, store.as_ref()),
                CircuitKind::Seq(s, m) => seq_stats(&s, m, knobs, store.as_ref()),
            })
        }
        "worst" => {
            let floor = flag_value(&rest, "--floor")?.unwrap_or(100);
            let store = open_store_degraded(&rest)?;
            with_any_circuit(&rest, |_, kind| match kind {
                CircuitKind::Comb(n) => worst(&n, floor, knobs, store.as_ref()),
                CircuitKind::Seq(s, m) => seq_worst(&s, m, floor, knobs, store.as_ref()),
            })
        }
        "average" => {
            let k = flag_value(&rest, "--k")?.unwrap_or(200);
            let nmax = flag_value(&rest, "--nmax")?.unwrap_or(10);
            let def = flag_value(&rest, "--def")?.unwrap_or(1) as u32;
            let tail = flag_value(&rest, "--tail")?.unwrap_or(nmax + 1);
            let store = open_store_degraded(&rest)?;
            with_any_circuit(&rest, |name, kind| {
                let universe = match kind {
                    CircuitKind::Comb(n) => universe_of(&n, knobs, store.as_ref())?,
                    CircuitKind::Seq(s, m) => seq_universe_of(&s, m, knobs, store.as_ref())?,
                };
                average(
                    name,
                    &universe,
                    k,
                    nmax as u32,
                    def,
                    tail as u32,
                    knobs,
                    store.as_ref(),
                )
            })
        }
        "greedy" => {
            let n_det = flag_value(&rest, "--n")?.unwrap_or(10);
            let store = open_store_degraded(&rest)?;
            with_circuit(&rest, |_, n| {
                greedy(&n, n_det as u32, knobs, store.as_ref())
            })
        }
        "gen" => {
            let n_det = flag_value(&rest, "--n")?.unwrap_or(10);
            let do_compact = flag_present(&rest, "--compact");
            let seed = flag_value(&rest, "--seed")?.map(|s| s as u64);
            let store = open_store_degraded(&rest)?;
            with_any_circuit(&rest, |_, kind| match kind {
                CircuitKind::Comb(n) => {
                    gen_set(&n, n_det as u32, do_compact, seed, knobs, store.as_ref())
                }
                CircuitKind::Seq(s, m) => {
                    seq_gen_set(&s, m, n_det as u32, do_compact, seed, knobs, store.as_ref())
                }
            })
        }
        "synth" => with_circuit(&rest, |_, n| {
            print!("{}", bench_format::write(&n));
            Ok(())
        }),
        "bench-file" => bench_file(&rest, knobs, open_store_degraded(&rest)?.as_ref()),
        "pla-file" => pla_file(&rest, knobs, open_store_degraded(&rest)?.as_ref()),
        "dot" => with_circuit(&rest, |_, n| {
            print!("{}", ndetect_netlist::dot::write(&n));
            Ok(())
        }),
        "cones" => {
            let max_inputs = flag_value(&rest, "--max-inputs")?.unwrap_or(14);
            let store = open_store_degraded(&rest)?;
            with_circuit(&rest, |_, n| cones(&n, max_inputs, knobs, store.as_ref()))
        }
        "corpus" => corpus(&rest, knobs, open_store_degraded(&rest)?.as_ref()),
        "cache" => cache(&rest, open_store(&rest)?.as_ref()),
        "serve" => serve_cmd::serve(&rest, open_store_degraded(&rest)?),
        "request" => serve_cmd::request(&rest),
        "trace" => trace_cmd(&rest),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// `ndet trace report <file>`: aggregate a JSONL trace (as written by
/// `--trace-out` / `NDETECT_TRACE`) into a per-span time table.
fn trace_cmd(rest: &[&String]) -> Result<(), String> {
    let pos = positionals(rest);
    match pos.first().copied() {
        Some("report") => {
            let path = pos.get(1).copied().ok_or("missing trace file path")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let report = ndetect_obs::TraceReport::from_jsonl(&text)?;
            print!("{}", ndetect_obs::render_report(&report));
            Ok(())
        }
        Some(other) => Err(format!("unknown trace subcommand `{other}`")),
        None => Err("missing trace subcommand (expected `report <file>`)".into()),
    }
}

fn flag_value(rest: &[&String], flag: &str) -> Result<Option<usize>, String> {
    match flag_str(rest, flag)? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value for {flag}: `{v}`")),
    }
}

fn flag_str<'a>(rest: &[&'a String], flag: &str) -> Result<Option<&'a str>, String> {
    for (i, arg) in rest.iter().enumerate() {
        if arg.as_str() == flag {
            return rest
                .get(i + 1)
                .map(|v| Some(v.as_str()))
                .ok_or_else(|| format!("missing value for {flag}"));
        }
    }
    Ok(None)
}

/// Flags that are pure presence toggles — they consume no value, so the
/// positional scanner must not swallow the token after them.
const BOOLEAN_FLAGS: &[&str] = &["--compact", "--recursive", "--chaos", "--seq"];

/// Whether a presence-toggle flag (one of [`BOOLEAN_FLAGS`]) was given.
fn flag_present(rest: &[&String], flag: &str) -> bool {
    debug_assert!(BOOLEAN_FLAGS.contains(&flag), "unregistered boolean flag");
    rest.iter().any(|arg| arg.as_str() == flag)
}

/// The cache directory selected by `--cache-dir`, falling back to the
/// `NDETECT_CACHE_DIR` environment variable; `None` when no cache
/// directory is configured.
fn cache_dir(rest: &[&String]) -> Result<Option<String>, String> {
    // An empty value (e.g. --cache-dir "$UNSET_VAR") disables caching
    // rather than rooting a store in the current directory.
    Ok(flag_str(rest, "--cache-dir")?
        .map(str::to_string)
        .or_else(|| std::env::var("NDETECT_CACHE_DIR").ok())
        .filter(|d| !d.is_empty()))
}

/// Opens the configured artifact store, failing hard when it cannot be
/// opened. Only `ndet cache` uses this: a maintenance command pointed
/// at a broken store must report it, not shrug.
fn open_store(rest: &[&String]) -> Result<Option<Store>, String> {
    match cache_dir(rest)? {
        None => Ok(None),
        Some(dir) => Store::open(&dir)
            .map(Some)
            .map_err(|e| format!("cannot open cache dir `{dir}`: {e}")),
    }
}

/// Opens the configured artifact store for an analysis command: the
/// cache is best-effort, so an unusable directory (read-only parent,
/// full disk) degrades to running uncached with a one-line warning
/// rather than failing the analysis.
fn open_store_degraded(rest: &[&String]) -> Result<Option<Store>, String> {
    match cache_dir(rest)? {
        None => Ok(None),
        Some(dir) => match Store::open(&dir) {
            Ok(store) => Ok(Some(store)),
            Err(e) => {
                eprintln!("ndet: cannot open cache dir `{dir}` ({e}); continuing uncached");
                Ok(None)
            }
        },
    }
}

/// The positional arguments: every token that is neither a `--flag` nor
/// the value following one (string-valued flags like `--cache-dir`
/// would otherwise be misread as positionals). Presence toggles
/// ([`BOOLEAN_FLAGS`]) consume no value.
fn positionals<'a>(rest: &[&'a String]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg.starts_with("--") {
            if !BOOLEAN_FLAGS.contains(&arg.as_str()) {
                let _ = it.next(); // the flag's value
            }
            continue;
        }
        out.push(arg.as_str());
    }
    out
}

fn with_circuit(
    rest: &[&String],
    f: impl FnOnce(&str, Netlist) -> Result<(), String>,
) -> Result<(), String> {
    let name = positionals(rest)
        .into_iter()
        .find(|a| !a.chars().all(|c| c.is_ascii_digit()))
        .ok_or("missing circuit name")?;
    let netlist = ndetect_circuits::build(name).map_err(|e| e.to_string())?;
    f(name, netlist)
}

/// A resolved circuit argument: combinational, or sequential paired
/// with the fault model its time-frame expansion lowers to.
enum CircuitKind {
    Comb(Netlist),
    Seq(SeqNetlist, FaultModel),
}

/// The `--fault-model` flag, parsed; `None` when absent.
fn fault_model_flag(rest: &[&String]) -> Result<Option<FaultModel>, String> {
    match flag_str(rest, "--fault-model")? {
        None => Ok(None),
        Some(v) => FaultModel::parse(v).map(Some).ok_or_else(|| {
            format!("bad value for --fault-model: `{v}` (expected transition or stuck-at)")
        }),
    }
}

/// Resolves a circuit name to combinational or sequential. The
/// combinational suite is tried first so existing names keep their
/// meaning; unknown names fall back to the sequential registry
/// (`s27`, `shift4`, `cnt3`). `--seq` skips the combinational lookup,
/// and `--fault-model` on a combinational circuit is an error —
/// fault-model selection only exists for time-frame expansion.
fn with_any_circuit(
    rest: &[&String],
    f: impl FnOnce(&str, CircuitKind) -> Result<(), String>,
) -> Result<(), String> {
    let name = positionals(rest)
        .into_iter()
        .find(|a| !a.chars().all(|c| c.is_ascii_digit()))
        .ok_or("missing circuit name")?;
    let model = fault_model_flag(rest)?;
    if !flag_present(rest, "--seq") {
        if let Ok(netlist) = ndetect_circuits::build(name) {
            if let Some(m) = model {
                return Err(format!(
                    "--fault-model {} selects a sequential fault model; `{name}` is combinational",
                    m.label()
                ));
            }
            return f(name, CircuitKind::Comb(netlist));
        }
    }
    match ndetect_circuits::build_seq(name) {
        Ok(seq) => f(name, CircuitKind::Seq(seq, model.unwrap_or_default())),
        Err(_) => match ndetect_circuits::build(name) {
            // Only reachable under --seq: the name exists, but in the
            // combinational suite.
            Ok(_) => Err(format!("`{name}` is not a sequential circuit (drop --seq)")),
            // Report through the combinational error so the message
            // lists the suite the user most likely wanted.
            Err(e) => Err(e.to_string()),
        },
    }
}

fn list() -> Result<(), String> {
    println!(
        "{:<10} {:>6} {:>7} {:>7} {:>10} {:<14}",
        "circuit", "inputs", "outputs", "states", "sim bits", "source"
    );
    for spec in ndetect_circuits::suite() {
        println!(
            "{:<10} {:>6} {:>7} {:>7} {:>10} {:<14}",
            spec.name(),
            spec.inputs(),
            spec.outputs(),
            spec.states(),
            spec.total_input_bits(),
            format!("{:?}", spec.source()),
        );
    }
    println!("\nspecials: figure1 (paper example), c17 (ISCAS-85)");
    Ok(())
}

fn universe_of(
    netlist: &Netlist,
    knobs: Knobs,
    store: Option<&Store>,
) -> Result<FaultUniverse, String> {
    FaultUniverse::build_stored(netlist, knobs.universe_options(), store).map_err(|e| e.to_string())
}

/// Expands a sequential circuit and builds the explicit-target fault
/// universe of its two-frame model, both store-backed so a warm run
/// does neither expansion nor simulation.
fn seq_universe_of(
    seq: &SeqNetlist,
    model: FaultModel,
    knobs: Knobs,
    store: Option<&Store>,
) -> Result<FaultUniverse, String> {
    let expanded = expand_stored(seq, model, store).map_err(|e| e.to_string())?;
    FaultUniverse::build_stored_explicit(
        expanded.netlist(),
        &expanded.explicit_targets(),
        knobs.universe_options(),
        store,
    )
    .map_err(|e| e.to_string())
}

/// The one-shot analysis commands delegate to `ndetect_serve::render`,
/// the render layer shared with `ndet serve` — this is what guarantees
/// a serve reply is byte-identical to the one-shot stdout.
fn stats(netlist: &Netlist, knobs: Knobs, store: Option<&Store>) -> Result<(), String> {
    let provider = StoreProvider::new(store);
    print!(
        "{}",
        ndetect_serve::render_stats(netlist, knobs, &provider)?
    );
    Ok(())
}

fn worst(
    netlist: &Netlist,
    floor: usize,
    knobs: Knobs,
    store: Option<&Store>,
) -> Result<(), String> {
    let provider = StoreProvider::new(store);
    print!(
        "{}",
        ndetect_serve::render_worst(netlist, floor, knobs, &provider)?
    );
    Ok(())
}

fn seq_stats(
    seq: &SeqNetlist,
    model: FaultModel,
    knobs: Knobs,
    store: Option<&Store>,
) -> Result<(), String> {
    let provider = StoreProvider::new(store);
    print!(
        "{}",
        ndetect_serve::render_seq_stats(seq, model, knobs, &provider)?
    );
    Ok(())
}

fn seq_worst(
    seq: &SeqNetlist,
    model: FaultModel,
    floor: usize,
    knobs: Knobs,
    store: Option<&Store>,
) -> Result<(), String> {
    let provider = StoreProvider::new(store);
    print!(
        "{}",
        ndetect_serve::render_seq_worst(seq, model, floor, knobs, &provider)?
    );
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn seq_gen_set(
    seq: &SeqNetlist,
    model: FaultModel,
    n: u32,
    compact: bool,
    seed: Option<u64>,
    knobs: Knobs,
    store: Option<&Store>,
) -> Result<(), String> {
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    let provider = StoreProvider::new(store);
    print!(
        "{}",
        ndetect_serve::render_seq_gen(seq, model, n, compact, seed, knobs, &provider)?
    );
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn average(
    name: &str,
    universe: &FaultUniverse,
    k: usize,
    nmax: u32,
    def: u32,
    tail: u32,
    knobs: Knobs,
    store: Option<&Store>,
) -> Result<(), String> {
    let definition = match def {
        1 => DetectionDefinition::Standard,
        2 => DetectionDefinition::SufficientlyDifferent,
        other => return Err(format!("--def must be 1 or 2, got {other}")),
    };
    let wc = WorstCaseAnalysis::compute_stored(universe, knobs.threads, store);
    let tracked = wc.tail_indices(tail);
    if tracked.is_empty() {
        println!("{name}: no untargeted faults with nmin >= {tail}; nothing to estimate");
        return Ok(());
    }
    let config = Procedure1Config {
        nmax,
        num_test_sets: k,
        definition,
        threads: knobs.threads,
        ..Default::default()
    };
    // Procedure 1 is seeded, so the whole K-set construction is
    // cacheable: warm re-runs load the estimate from the store.
    let probs = estimate_detection_probabilities_stored(universe, &tracked, &config, store)
        .map_err(|e| e.to_string())?;
    println!(
        "{name}: {} tracked faults (nmin >= {tail}), K = {k}, definition {def}",
        tracked.len()
    );
    println!(
        "p({nmax},g) >= thresholds 1.0..0.0: {:?}",
        probs.histogram_row(nmax)
    );
    if let Some((pos, p)) = probs.min_probability(nmax) {
        println!(
            "lowest p({nmax},g) = {p:.3} for {}",
            universe.bridges()[tracked[pos]].name(universe.netlist())
        );
    }
    println!(
        "expected escapes at n = {nmax}: {:.2} of {} tracked faults",
        probs.expected_escapes(nmax),
        tracked.len()
    );
    Ok(())
}

fn greedy(netlist: &Netlist, n: u32, knobs: Knobs, store: Option<&Store>) -> Result<(), String> {
    let universe = universe_of(netlist, knobs, store)?;
    let set = greedy_n_detection(&universe, n);
    println!(
        "greedy {n}-detection set: {} tests, bridging coverage {:.2}%",
        set.len(),
        bridge_coverage(&universe, &set)
    );
    println!("{set}");
    Ok(())
}

/// `ndet gen`: the set-cover generation engine (`ndetect-gen`), with
/// compaction and seeded tie-breaking, store-backed so warm
/// re-generation is a cache hit.
fn gen_set(
    netlist: &Netlist,
    n: u32,
    compact: bool,
    seed: Option<u64>,
    knobs: Knobs,
    store: Option<&Store>,
) -> Result<(), String> {
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    let provider = StoreProvider::new(store);
    print!(
        "{}",
        ndetect_serve::render_gen(netlist, n, compact, seed, knobs, &provider)?
    );
    Ok(())
}

fn pla_file(rest: &[&String], knobs: Knobs, store: Option<&Store>) -> Result<(), String> {
    let pos = positionals(rest);
    let path = *pos.first().ok_or("missing .pla path")?;
    let sub = pos.get(1).copied().unwrap_or("stats");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("pla");
    let pla = ndetect_fsm::parse_pla(name, &text).map_err(|e| e.to_string())?;
    let netlist = pla.synthesize().map_err(|e| e.to_string())?;
    match sub {
        "stats" => stats(&netlist, knobs, store),
        "worst" => worst(&netlist, 100, knobs, store),
        "synth" => {
            print!("{}", bench_format::write(&netlist));
            Ok(())
        }
        other => Err(format!("unknown pla-file subcommand `{other}`")),
    }
}

fn bench_file(rest: &[&String], knobs: Knobs, store: Option<&Store>) -> Result<(), String> {
    let pos = positionals(rest);
    let path = *pos.first().ok_or("missing .bench path")?;
    let sub = pos.get(1).copied().unwrap_or("stats");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    let model = fault_model_flag(rest)?;
    // Sequential files are recognised two ways: `--seq` forces the
    // DFF-accepting parser, and a plain parse that fails specifically
    // because the file contains flip-flops auto-upgrades to it.
    let netlist = if flag_present(rest, "--seq") {
        None
    } else {
        match bench_format::parse(name, &text) {
            Ok(n) => Some(n),
            Err(NetlistError::Sequential { .. }) => None,
            Err(e) => return Err(e.to_string()),
        }
    };
    match netlist {
        Some(netlist) => {
            if let Some(m) = model {
                return Err(format!(
                    "--fault-model {} selects a sequential fault model; `{name}` is combinational",
                    m.label()
                ));
            }
            match sub {
                "stats" => stats(&netlist, knobs, store),
                "worst" => worst(&netlist, 100, knobs, store),
                "cones" => cones(&netlist, 14, knobs, store),
                other => Err(format!("unknown bench-file subcommand `{other}`")),
            }
        }
        None => {
            let seq = bench_format::parse_seq(name, &text).map_err(|e| e.to_string())?;
            let model = model.unwrap_or_default();
            match sub {
                "stats" => seq_stats(&seq, model, knobs, store),
                "worst" => seq_worst(&seq, model, 100, knobs, store),
                other => Err(format!(
                    "unknown bench-file subcommand `{other}` for a sequential circuit (expected stats or worst)"
                )),
            }
        }
    }
}

fn cones(
    netlist: &Netlist,
    max_inputs: usize,
    knobs: Knobs,
    store: Option<&Store>,
) -> Result<(), String> {
    let reports =
        analyze_output_cones_budget(netlist, max_inputs, knobs.threads, knobs.mem_budget, store)
            .map_err(|e| e.to_string())?;
    println!(
        "{}: {} output cones analysed (cones wider than {max_inputs} inputs skipped)",
        netlist.name(),
        reports.len()
    );
    println!(
        "{:<12} {:>6} {:>6} {:>7} {:>8} {:>9} {:>8}",
        "output", "inputs", "gates", "targets", "bridges", "cov@10", "tail11"
    );
    for r in reports {
        let cov10 = r
            .coverage
            .iter()
            .find(|(n, _)| *n == 10)
            .map_or(100.0, |(_, pct)| *pct);
        println!(
            "{:<12} {:>6} {:>6} {:>7} {:>8} {:>8.2}% {:>8}",
            r.output_name,
            r.num_inputs,
            r.num_gates,
            r.num_targets,
            r.num_bridges,
            cov10,
            r.tail_11
        );
    }
    Ok(())
}

/// `ndet cache <stats|verify|repair|clear|gc>`: inspection and
/// maintenance of the on-disk artifact store.
fn cache(rest: &[&String], store: Option<&Store>) -> Result<(), String> {
    let sub = positionals(rest).first().copied().unwrap_or("stats");
    let store = store
        .ok_or("no cache directory configured: pass --cache-dir DIR or set NDETECT_CACHE_DIR")?;
    match sub {
        "stats" => {
            let s = store.stats().map_err(|e| e.to_string())?;
            println!("cache dir: {}", store.root().display());
            println!("entries: {}", s.entries);
            println!("bytes: {}", s.total_bytes);
            println!("hits: {}", s.hits);
            println!("misses: {}", s.misses);
            println!("writes: {}", s.writes);
            println!("shards: {}", s.shards);
            println!("flat entries: {}", s.flat_entries);
            // Per-shard entry histogram (occupied fan-out dirs only).
            let histogram = store.shard_histogram().map_err(|e| e.to_string())?;
            for (shard, count) in &histogram.shards {
                println!("shard {shard}: {count}");
            }
            Ok(())
        }
        "verify" => {
            let report = store.verify().map_err(|e| e.to_string())?;
            println!("valid entries: {}", report.valid);
            println!("corrupt entries: {}", report.corrupt.len());
            for (path, reason) in &report.corrupt {
                println!("  {}: {reason}", path.display());
            }
            if report.corrupt.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "{} corrupt cache entries (they are treated as misses; `ndet cache clear` removes them)",
                    report.corrupt.len()
                ))
            }
        }
        "repair" => {
            let report = store.repair().map_err(|e| e.to_string())?;
            println!("valid entries: {}", report.valid);
            println!("quarantined: {}", report.quarantined.len());
            for (path, reason) in &report.quarantined {
                println!("  {}: {reason}", path.display());
            }
            if !report.quarantined.is_empty() {
                println!(
                    "quarantined entries moved under {} (see MANIFEST); they rebuild as cache misses",
                    store.root().join("quarantine").display()
                );
            }
            Ok(())
        }
        "clear" => {
            store.clear().map_err(|e| e.to_string())?;
            println!("cache cleared: {}", store.root().display());
            Ok(())
        }
        "gc" => {
            let max_bytes = flag_value(rest, "--max-bytes")?.unwrap_or(256 * 1024 * 1024);
            let report = store.gc(max_bytes as u64).map_err(|e| e.to_string())?;
            println!(
                "gc to {max_bytes} bytes: evicted {} entries ({} bytes), kept {} ({} bytes)",
                report.evicted, report.freed_bytes, report.kept, report.kept_bytes
            );
            Ok(())
        }
        other => Err(format!("unknown cache subcommand `{other}`")),
    }
}

/// `ndet corpus <dir>`: walks a directory of ISCAS-style `.bench` files
/// (`--recursive` descends into subdirectories; order is the sorted
/// full path list either way, so results are deterministic), runs the
/// stats/worst-case analysis per circuit through the artifact store
/// (with the output-cone partitioned fallback for circuits too wide for
/// exhaustive simulation), generates compact n-detection sets at
/// n = 1, 5, 10 for exhaustively analysed circuits, and emits a
/// machine-readable CSV or JSON summary on stdout.
fn corpus(rest: &[&String], knobs: Knobs, store: Option<&Store>) -> Result<(), String> {
    let dir = positionals(rest)
        .first()
        .copied()
        .ok_or("missing corpus directory")?;
    let format = flag_str(rest, "--format")?.unwrap_or("csv");
    if format != "csv" && format != "json" {
        return Err(format!("--format must be csv or json, got `{format}`"));
    }
    let request = CorpusRequest {
        dir: PathBuf::from(dir),
        format: format.to_string(),
        max_inputs: flag_value(rest, "--max-inputs")?.unwrap_or(14),
        recursive: flag_present(rest, "--recursive"),
    };
    let provider = StoreProvider::new(store);
    let output = ndetect_serve::render_corpus(&request, knobs, &provider)?;
    print!("{}", output.body);
    for message in &output.errors {
        eprintln!("# corpus error: {message}");
    }
    if !output.errors.is_empty() {
        eprintln!(
            "# corpus: {} of {} files failed (rows marked `error`)",
            output.errors.len(),
            output.files
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<(), String> {
        let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
        dispatch(&owned)
    }

    #[test]
    fn rejects_missing_and_unknown_commands() {
        assert!(dispatch(&[]).is_err());
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn list_succeeds() {
        assert!(run(&["list"]).is_ok());
    }

    #[test]
    fn stats_and_worst_on_figure1() {
        assert!(run(&["stats", "figure1"]).is_ok());
        assert!(run(&["worst", "figure1"]).is_ok());
        assert!(run(&["stats", "not-a-circuit"]).is_err());
    }

    #[test]
    fn average_flag_validation() {
        assert!(run(&["average", "figure1", "--k", "10", "--nmax", "3", "--tail", "3"]).is_ok());
        assert!(run(&["average", "figure1", "--def", "7"]).is_err());
        assert!(run(&["average", "figure1", "--k"]).is_err());
        assert!(run(&["average", "figure1", "--k", "zebra"]).is_err());
    }

    #[test]
    fn greedy_synth_dot_cones() {
        assert!(run(&["greedy", "figure1", "--n", "2"]).is_ok());
        assert!(run(&["synth", "figure1"]).is_ok());
        assert!(run(&["dot", "c17"]).is_ok());
        assert!(run(&["cones", "c17"]).is_ok());
    }

    #[test]
    fn gen_flag_validation() {
        assert!(run(&["gen", "figure1", "--n", "3"]).is_ok());
        assert!(run(&["gen", "figure1", "--n", "3", "--compact"]).is_ok());
        assert!(run(&["gen", "figure1", "--compact", "--n", "3", "--seed", "7"]).is_ok());
        // Boolean flags must not swallow the circuit name.
        assert!(run(&["gen", "--compact", "figure1"]).is_ok());
        assert!(run(&["gen", "figure1", "--n", "0"]).is_err());
        assert!(run(&["gen", "figure1", "--n", "zebra"]).is_err());
        assert!(run(&["gen", "figure1", "--seed"]).is_err());
        assert!(run(&["gen"]).is_err());
    }

    #[test]
    fn threads_flag_accepted_and_validated() {
        assert!(run(&["stats", "figure1", "--threads", "1"]).is_ok());
        assert!(run(&["worst", "figure1", "--threads", "2"]).is_ok());
        assert!(run(&[
            "average",
            "figure1",
            "--k",
            "10",
            "--nmax",
            "2",
            "--threads",
            "2"
        ])
        .is_ok());
        assert!(run(&["worst", "figure1", "--threads", "zebra"]).is_err());
        assert!(run(&["worst", "figure1", "--threads"]).is_err());
    }

    #[test]
    fn mem_budget_flag_accepted_and_validated() {
        assert!(run(&["stats", "figure1", "--mem-budget", "16MiB"]).is_ok());
        assert!(run(&["worst", "figure1", "--mem-budget", "1"]).is_ok());
        assert!(run(&["gen", "figure1", "--n", "2", "--mem-budget", "unbounded"]).is_ok());
        assert!(run(&["cones", "c17", "--mem-budget", "64K"]).is_ok());
        assert!(run(&["stats", "figure1", "--mem-budget", "zebra"]).is_err());
        assert!(run(&["stats", "figure1", "--mem-budget"]).is_err());
    }

    #[test]
    fn file_commands_validate_paths() {
        assert!(run(&["bench-file", "/nonexistent/x.bench"]).is_err());
        assert!(run(&["pla-file", "/nonexistent/x.pla"]).is_err());
    }

    #[test]
    fn trace_out_produces_a_reportable_jsonl_file() {
        let path =
            std::env::temp_dir().join(format!("ndet-trace-test-{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        assert!(run(&["worst", "figure1", "--trace-out", &path]).is_ok());
        ndetect_obs::trace::disable();
        assert!(run(&["trace", "report", &path]).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_subcommand_validation() {
        assert!(run(&["trace"]).is_err());
        assert!(run(&["trace", "frobnicate"]).is_err());
        assert!(run(&["trace", "report"]).is_err());
        assert!(run(&["trace", "report", "/nonexistent/trace.jsonl"]).is_err());
    }

    #[test]
    fn request_retry_flag_validation() {
        assert!(run(&["request", "127.0.0.1:1", "ping", "--retry", "zebra"]).is_err());
        assert!(run(&["request", "127.0.0.1:1", "ping", "--retry"]).is_err());
    }

    #[test]
    fn sequential_circuits_run_end_to_end() {
        assert!(run(&["worst", "s27"]).is_ok());
        assert!(run(&["stats", "shift4", "--fault-model", "stuck-at"]).is_ok());
        assert!(run(&["gen", "cnt3", "--n", "2", "--seq"]).is_ok());
        assert!(run(&["average", "s27", "--k", "5", "--nmax", "2"]).is_ok());
    }

    #[test]
    fn sequential_flag_validation() {
        // --fault-model only makes sense for time-frame expansion.
        assert!(run(&["worst", "figure1", "--fault-model", "transition"]).is_err());
        assert!(run(&["worst", "s27", "--fault-model", "zebra"]).is_err());
        // --seq on a combinational name, and names in neither registry.
        assert!(run(&["worst", "figure1", "--seq"]).is_err());
        assert!(run(&["worst", "not-a-circuit", "--seq"]).is_err());
    }

    #[test]
    fn bench_file_auto_detects_sequential_circuits() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/data/corpus/s27.bench"
        );
        assert!(run(&["bench-file", path, "worst"]).is_ok());
        assert!(run(&["bench-file", path, "stats", "--seq"]).is_ok());
        assert!(run(&["bench-file", path, "cones"]).is_err());
    }
}
