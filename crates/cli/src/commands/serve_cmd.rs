//! `ndet serve` / `ndet request`: the persistent analysis service and
//! its one-shot client.

use ndetect_serve::protocol::{read_reply, Reply};
use ndetect_serve::{signal, Engine, Server, ServerConfig};
use ndetect_store::Store;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use super::{flag_present, flag_str, flag_value, positionals};

/// `ndet serve [--addr A] [--addr-file F] [--request-timeout-ms T]
/// [--hot-universes N] [--hot-sets N] [--max-conns N] [--chaos]`: bind,
/// announce, serve until SIGTERM/ctrl-c, then drain and exit cleanly.
pub fn serve(rest: &[&String], store: Option<Store>) -> Result<(), String> {
    let config = ServerConfig {
        addr: flag_str(rest, "--addr")?
            .unwrap_or("127.0.0.1:0")
            .to_string(),
        request_timeout: Duration::from_millis(
            flag_value(rest, "--request-timeout-ms")?.unwrap_or(60_000) as u64,
        ),
        hot_universes: flag_value(rest, "--hot-universes")?.unwrap_or(32),
        hot_sets: flag_value(rest, "--hot-sets")?.unwrap_or(32),
        max_conns: flag_value(rest, "--max-conns")?.unwrap_or(256),
        chaos: flag_present(rest, "--chaos"),
    };
    let addr_file = flag_str(rest, "--addr-file")?.map(str::to_string);

    signal::install();
    let engine = Engine::new(store, config.hot_universes, config.hot_sets);
    let server = Server::bind(config, engine)?;
    let addr = server.local_addr()?;
    // Announce before accepting so a supervisor can connect as soon as
    // the line appears.
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    if let Some(path) = addr_file {
        // Temp-plus-rename so a polling client never reads a torn file.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| format!("cannot write --addr-file {path}: {e}"))?;
    }
    server.run()
}

/// The retry conditions `--retry-on` accepts: `refused` is a failed
/// connect; the rest are structured reply codes. Transient by nature —
/// `parse`/`analysis`/`denied` replies are deterministic, so retrying
/// them only re-earns the same error and they are not listed.
const RETRYABLE: &[&str] = &["refused", "busy", "timeout", "internal", "shutdown"];

/// What `--retry N` covers when `--retry-on` is not given: the server
/// not up yet, the connection cap, and a request deadline.
const DEFAULT_RETRY_ON: &[&str] = &["refused", "busy", "timeout"];

/// One attempt's outcome, split by what a retry could fix.
enum Attempt {
    /// Connected and got a structured reply (possibly `err`).
    Replied(Reply),
    /// The connect itself was refused — the server is not up (yet).
    Refused(String),
}

/// `ndet request <addr> <verb> [args...] [--retry N] [--retry-on
/// LIST]`: send one request line and print the reply payload (the
/// exact bytes the matching one-shot command would print). Server-side
/// errors come back as an `Err` with the structured code, so the
/// process exits nonzero. `--retry N` re-attempts the whole
/// request — reconnect and resend — up to N times with exponential
/// backoff (50ms doubling, capped at 3.2s) whenever the failure is on
/// the `--retry-on` list (default: refused,busy,timeout).
pub fn request(rest: &[&String]) -> Result<(), String> {
    let pos = positionals(rest);
    let addr = *pos.first().ok_or("missing server address")?;
    if pos.len() < 2 {
        return Err("missing request (e.g. `ndet request 127.0.0.1:PORT worst figure1`)".into());
    }
    let line = pos[1..].join(" ");
    let timeout =
        Duration::from_millis(flag_value(rest, "--timeout-ms")?.unwrap_or(120_000) as u64);
    let retries = flag_value(rest, "--retry")?.unwrap_or(0);
    let retry_on = parse_retry_on(flag_str(rest, "--retry-on")?)?;

    let mut attempt = 0;
    loop {
        let may_retry = attempt < retries;
        match attempt_once(addr, &line, timeout)? {
            Attempt::Replied(Reply::Ok(payload)) => {
                print!("{payload}");
                return Ok(());
            }
            Attempt::Replied(Reply::Err { code, message }) => {
                if !(may_retry && retry_on.contains(&code)) {
                    return Err(format!("server error ({code}): {message}"));
                }
            }
            Attempt::Refused(error) => {
                if !(may_retry && retry_on.iter().any(|c| c == "refused")) {
                    let tried = if attempt > 0 {
                        format!(" after {} attempts", attempt + 1)
                    } else {
                        String::new()
                    };
                    return Err(format!("{error}{tried}"));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50 << attempt.min(6)));
        attempt += 1;
    }
}

/// Parses the `--retry-on` comma list against [`RETRYABLE`]; `None`
/// falls back to [`DEFAULT_RETRY_ON`].
fn parse_retry_on(flag: Option<&str>) -> Result<Vec<String>, String> {
    let Some(list) = flag else {
        return Ok(DEFAULT_RETRY_ON.iter().map(ToString::to_string).collect());
    };
    let mut out = Vec::new();
    for token in list.split(',').filter(|t| !t.is_empty()) {
        if !RETRYABLE.contains(&token) {
            return Err(format!(
                "bad value for --retry-on: `{token}` (expected a comma list of {})",
                RETRYABLE.join(",")
            ));
        }
        if !out.iter().any(|t| t == token) {
            out.push(token.to_string());
        }
    }
    Ok(out)
}

/// One full request attempt: connect, send the line, read one reply.
/// A refused connect is reported as [`Attempt::Refused`] so the caller
/// can retry it; every other transport failure is a hard `Err` (an
/// unresolvable address or unreachable network does not get better by
/// waiting).
fn attempt_once(addr: &str, line: &str, timeout: Duration) -> Result<Attempt, String> {
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
            return Ok(Attempt::Refused(format!("cannot connect to {addr}: {e}")));
        }
        Err(e) => return Err(format!("cannot connect to {addr}: {e}")),
    };
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    writeln!(writer, "{line}").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let reply = read_reply(&mut reader).map_err(|e| format!("bad reply from {addr}: {e}"))?;
    Ok(Attempt::Replied(reply))
}
