//! `ndet serve` / `ndet request`: the persistent analysis service and
//! its one-shot client.

use ndetect_serve::protocol::{read_reply, Reply};
use ndetect_serve::{signal, Engine, Server, ServerConfig};
use ndetect_store::Store;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use super::{flag_str, flag_value, positionals};

/// `ndet serve [--addr A] [--addr-file F] [--request-timeout-ms T]
/// [--hot-universes N] [--hot-sets N] [--max-conns N]`: bind, announce,
/// serve until SIGTERM/ctrl-c, then drain and exit cleanly.
pub fn serve(rest: &[&String], store: Option<Store>) -> Result<(), String> {
    let config = ServerConfig {
        addr: flag_str(rest, "--addr")?
            .unwrap_or("127.0.0.1:0")
            .to_string(),
        request_timeout: Duration::from_millis(
            flag_value(rest, "--request-timeout-ms")?.unwrap_or(60_000) as u64,
        ),
        hot_universes: flag_value(rest, "--hot-universes")?.unwrap_or(32),
        hot_sets: flag_value(rest, "--hot-sets")?.unwrap_or(32),
        max_conns: flag_value(rest, "--max-conns")?.unwrap_or(256),
    };
    let addr_file = flag_str(rest, "--addr-file")?.map(str::to_string);

    signal::install();
    let engine = Engine::new(store, config.hot_universes, config.hot_sets);
    let server = Server::bind(config, engine)?;
    let addr = server.local_addr()?;
    // Announce before accepting so a supervisor can connect as soon as
    // the line appears.
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    if let Some(path) = addr_file {
        // Temp-plus-rename so a polling client never reads a torn file.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| format!("cannot write --addr-file {path}: {e}"))?;
    }
    server.run()
}

/// `ndet request <addr> <verb> [args...] [--retry N]`: send one request
/// line and print the reply payload (the exact bytes the matching
/// one-shot command would print). Server-side errors come back as an
/// `Err` with the structured code, so the process exits nonzero.
/// `--retry N` retries a refused connection up to N times with
/// exponential backoff — for supervisors that race server startup.
pub fn request(rest: &[&String]) -> Result<(), String> {
    let pos = positionals(rest);
    let addr = *pos.first().ok_or("missing server address")?;
    if pos.len() < 2 {
        return Err("missing request (e.g. `ndet request 127.0.0.1:PORT worst figure1`)".into());
    }
    let line = pos[1..].join(" ");
    let timeout =
        Duration::from_millis(flag_value(rest, "--timeout-ms")?.unwrap_or(120_000) as u64);
    let retries = flag_value(rest, "--retry")?.unwrap_or(0);

    let stream = connect_with_retry(addr, retries)?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    writeln!(writer, "{line}").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;

    let mut reader = BufReader::new(stream);
    match read_reply(&mut reader).map_err(|e| format!("bad reply from {addr}: {e}"))? {
        Reply::Ok(payload) => {
            print!("{payload}");
            Ok(())
        }
        Reply::Err { code, message } => Err(format!("server error ({code}): {message}")),
    }
}

/// Connects to `addr`, retrying a refused connection up to `retries`
/// times with exponential backoff (50ms doubling, capped at 3.2s). Only
/// `ConnectionRefused` retries — it means "the server is not up yet";
/// any other error (unresolvable address, unreachable network) is
/// permanent and fails immediately.
fn connect_with_retry(addr: &str, retries: usize) -> Result<TcpStream, String> {
    let mut attempt = 0;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused && attempt < retries => {
                let backoff = Duration::from_millis(50 << attempt.min(6));
                std::thread::sleep(backoff);
                attempt += 1;
            }
            Err(e) => {
                let tried = if attempt > 0 {
                    format!(" after {} attempts", attempt + 1)
                } else {
                    String::new()
                };
                return Err(format!("cannot connect to {addr}{tried}: {e}"));
            }
        }
    }
}
