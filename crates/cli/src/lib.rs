//! placeholder
