//! Library side of the `ndet` command-line interface.
//!
//! The binary in `main.rs` is a thin shell around [`commands::dispatch`]
//! so integration tests can drive the full argument-parsing and
//! execution path in-process.

#![forbid(unsafe_code)]

pub mod commands;
