//! The benchmark suite registry: one stand-in per paper circuit.

use crate::generators;
use ndetect_fsm::{
    random_fsm, synthesize, Fsm, FsmError, RandomFsmConfig, StateEncoding, SynthOptions,
};
use ndetect_netlist::Netlist;

/// How a suite circuit is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitSource {
    /// Structured saturating up/down counter ([`generators::up_down_counter`]).
    UpDownCounter,
    /// Structured bidirectional cycle tracker ([`generators::cycle_tracker`]).
    CycleTracker,
    /// Structured modulo counter with enable ([`generators::modulo_counter`]).
    ModuloCounter,
    /// Seeded pseudo-random machine ([`ndetect_fsm::random_fsm`]).
    Random {
        /// The generation seed (fixed per circuit for reproducibility).
        seed: u64,
        /// Upper bound on input-cube rows per state; lower bounds keep
        /// circuits small enough for the all-pairs nmin pass on wide
        /// machines.
        max_rows: usize,
    },
}

/// A suite entry: the paper circuit's name and signature, and the
/// stand-in machine used to reproduce it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitSpec {
    name: &'static str,
    inputs: usize,
    outputs: usize,
    states: usize,
    source: CircuitSource,
}

impl CircuitSpec {
    /// The paper's circuit name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of primary inputs of the FSM.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of primary outputs of the FSM.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Number of states of the FSM.
    #[must_use]
    pub fn states(&self) -> usize {
        self.states
    }

    /// How the stand-in is generated.
    #[must_use]
    pub fn source(&self) -> CircuitSource {
        self.source
    }

    /// Number of state bits under binary encoding.
    #[must_use]
    pub fn state_bits(&self) -> usize {
        (usize::BITS - (self.states - 1).leading_zeros()).max(1) as usize
    }

    /// Total inputs of the synthesized combinational logic (PIs + state
    /// bits) — the exhaustive space is `2^this`.
    #[must_use]
    pub fn total_input_bits(&self) -> usize {
        self.inputs + self.state_bits()
    }

    /// Builds the stand-in state machine.
    #[must_use]
    pub fn build_fsm(&self) -> Fsm {
        match self.source {
            CircuitSource::UpDownCounter => generators::up_down_counter(self.name, self.states),
            CircuitSource::CycleTracker => generators::cycle_tracker(self.name, self.states),
            CircuitSource::ModuloCounter => generators::modulo_counter(self.name, self.states),
            CircuitSource::Random { seed, max_rows } => random_fsm(
                self.name,
                &RandomFsmConfig {
                    num_inputs: self.inputs,
                    num_outputs: self.outputs,
                    num_states: self.states,
                    seed,
                    min_rows_per_state: 2.min(max_rows),
                    max_rows_per_state: max_rows,
                    ..RandomFsmConfig::default()
                },
            ),
        }
    }

    /// Synthesizes the combinational logic of the stand-in (binary state
    /// encoding, auto minimization).
    ///
    /// # Errors
    ///
    /// Propagates [`FsmError`] from synthesis (does not occur for suite
    /// entries; the suite is covered by tests).
    pub fn build(&self) -> Result<Netlist, FsmError> {
        let fsm = self.build_fsm();
        let encoding = StateEncoding::binary(fsm.num_states());
        synthesize(&fsm, &encoding, SynthOptions::default())
    }
}

/// The 35 benchmark circuits of the paper's Tables 2–3, in table order,
/// each with the (inputs, outputs, states) signature of the MCNC
/// original and a deterministic stand-in source.
#[must_use]
pub fn suite() -> Vec<CircuitSpec> {
    fn rnd(seed: u64) -> CircuitSource {
        CircuitSource::Random { seed, max_rows: 6 }
    }
    fn rnd_small(seed: u64) -> CircuitSource {
        CircuitSource::Random { seed, max_rows: 3 }
    }
    let table: &[(&'static str, usize, usize, usize, CircuitSource)] = &[
        ("lion", 2, 1, 4, CircuitSource::UpDownCounter),
        ("dk27", 1, 2, 7, rnd(2701)),
        ("ex5", 2, 2, 9, rnd(501)),
        ("train4", 2, 1, 4, CircuitSource::CycleTracker),
        ("bbtas", 2, 2, 6, rnd(601)),
        ("dk15", 3, 5, 4, rnd(1501)),
        ("dk512", 1, 3, 15, rnd(51201)),
        ("dk14", 3, 5, 7, rnd(1401)),
        ("dk17", 2, 3, 8, rnd(1701)),
        ("firstex", 3, 2, 4, rnd(101)),
        ("lion9", 2, 1, 9, CircuitSource::UpDownCounter),
        ("mc", 3, 5, 4, rnd(9901)),
        ("dk16", 2, 3, 27, rnd(1601)),
        ("modulo12", 1, 1, 12, CircuitSource::ModuloCounter),
        ("s8", 4, 1, 5, rnd(801)),
        ("tav", 4, 4, 4, rnd(40401)),
        ("donfile", 2, 1, 24, CircuitSource::CycleTracker),
        ("ex7", 2, 2, 10, rnd(701)),
        ("train11", 2, 1, 11, CircuitSource::CycleTracker),
        ("beecount", 3, 4, 7, rnd(2201)),
        ("ex2", 2, 2, 19, rnd(201)),
        ("ex3", 2, 2, 10, rnd(301)),
        ("ex6", 5, 8, 8, rnd(606)),
        ("mark1", 5, 16, 15, rnd_small(1301)),
        ("bbara", 4, 2, 10, rnd(4001)),
        ("ex4", 6, 9, 14, rnd(404)),
        ("keyb", 7, 2, 19, rnd_small(5301)),
        ("opus", 5, 6, 10, rnd(6901)),
        ("bbsse", 7, 7, 16, rnd_small(7701)),
        ("cse", 7, 7, 16, rnd_small(3501)),
        ("dvram", 8, 4, 30, rnd_small(8801)),
        ("fetch", 9, 4, 24, rnd_small(9901)),
        ("log", 9, 4, 16, rnd_small(1101)),
        ("rie", 9, 5, 28, rnd_small(2901)),
        ("s1a", 8, 4, 20, rnd_small(1901)),
    ];
    table
        .iter()
        .map(|&(name, inputs, outputs, states, source)| CircuitSpec {
            name,
            inputs,
            outputs,
            states,
            source,
        })
        .collect()
}

/// Looks up a suite circuit by name.
#[must_use]
pub fn spec(name: &str) -> Option<CircuitSpec> {
    suite().into_iter().find(|s| s.name == name)
}

/// Builds a circuit by name: any suite entry, plus the specials
/// `"figure1"` (the paper's example) and `"c17"` (ISCAS-85).
///
/// # Errors
///
/// Returns [`FsmError::Inconsistent`] for unknown names, or a synthesis
/// error for suite entries.
pub fn build(name: &str) -> Result<Netlist, FsmError> {
    match name {
        "figure1" => Ok(crate::figure1::netlist()),
        "c17" => Ok(crate::extra::c17()),
        _ => spec(name)
            .ok_or_else(|| FsmError::Inconsistent {
                message: format!("unknown circuit `{name}`"),
            })?
            .build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_35_unique_entries() {
        let s = suite();
        assert_eq!(s.len(), 35);
        let mut names: Vec<&str> = s.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 35);
    }

    #[test]
    fn all_signatures_fit_exhaustive_simulation() {
        for spec in suite() {
            assert!(
                spec.total_input_bits() <= 14,
                "{} has {} total input bits",
                spec.name(),
                spec.total_input_bits()
            );
        }
    }

    #[test]
    fn small_circuits_synthesize_and_match_signature() {
        for name in ["lion", "train4", "modulo12", "bbtas", "dk15", "tav"] {
            let spec = spec(name).unwrap();
            let n = spec.build().unwrap();
            assert_eq!(n.num_inputs(), spec.total_input_bits(), "{name}: PI count");
            assert_eq!(
                n.num_outputs(),
                spec.outputs() + spec.state_bits(),
                "{name}: PO count"
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = build("dk27").unwrap();
        let b = build("dk27").unwrap();
        assert_eq!(
            ndetect_netlist::bench_format::write(&a),
            ndetect_netlist::bench_format::write(&b)
        );
    }

    #[test]
    fn specials_build() {
        assert_eq!(build("figure1").unwrap().num_inputs(), 4);
        assert_eq!(build("c17").unwrap().num_inputs(), 5);
        assert!(build("nonexistent").is_err());
    }

    #[test]
    fn fsm_stand_ins_are_deterministic_tables() {
        for name in ["lion", "train4", "donfile", "modulo12", "ex5", "keyb"] {
            let fsm = spec(name).unwrap().build_fsm();
            assert_eq!(fsm.check_deterministic(), None, "{name}");
        }
    }
}
