//! Benchmark circuit suite for the n-detection analysis.
//!
//! * [`figure1`] — the paper's Figure 1 example circuit, reconstructed
//!   **exactly** (verified against every entry of the paper's Table 1).
//! * [`suite`] / [`CircuitSpec`] — stand-ins for the 35 MCNC FSM
//!   benchmark circuits of the paper's Tables 2–6. The original MCNC
//!   state tables are not distributable, so each circuit is substituted
//!   by a deterministic machine with the same (inputs, outputs, states)
//!   signature: structured counters/trackers where the benchmark's
//!   behaviour is well known, seeded random machines otherwise (see
//!   `DESIGN.md` §3 for why this preserves the analysis behaviour).
//! * [`generators`] — the structured FSM families (up/down counters,
//!   cycle trackers, modulo counters).
//! * [`extra`] — small combinational circuits (c17, adders, parity,
//!   multiplexer trees) used by tests and examples.
//! * [`sequential`] — bundled sequential circuits for time-frame
//!   expansion: ISCAS-89 `s27` plus shift-register and counter
//!   generators.
//!
//! # Example
//!
//! ```
//! // Every suite circuit synthesizes to combinational logic whose
//! // exhaustive input space is small enough for the paper's analysis.
//! for spec in ndetect_circuits::suite() {
//!     assert!(spec.total_input_bits() <= 14, "{}", spec.name());
//! }
//! let lion = ndetect_circuits::build("lion").unwrap();
//! assert_eq!(lion.num_inputs(), 2 + 2); // 2 PIs + 2 state bits
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extra;
pub mod figure1;
pub mod generators;
mod registry;
pub mod sequential;

pub use registry::{build, spec, suite, CircuitSource, CircuitSpec};
pub use sequential::{build_seq, seq_suite};
