//! Structured FSM families used as benchmark stand-ins.
//!
//! Where the behaviour of an MCNC benchmark is well understood (counters
//! and sensor trackers like `lion`, `train4`, `modulo12`), the suite uses
//! a structured machine of the same signature instead of a random one.
//! These generators build those machines directly as [`Fsm`] values.

use ndetect_fsm::{Cube, Fsm, OutputBit, Transition};

/// An `n`-state saturating up/down counter (the `lion`/`lion9` family
/// shape): inputs `(up, down)`; `10` increments, `01` decrements, `00`
/// and `11` hold. Output 1 while the count is non-zero.
///
/// ```
/// let fsm = ndetect_circuits::generators::up_down_counter("lion", 4);
/// assert_eq!(fsm.num_states(), 4);
/// assert_eq!(fsm.num_inputs(), 2);
/// assert_eq!(fsm.check_deterministic(), None);
/// ```
///
/// # Panics
///
/// Panics if `num_states == 0`.
#[must_use]
pub fn up_down_counter(name: &str, num_states: usize) -> Fsm {
    assert!(num_states > 0);
    let states: Vec<String> = (0..num_states).map(|i| format!("c{i}")).collect();
    let mut transitions = Vec::new();
    let out = |s: usize| {
        vec![if s > 0 {
            OutputBit::One
        } else {
            OutputBit::Zero
        }]
    };
    for s in 0..num_states {
        let up = (s + 1).min(num_states - 1);
        let down = s.saturating_sub(1);
        // 10 -> up, 01 -> down, 00/11 -> hold.
        transitions.push(Transition {
            input: Cube::parse("10").expect("valid cube"),
            from: s,
            to: up,
            outputs: out(up),
        });
        transitions.push(Transition {
            input: Cube::parse("01").expect("valid cube"),
            from: s,
            to: down,
            outputs: out(down),
        });
        transitions.push(Transition {
            input: Cube::parse("00").expect("valid cube"),
            from: s,
            to: s,
            outputs: out(s),
        });
        transitions.push(Transition {
            input: Cube::parse("11").expect("valid cube"),
            from: s,
            to: s,
            outputs: out(s),
        });
    }
    Fsm::new(name, 2, 1, states, 0, transitions)
}

/// A modulo-`m` counter with an enable input (the `modulo12` shape):
/// while enabled, advance one state per step; the single output pulses on
/// wrap-around.
///
/// # Panics
///
/// Panics if `modulus == 0`.
#[must_use]
pub fn modulo_counter(name: &str, modulus: usize) -> Fsm {
    assert!(modulus > 0);
    let states: Vec<String> = (0..modulus).map(|i| format!("m{i}")).collect();
    let mut transitions = Vec::new();
    for s in 0..modulus {
        let next = (s + 1) % modulus;
        let wrap = if next == 0 {
            OutputBit::One
        } else {
            OutputBit::Zero
        };
        transitions.push(Transition {
            input: Cube::parse("1").expect("valid cube"),
            from: s,
            to: next,
            outputs: vec![wrap],
        });
        transitions.push(Transition {
            input: Cube::parse("0").expect("valid cube"),
            from: s,
            to: s,
            outputs: vec![OutputBit::Zero],
        });
    }
    Fsm::new(name, 1, 1, states, 0, transitions)
}

/// An `n`-state bidirectional cycle tracker (the `train4`/`train11`
/// shape): `01` steps forward around the cycle, `10` steps backward,
/// `00`/`11` hold. Output 1 away from the home state.
///
/// # Panics
///
/// Panics if `num_states == 0`.
#[must_use]
pub fn cycle_tracker(name: &str, num_states: usize) -> Fsm {
    assert!(num_states > 0);
    let states: Vec<String> = (0..num_states).map(|i| format!("t{i}")).collect();
    let mut transitions = Vec::new();
    let out = |s: usize| {
        vec![if s > 0 {
            OutputBit::One
        } else {
            OutputBit::Zero
        }]
    };
    for s in 0..num_states {
        let fwd = (s + 1) % num_states;
        let bwd = (s + num_states - 1) % num_states;
        transitions.push(Transition {
            input: Cube::parse("01").expect("valid cube"),
            from: s,
            to: fwd,
            outputs: out(fwd),
        });
        transitions.push(Transition {
            input: Cube::parse("10").expect("valid cube"),
            from: s,
            to: bwd,
            outputs: out(bwd),
        });
        transitions.push(Transition {
            input: Cube::parse("11").expect("valid cube"),
            from: s,
            to: s,
            outputs: out(s),
        });
        transitions.push(Transition {
            input: Cube::parse("00").expect("valid cube"),
            from: s,
            to: s,
            outputs: out(s),
        });
    }
    Fsm::new(name, 2, 1, states, 0, transitions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let f = up_down_counter("c", 4);
        // From state 3, input 10 stays at 3.
        let t = f.lookup(0b10, 3).unwrap();
        assert_eq!(t.to, 3);
        // From state 0, input 01 stays at 0.
        let t = f.lookup(0b01, 0).unwrap();
        assert_eq!(t.to, 0);
        assert_eq!(f.specification_coverage(), 1.0);
    }

    #[test]
    fn counter_is_deterministic_and_complete() {
        for n in [1usize, 2, 4, 9, 11, 24] {
            let f = up_down_counter("c", n);
            assert_eq!(f.check_deterministic(), None, "{n} states");
            assert_eq!(f.specification_coverage(), 1.0);
        }
    }

    #[test]
    fn modulo_counter_wraps_with_pulse() {
        let f = modulo_counter("m", 12);
        let t = f.lookup(1, 11).unwrap();
        assert_eq!(t.to, 0);
        assert_eq!(t.outputs[0], OutputBit::One);
        let t = f.lookup(1, 5).unwrap();
        assert_eq!(t.to, 6);
        assert_eq!(t.outputs[0], OutputBit::Zero);
        // Disabled: hold.
        let t = f.lookup(0, 7).unwrap();
        assert_eq!(t.to, 7);
    }

    #[test]
    fn cycle_tracker_wraps_both_ways() {
        let f = cycle_tracker("t", 11);
        assert_eq!(f.lookup(0b01, 10).unwrap().to, 0);
        assert_eq!(f.lookup(0b10, 0).unwrap().to, 10);
        assert_eq!(f.check_deterministic(), None);
        assert_eq!(f.specification_coverage(), 1.0);
    }

    #[test]
    fn cycle_tracker_rows_are_disjoint() {
        // Rows must be disjoint per state so that direct (OR-of-rows)
        // synthesis is sound.
        let f = cycle_tracker("t", 5);
        for s in 0..5 {
            for m in 0..4u32 {
                let matching = f
                    .transitions()
                    .iter()
                    .filter(|t| t.from == s && t.input.matches(m))
                    .count();
                assert_eq!(matching, 1, "state {s} input {m:02b}");
            }
        }
    }
}
