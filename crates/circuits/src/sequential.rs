//! Bundled sequential benchmark circuits for time-frame-expansion
//! analysis: the ISCAS-89 `s27` netlist (small enough that its
//! two-frame expansion stays exhaustively simulable) plus parameterized
//! generators for shift registers and binary counters.
//!
//! All circuits are produced as `.bench` text and parsed through
//! [`bench_format::parse_seq`], so they exercise the same frontend as
//! user-supplied files.

use ndetect_fsm::FsmError;
use ndetect_netlist::{bench_format, SeqNetlist};
use std::fmt::Write as _;

/// The ISCAS-89 `s27` benchmark: 4 PIs, 1 PO, 3 flip-flops, 10 gates.
/// Its broadside expansion has 7 inputs — 128 exhaustive patterns.
pub const S27_BENCH: &str = "\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
";

/// Builds the ISCAS-89 `s27` benchmark.
#[must_use]
pub fn s27() -> SeqNetlist {
    bench_format::parse_seq("s27", S27_BENCH).expect("bundled s27 text is valid")
}

/// Builds an `bits`-stage shift register: `q0' = din`, `qi' = q(i-1)`,
/// `dout = q(bits-1)`. The simplest FF-chained circuit — every
/// transition fault at a stage output needs the launch value to ripple
/// in from the previous stage.
///
/// # Panics
///
/// Panics if `bits == 0`.
#[must_use]
pub fn shift_register(name: &str, bits: usize) -> SeqNetlist {
    assert!(bits >= 1, "shift register needs at least one stage");
    let mut src = String::from("INPUT(din)\nOUTPUT(dout)\n");
    for i in 0..bits {
        let d = if i == 0 {
            "din".to_string()
        } else {
            format!("q{}", i - 1)
        };
        let _ = writeln!(src, "q{i} = DFF({d})");
    }
    let _ = writeln!(src, "dout = BUF(q{})", bits - 1);
    bench_format::parse_seq(name, &src).expect("generated shift register is valid")
}

/// Builds a `bits`-bit binary up-counter with enable and carry-out:
/// `q0' = q0 XOR en`, `qi' = qi XOR carry(i)`, `co = AND(carry chain)`.
/// Dense reconvergence through the carry chain makes it the stress
/// fixture for transition-fault propagation across the FF boundary.
///
/// # Panics
///
/// Panics if `bits == 0`.
#[must_use]
pub fn counter(name: &str, bits: usize) -> SeqNetlist {
    assert!(bits >= 1, "counter needs at least one bit");
    let mut src = String::from("INPUT(en)\nOUTPUT(co)\n");
    for i in 0..bits {
        let _ = writeln!(src, "q{i} = DFF(n{i})");
        let carry = if i == 0 {
            "en".to_string()
        } else {
            format!("c{i}")
        };
        let _ = writeln!(src, "n{i} = XOR(q{i}, {carry})");
        let _ = writeln!(src, "c{} = AND({carry}, q{i})", i + 1);
    }
    let _ = writeln!(src, "co = BUF(c{bits})");
    bench_format::parse_seq(name, &src).expect("generated counter is valid")
}

/// Names of the bundled sequential circuits, in registry order.
#[must_use]
pub fn seq_suite() -> Vec<&'static str> {
    vec!["s27", "shift4", "cnt3"]
}

/// Builds a bundled sequential circuit by name: `s27`, `shift4` (a
/// 4-stage shift register), or `cnt3` (a 3-bit enabled counter).
///
/// # Errors
///
/// Returns [`FsmError::Inconsistent`] for unknown names, mirroring
/// [`crate::build`].
pub fn build_seq(name: &str) -> Result<SeqNetlist, FsmError> {
    match name {
        "s27" => Ok(s27()),
        "shift4" => Ok(shift_register("shift4", 4)),
        "cnt3" => Ok(counter("cnt3", 3)),
        _ => Err(FsmError::Inconsistent {
            message: format!("unknown sequential circuit `{name}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_has_the_published_signature() {
        let s = s27();
        assert_eq!(s.num_true_inputs(), 4);
        assert_eq!(s.num_true_outputs(), 1);
        assert_eq!(s.num_ffs(), 3);
        assert_eq!(s.core().num_gates(), 10);
    }

    #[test]
    fn shift_register_shifts() {
        let s = shift_register("sr2", 2);
        // state [q0, q1], input [din]; dout = q1, next = [din, q0].
        let (po, next) = s.step(&[true, false], &[false]);
        assert_eq!(po, [false]);
        assert_eq!(next, [false, true]);
    }

    #[test]
    fn counter_counts_with_carry_out() {
        let c = counter("cnt2", 2);
        // 0b11 + en=1 wraps to 0b00 with carry out.
        let (po, next) = c.step(&[true, true], &[true]);
        assert_eq!(po, [true]);
        assert_eq!(next, [false, false]);
        // Disabled: state holds, no carry.
        let (po, next) = c.step(&[true, true], &[false]);
        assert_eq!(po, [false]);
        assert_eq!(next, [true, true]);
    }

    #[test]
    fn registry_resolves_every_suite_name() {
        for name in seq_suite() {
            let s = build_seq(name).unwrap();
            // Every bundled circuit's expansion must stay exhaustively
            // simulable.
            assert!(s.core().num_inputs() <= 12, "{name}");
        }
        assert!(build_seq("nope").is_err());
    }
}
