//! Small combinational circuits for tests, examples, and ablations.

use ndetect_netlist::{bench_format, Netlist, NetlistBuilder, NodeId};

/// The ISCAS-85 `c17` benchmark (6 NAND gates, 5 inputs, 2 outputs) —
/// the smallest standard combinational benchmark; handy as a sanity
/// fixture.
///
/// ```
/// let c17 = ndetect_circuits::extra::c17();
/// assert_eq!(c17.num_inputs(), 5);
/// assert_eq!(c17.num_gates(), 6);
/// ```
#[must_use]
pub fn c17() -> Netlist {
    const SRC: &str = "
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";
    bench_format::parse("c17", SRC).expect("c17 source is valid")
}

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..`, `cout`. A multi-level circuit with reconvergent fanout at
/// every bit — a good stress case for cone-restricted fault simulation.
///
/// # Panics
///
/// Panics if `bits == 0` or `2*bits + 1` exceeds the exhaustive limit.
#[must_use]
pub fn ripple_adder(bits: usize) -> Netlist {
    assert!(bits > 0);
    let mut b = NetlistBuilder::new(format!("add{bits}"));
    let a: Vec<NodeId> = (0..bits).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<NodeId> = (0..bits).map(|i| b.input(format!("b{i}"))).collect();
    let mut carry = b.input("cin");
    let mut sums = Vec::with_capacity(bits);
    for i in 0..bits {
        let axb = b.xor(format!("axb{i}"), &[a[i], bb[i]]).expect("fresh");
        let s = b.xor(format!("s{i}"), &[axb, carry]).expect("fresh");
        let g = b.and(format!("g{i}"), &[a[i], bb[i]]).expect("fresh");
        let p = b.and(format!("p{i}"), &[axb, carry]).expect("fresh");
        carry = b.or(format!("c{i}"), &[g, p]).expect("fresh");
        sums.push(s);
    }
    for s in sums {
        b.output(s);
    }
    b.output(carry);
    b.build().expect("adder is a valid netlist")
}

/// An `n`-input odd-parity tree built from 2-input XORs.
///
/// # Panics
///
/// Panics if `inputs == 0`.
#[must_use]
pub fn parity_tree(inputs: usize) -> Netlist {
    assert!(inputs > 0);
    let mut b = NetlistBuilder::new(format!("parity{inputs}"));
    let mut layer: Vec<NodeId> = (0..inputs).map(|i| b.input(format!("i{i}"))).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let name = b.fresh_name("x");
                next.push(b.xor(name, pair).expect("fresh"));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    b.output(layer[0]);
    b.build().expect("parity tree is a valid netlist")
}

/// A `2^sel`-way multiplexer: select inputs `s0..`, data inputs `d0..`;
/// one output. Two-level AND/OR structure with heavy inverter fanout.
///
/// # Panics
///
/// Panics if `sel == 0` or `sel > 4`.
#[must_use]
pub fn mux_tree(sel: usize) -> Netlist {
    assert!(sel > 0 && sel <= 4);
    let ways = 1usize << sel;
    let mut b = NetlistBuilder::new(format!("mux{ways}"));
    let sels: Vec<NodeId> = (0..sel).map(|i| b.input(format!("s{i}"))).collect();
    let data: Vec<NodeId> = (0..ways).map(|i| b.input(format!("d{i}"))).collect();
    let invs: Vec<NodeId> = (0..sel)
        .map(|i| b.not(format!("ns{i}"), sels[i]).expect("fresh"))
        .collect();
    let mut terms = Vec::with_capacity(ways);
    for (w, &d) in data.iter().enumerate() {
        let mut fanins = vec![d];
        for (i, (&s, &inv)) in sels.iter().zip(&invs).enumerate() {
            // Select bit i is the MSB-first bit of w.
            if (w >> (sel - 1 - i)) & 1 == 1 {
                fanins.push(s);
            } else {
                fanins.push(inv);
            }
        }
        terms.push(b.and(format!("t{w}"), &fanins).expect("fresh"));
    }
    let y = b.or("y", &terms).expect("fresh");
    b.output(y);
    b.build().expect("mux is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_adds() {
        let n = ripple_adder(3);
        for a in 0..8u32 {
            for c in 0..16u32 {
                let bv = c >> 1;
                if bv >= 8 {
                    continue;
                }
                let cin = c & 1;
                let mut bits = Vec::new();
                for i in 0..3 {
                    bits.push((a >> i) & 1 == 1);
                }
                for i in 0..3 {
                    bits.push((bv >> i) & 1 == 1);
                }
                bits.push(cin == 1);
                let outs = n.eval_bool(&bits);
                let mut sum = 0u32;
                for (i, &s) in outs.iter().take(3).enumerate() {
                    sum |= u32::from(s) << i;
                }
                let cout = u32::from(outs[3]);
                assert_eq!(a + bv + cin, sum + 8 * cout, "a={a} b={bv} cin={cin}");
            }
        }
    }

    #[test]
    fn parity_is_odd_parity() {
        let n = parity_tree(5);
        for v in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(n.eval_bool(&bits)[0], v.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn mux_selects() {
        let n = mux_tree(2);
        // Inputs: s0 s1 d0 d1 d2 d3.
        for sel in 0..4usize {
            for data in 0..16usize {
                let mut bits = vec![sel >> 1 & 1 == 1, sel & 1 == 1];
                for i in 0..4 {
                    bits.push((data >> i) & 1 == 1);
                }
                let expect = (data >> sel) & 1 == 1;
                assert_eq!(n.eval_bool(&bits)[0], expect, "sel={sel} data={data:04b}");
            }
        }
    }

    #[test]
    fn c17_known_vector() {
        let n = c17();
        assert_eq!(n.eval_bool(&[true; 5]), vec![true, false]);
    }
}
