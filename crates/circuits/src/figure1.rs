//! The paper's Figure 1 example circuit, reconstructed exactly.
//!
//! The netlist was reverse-engineered from the paper's Table 1 (which
//! lists `T(f_i)` for every collapsed stuck-at fault overlapping
//! `T(g_0)`) and is verified to reproduce **every** number in that table:
//!
//! * inputs: lines 1–4 (input 1 is the most significant vector bit);
//! * input 2 fans out to branch lines 5 (→ gate 9) and 6 (→ gate 10);
//! * input 3 fans out to branch lines 7 (→ gate 10) and 8 (→ gate 11);
//! * gates: 9 = AND(1, 5), 10 = AND(6, 7), 11 = OR(8, 4);
//! * all three gate outputs are primary outputs.
//!
//! With this structure the collapsed stuck-at list ordered by (line,
//! value) has exactly the paper's 16 faults `f_0 = 1/1 … f_15 = 11/1`,
//! `T(g_0) = {6,7}` for `g_0 = (9,0,10,1)`, `nmin(g_0) = 3`, and
//! `T(g_6) = {12}`, `nmin(g_6) = 4`.

use ndetect_faults::FaultUniverse;
use ndetect_netlist::{LineId, Netlist, NetlistBuilder};

/// Builds the Figure 1 circuit.
///
/// ```
/// let n = ndetect_circuits::figure1::netlist();
/// assert_eq!(n.num_inputs(), 4);
/// assert_eq!(n.num_outputs(), 3);
/// assert_eq!(n.lines().len(), 11); // paper lines 1..=11
/// ```
#[must_use]
pub fn netlist() -> Netlist {
    let mut b = NetlistBuilder::new("figure1");
    let i1 = b.input("1");
    let i2 = b.input("2");
    let i3 = b.input("3");
    let i4 = b.input("4");
    let g9 = b.and("9", &[i1, i2]).expect("fresh names");
    let g10 = b.and("10", &[i2, i3]).expect("fresh names");
    let g11 = b.or("11", &[i3, i4]).expect("fresh names");
    b.output(g9);
    b.output(g10);
    b.output(g11);
    b.build().expect("figure1 is a valid netlist")
}

/// The paper's numeric label of a line (lines are numbered 1–11 in
/// Figure 1; our [`LineId`]s are the same order, zero-based).
#[must_use]
pub fn paper_line_label(line: LineId) -> String {
    (line.index() + 1).to_string()
}

/// Finds the index (within `universe.bridges()`) of the paper's bridging
/// fault `(l1,a1,l2,a2)` given the *node names* of the two gate stems.
///
/// Returns `None` if the fault is undetectable or not enumerated.
#[must_use]
pub fn paper_bridge_index(
    universe: &FaultUniverse,
    victim: &str,
    victim_value: bool,
    aggressor: &str,
    aggressor_value: bool,
) -> Option<usize> {
    universe.find_bridge(victim, victim_value, aggressor, aggressor_value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_table1_sets() {
        let n = netlist();
        let u = FaultUniverse::build(&n).unwrap();
        // 16 collapsed faults, indexed f0..f15 by (line, value).
        assert_eq!(u.targets().len(), 16);
        let expect: &[(usize, usize, bool, &[usize])] = &[
            (0, 1, true, &[4, 5, 6, 7]),
            (1, 2, false, &[6, 7, 12, 13, 14, 15]),
            (3, 3, false, &[2, 6, 7, 10, 14, 15]),
            (9, 8, false, &[2, 6, 10, 14]),
            (11, 9, true, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]),
            (12, 10, false, &[6, 7, 14, 15]),
            (14, 11, false, &[1, 2, 3, 5, 6, 7, 9, 10, 11, 13, 14, 15]),
        ];
        for &(idx, paper_line, value, t_set) in expect {
            let f = u.targets()[idx];
            assert_eq!(f.line.index() + 1, paper_line, "f{idx} line");
            assert_eq!(f.value, value, "f{idx} value");
            assert_eq!(u.target_set(idx).to_vec(), t_set, "T(f{idx})");
        }
    }

    #[test]
    fn paper_g0_and_g6() {
        let n = netlist();
        let u = FaultUniverse::build(&n).unwrap();
        let g0 = paper_bridge_index(&u, "9", false, "10", true).unwrap();
        assert_eq!(u.bridge_set(g0).to_vec(), vec![6, 7]);
        let g6 = paper_bridge_index(&u, "11", false, "9", true).unwrap();
        assert_eq!(u.bridge_set(g6).to_vec(), vec![12]);
    }

    #[test]
    fn line_labels() {
        let n = netlist();
        let labels: Vec<String> = n
            .lines()
            .lines()
            .iter()
            .map(|l| paper_line_label(l.id()))
            .collect();
        assert_eq!(labels.len(), 11);
        assert_eq!(labels[0], "1");
        assert_eq!(labels[10], "11");
    }
}
