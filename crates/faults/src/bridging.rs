//! Four-way bridging faults between outputs of multi-input gates.

use ndetect_netlist::{LineId, Netlist, ReachabilityMatrix};
use std::fmt;

/// A four-way bridging fault `(l1, a1, l2, a2)`.
///
/// The fault is **activated** on vectors where the fault-free circuit has
/// `l1 = a1` and `l2 = a2`; its effect is to flip the *victim* `l1` to
/// `ā1` (the aggressor `l2` is unaffected). Detection additionally
/// requires the flipped value to propagate to a primary output.
///
/// For each unordered pair of candidate stems `{x, y}` the four-way model
/// contributes four faults (either line may be the victim, under either of
/// the two opposing-value activation conditions):
/// `(x,0,y,1)`, `(x,1,y,0)`, `(y,0,x,1)`, `(y,1,x,0)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BridgingFault {
    /// The victim line (a gate-output stem).
    pub victim: LineId,
    /// The fault-free victim value under which the fault is activated.
    pub victim_value: bool,
    /// The aggressor line (a gate-output stem).
    pub aggressor: LineId,
    /// The aggressor value required for activation.
    pub aggressor_value: bool,
}

impl BridgingFault {
    /// Creates a bridging fault `(victim, a1, aggressor, a2)`.
    #[must_use]
    pub fn new(
        victim: LineId,
        victim_value: bool,
        aggressor: LineId,
        aggressor_value: bool,
    ) -> Self {
        BridgingFault {
            victim,
            victim_value,
            aggressor,
            aggressor_value,
        }
    }

    /// Renders the paper's `(l1,a1,l2,a2)` notation with line names, e.g.
    /// `"(9,0,10,1)"`.
    ///
    /// # Panics
    ///
    /// Panics if the line ids do not belong to `netlist`.
    #[must_use]
    pub fn name(&self, netlist: &Netlist) -> String {
        format!(
            "({},{},{},{})",
            netlist.lines().line(self.victim).name(),
            u8::from(self.victim_value),
            netlist.lines().line(self.aggressor).name(),
            u8::from(self.aggressor_value),
        )
    }
}

impl fmt::Display for BridgingFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{},{},{})",
            self.victim,
            u8::from(self.victim_value),
            self.aggressor,
            u8::from(self.aggressor_value)
        )
    }
}

/// Which subset of bridge behaviours to enumerate between a candidate
/// line pair.
///
/// The paper's **four-way** model is the union of the wired-AND and
/// wired-OR dominance behaviours: under each opposing-value activation
/// condition, either line may be the victim.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BridgeModel {
    /// All four faults per pair (the paper's model):
    /// `(x,0,y,1)`, `(x,1,y,0)`, `(y,0,x,1)`, `(y,1,x,0)`.
    #[default]
    FourWay,
    /// Wired-AND only: a 0 on the aggressor pulls the victim down —
    /// `(x,1,y,0)`, `(y,1,x,0)`.
    WiredAnd,
    /// Wired-OR only: a 1 on the aggressor pulls the victim up —
    /// `(x,0,y,1)`, `(y,0,x,1)`.
    WiredOr,
}

impl BridgeModel {
    /// The faults this model contributes for an unordered candidate
    /// pair `{x, y}`, in deterministic order.
    #[must_use]
    pub fn pair_faults(self, x: LineId, y: LineId) -> Vec<BridgingFault> {
        match self {
            BridgeModel::FourWay => vec![
                BridgingFault::new(x, false, y, true),
                BridgingFault::new(x, true, y, false),
                BridgingFault::new(y, false, x, true),
                BridgingFault::new(y, true, x, false),
            ],
            BridgeModel::WiredAnd => vec![
                BridgingFault::new(x, true, y, false),
                BridgingFault::new(y, true, x, false),
            ],
            BridgeModel::WiredOr => vec![
                BridgingFault::new(x, false, y, true),
                BridgingFault::new(y, false, x, true),
            ],
        }
    }
}

/// Enumerates all **non-feedback** bridging faults of the given model
/// between outputs of multi-input gates (see [`enumerate_four_way`] for
/// the paper's default model and the ordering guarantees).
#[must_use]
pub fn enumerate_bridges(
    netlist: &Netlist,
    reach: &ReachabilityMatrix,
    model: BridgeModel,
) -> Vec<BridgingFault> {
    enumerate_bridges_among(netlist, reach, model, &netlist.multi_input_gate_stems())
}

/// Enumerates all **non-feedback** bridging faults of the given model
/// between the given candidate stems, in stem-list order.
///
/// This is [`enumerate_bridges`] with the candidate population chosen by
/// the caller instead of defaulting to every multi-input gate stem — the
/// time-frame expansion uses it to restrict bridges to the frame copies
/// of original circuit gates, excluding fault-gadget instrumentation.
///
/// # Panics
///
/// Panics if a stem id does not belong to `netlist`.
#[must_use]
pub fn enumerate_bridges_among(
    netlist: &Netlist,
    reach: &ReachabilityMatrix,
    model: BridgeModel,
    stems: &[LineId],
) -> Vec<BridgingFault> {
    let mut faults = Vec::new();
    for (i, &x) in stems.iter().enumerate() {
        let xd = netlist.lines().line(x).driver();
        for &y in &stems[i + 1..] {
            let yd = netlist.lines().line(y).driver();
            if reach.connected_either_direction(xd, yd) {
                continue;
            }
            faults.extend(model.pair_faults(x, y));
        }
    }
    faults
}

/// Enumerates all **non-feedback** four-way bridging faults between
/// outputs of multi-input gates.
///
/// Pairs with a structural path between the two gates (in either
/// direction) are *feedback* bridges and are skipped, following the
/// paper's "detectable non-feedback four-way bridging faults between
/// outputs of multi-input gates" (detectability is established later by
/// simulation — see [`crate::FaultUniverse`]).
///
/// Faults are emitted in a deterministic order: pairs `(x, y)` with
/// `x` earlier in the topological stem list, each contributing
/// `(x,0,y,1)`, `(x,1,y,0)`, `(y,0,x,1)`, `(y,1,x,0)` — which makes the
/// paper's example fault `g0 = (9,0,10,1)` fault number 0 of Figure 1.
///
/// ```
/// use ndetect_netlist::{NetlistBuilder, ReachabilityMatrix};
/// use ndetect_faults::enumerate_four_way;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let c = b.input("c");
/// let g1 = b.and("g1", &[a, c])?;
/// let g2 = b.or("g2", &[a, c])?;
/// b.output(g1);
/// b.output(g2);
/// let n = b.build()?;
/// let reach = ReachabilityMatrix::compute(&n);
/// // One independent pair of multi-input gates -> 4 faults.
/// assert_eq!(enumerate_four_way(&n, &reach).len(), 4);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn enumerate_four_way(netlist: &Netlist, reach: &ReachabilityMatrix) -> Vec<BridgingFault> {
    enumerate_bridges(netlist, reach, BridgeModel::FourWay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_netlist::NetlistBuilder;

    fn figure1() -> Netlist {
        let mut b = NetlistBuilder::new("figure1");
        let i1 = b.input("1");
        let i2 = b.input("2");
        let i3 = b.input("3");
        let i4 = b.input("4");
        let g9 = b.and("9", &[i1, i2]).unwrap();
        let g10 = b.and("10", &[i2, i3]).unwrap();
        let g11 = b.or("11", &[i3, i4]).unwrap();
        b.output(g9);
        b.output(g10);
        b.output(g11);
        b.build().unwrap()
    }

    #[test]
    fn figure1_enumeration_order_and_count() {
        let n = figure1();
        let reach = ReachabilityMatrix::compute(&n);
        let faults = enumerate_four_way(&n, &reach);
        // Three independent pairs {9,10},{9,11},{10,11} x 4 = 12 faults.
        assert_eq!(faults.len(), 12);
        // g0 of the paper is the very first fault.
        assert_eq!(faults[0].name(&n), "(9,0,10,1)");
        // The paper's g6 = (11,0,9,1) is fault index 6.
        assert_eq!(faults[6].name(&n), "(11,0,9,1)");
    }

    #[test]
    fn feedback_pairs_are_excluded() {
        // g2 depends on g1 -> the pair is a feedback bridge.
        let mut b = NetlistBuilder::new("fb");
        let a = b.input("a");
        let c = b.input("c");
        let d = b.input("d");
        let g1 = b.and("g1", &[a, c]).unwrap();
        let g2 = b.or("g2", &[g1, d]).unwrap();
        b.output(g2);
        let n = b.build().unwrap();
        let reach = ReachabilityMatrix::compute(&n);
        assert!(enumerate_four_way(&n, &reach).is_empty());
    }

    #[test]
    fn single_input_gates_are_not_candidates() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let g1 = b.not("g1", a).unwrap();
        let g2 = b.not("g2", c).unwrap();
        b.output(g1);
        b.output(g2);
        let n = b.build().unwrap();
        let reach = ReachabilityMatrix::compute(&n);
        assert!(enumerate_four_way(&n, &reach).is_empty());
    }

    #[test]
    fn model_variants_partition_the_four_way_set() {
        let n = figure1();
        let reach = ReachabilityMatrix::compute(&n);
        let four = enumerate_bridges(&n, &reach, BridgeModel::FourWay);
        let wand = enumerate_bridges(&n, &reach, BridgeModel::WiredAnd);
        let wor = enumerate_bridges(&n, &reach, BridgeModel::WiredOr);
        assert_eq!(wand.len() + wor.len(), four.len());
        for f in &wand {
            assert!(four.contains(f));
            assert!(f.victim_value && !f.aggressor_value);
        }
        for f in &wor {
            assert!(four.contains(f));
            assert!(!f.victim_value && f.aggressor_value);
        }
        // Disjoint.
        assert!(wand.iter().all(|f| !wor.contains(f)));
    }

    #[test]
    fn display_forms() {
        let f = BridgingFault::new(LineId::new(8), false, LineId::new(9), true);
        assert_eq!(f.to_string(), "(l8,0,l9,1)");
    }
}
