//! The complete fault picture of one circuit: targets `F` and untargeted
//! faults `G` with their detection sets.

// Hot module: universe building drives the budgeted data plane; any word
// buffer it allocates must come from `ndetect_sim::rows`.
#![deny(clippy::disallowed_methods)]

use crate::artifact::{
    explicit_universe_key, universe_key, UniverseArtifact, UniverseArtifactRef, KIND_UNIVERSE,
};
use crate::bridging::{enumerate_bridges_among, BridgeModel, BridgingFault};
use crate::collapse::CollapsedFaults;
use crate::error::FaultError;
use crate::sim::FaultSimulator;
use crate::stuck_at::{all_stuck_at_faults, StuckAtFault};
use ndetect_netlist::Netlist;
use ndetect_obs::trace;
use ndetect_sim::{parallel, MemoryBudget, PatternSpace, SimScratch, VectorSet};
use ndetect_store::{decode_from_slice, encode_to_vec, ArtifactKey, Store};
use std::fmt;
use std::ops::Range;

/// Configuration for [`FaultUniverse::build_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UniverseOptions {
    /// Apply equivalence collapsing to the target stuck-at faults (the
    /// paper's setting). With `false`, every stuck-at fault on every line
    /// is a target — useful for the collapsing ablation, since a larger
    /// `F` can only lower `nmin` values.
    pub collapse_targets: bool,
    /// Enumerate and simulate the bridging fault population. With
    /// `false` the universe carries only target faults (faster when only
    /// test-set construction is needed).
    pub include_bridges: bool,
    /// Which bridging behaviours to enumerate (the paper's four-way
    /// model by default; wired-AND / wired-OR subsets for the
    /// model-sensitivity ablation).
    pub bridge_model: BridgeModel,
    /// Worker threads for fault simulation; `0` means auto
    /// (`NDETECT_THREADS`, then the machine's available parallelism).
    /// The fault list is tiled across workers, each owning a read-only
    /// view of the simulator and producing its own slice of detection
    /// sets, so results are bit-identical for every thread count.
    pub threads: usize,
    /// Per-worker kernel memory budget. Bounds the simulator's working
    /// set (good/others tables + faulty rows) by streaming block tiles
    /// through the kernel; like [`Self::threads`] it is a performance
    /// knob — detection sets are bit-identical for every budget, so it
    /// is excluded from the store key. `Auto` consults
    /// `NDETECT_MEM_BUDGET` and defaults to unbounded.
    pub mem_budget: MemoryBudget,
}

impl Default for UniverseOptions {
    fn default() -> Self {
        UniverseOptions {
            collapse_targets: true,
            include_bridges: true,
            bridge_model: BridgeModel::FourWay,
            threads: 0,
            mem_budget: MemoryBudget::Auto,
        }
    }
}

impl UniverseOptions {
    /// The default options with an explicit worker count (`0` = auto) —
    /// the common case for thread plumbing.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        UniverseOptions {
            threads,
            ..UniverseOptions::default()
        }
    }
}

/// An explicitly chosen fault population for [`FaultUniverse::build_explicit`]:
/// the caller names the exact stuck-at targets and the candidate stems for
/// bridging enumeration, plus the canonical bytes that identify the *source*
/// model for store keying.
///
/// This is how lowered fault models ride the stuck-at machinery: time-frame
/// expansion lowers transition-delay faults to stuck-at faults on gadget
/// lines of the expanded netlist, and those gadget lines are meaningful
/// targets while the gadget instrumentation itself must stay out of the
/// bridging population.
#[derive(Clone, Debug)]
pub struct ExplicitTargets {
    /// The target stuck-at faults `F`, in the caller's order.
    pub targets: Vec<StuckAtFault>,
    /// Candidate stems for bridging-fault enumeration (the untargeted
    /// population `G`); pass an empty slice for no bridges.
    pub bridge_stems: Vec<ndetect_netlist::LineId>,
    /// Canonical bytes identifying the source model; the store key hashes
    /// these instead of the simulated netlist's canonical bytes.
    pub canonical: Vec<u8>,
}

/// The target fault set `F` (collapsed single stuck-at), the untargeted
/// fault set `G` (detectable non-feedback four-way bridging), and every
/// detection set `T(h) ⊆ U`, for one circuit.
///
/// This is the single input the worst-case and average-case analyses in
/// `ndetect-core` consume. Building it runs one exhaustive bit-parallel
/// fault simulation per fault, with the fault list tiled across worker
/// threads (see [`UniverseOptions::threads`]).
///
/// # Memory
///
/// Detection sets are dense bitsets of `2^I` bits each. For `I` inputs and
/// `|G|` bridging faults the universe holds roughly
/// `(|F| + |G|) * 2^I / 8` bytes — e.g. ~50 MB for `I = 13`,
/// `|G| = 50 000`. Keep `I ≤ 14` for large bridging populations.
pub struct FaultUniverse {
    netlist: Netlist,
    simulator: FaultSimulator,
    collapsed: CollapsedFaults,
    options: UniverseOptions,
    targets: Vec<StuckAtFault>,
    target_sets: Vec<VectorSet>,
    bridges: Vec<BridgingFault>,
    bridge_sets: Vec<VectorSet>,
    num_undetectable_bridges: usize,
    /// `Some` for explicit-target universes: overrides [`Self::store_key`]
    /// so derived artifacts are keyed by the source model's canonical
    /// bytes, not the simulated netlist's.
    explicit_key: Option<ArtifactKey>,
}

impl FaultUniverse {
    /// Builds the full universe with default options (collapsed targets,
    /// bridging faults included).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Sim`] if the circuit has too many inputs for
    /// exhaustive simulation.
    pub fn build(netlist: &Netlist) -> Result<Self, FaultError> {
        Self::build_with(netlist, UniverseOptions::default())
    }

    /// Builds the universe with explicit options.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Sim`] if the circuit has too many inputs for
    /// exhaustive simulation.
    pub fn build_with(netlist: &Netlist, options: UniverseOptions) -> Result<Self, FaultError> {
        Self::build_inner(netlist, options, None)
    }

    /// Builds a universe over an explicitly chosen fault population: the
    /// targets `F` are exactly `explicit.targets` (no enumeration, no
    /// collapsing — `options.collapse_targets` is ignored) and the bridging
    /// candidates are `explicit.bridge_stems`. The resulting universe's
    /// [`Self::store_key`] hashes `explicit.canonical` instead of the
    /// netlist, so derived artifacts follow the source model's identity.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Sim`] if the circuit has too many inputs for
    /// exhaustive simulation.
    ///
    /// # Panics
    ///
    /// Panics if a target line or bridge stem does not belong to `netlist`.
    pub fn build_explicit(
        netlist: &Netlist,
        explicit: &ExplicitTargets,
        options: UniverseOptions,
    ) -> Result<Self, FaultError> {
        Self::build_inner(netlist, options, Some(explicit))
    }

    fn build_inner(
        netlist: &Netlist,
        options: UniverseOptions,
        explicit: Option<&ExplicitTargets>,
    ) -> Result<Self, FaultError> {
        let num_lines = netlist.lines().len();
        if let Some(explicit) = explicit {
            assert!(
                explicit
                    .targets
                    .iter()
                    .map(|f| f.line)
                    .chain(explicit.bridge_stems.iter().copied())
                    .all(|l| l.index() < num_lines),
                "explicit fault population references lines outside the netlist"
            );
        }
        let mut build_span = trace::span("universe.build");
        build_span.field("circuit", netlist.name());
        let started = std::time::Instant::now();
        let threads = parallel::resolve_threads(options.threads);
        let simulator = FaultSimulator::with_budget(netlist, threads, options.mem_budget)?;
        build_span.field("kernel", simulator.kernel_mode());
        let collapsed = {
            let _span = trace::span("universe.collapse");
            CollapsedFaults::compute(netlist)
        };

        let targets: Vec<StuckAtFault> = match explicit {
            Some(explicit) => explicit.targets.clone(),
            None if options.collapse_targets => collapsed.representatives().to_vec(),
            None => all_stuck_at_faults(netlist),
        };
        // Fault-parallel tiling: each worker simulates a tile of the
        // fault list against the shared read-only simulator, reusing one
        // event-propagation scratch for its whole tile; tiles are
        // reassembled in fault order, so the sets are bit-identical to a
        // serial pass. Under a bounded budget the sweep is additionally
        // tile-major over blocks (see [`build_sets_tiled`]).
        let target_sets: Vec<VectorSet> = {
            let mut span = trace::span("universe.target_sweep");
            span.field("faults", targets.len());
            if simulator.tile_width() < simulator.space().num_blocks() {
                build_sets_tiled(netlist, &simulator, threads, &targets, |n, s, &f, b, sc| {
                    s.stuck_words(n, f, b, sc)
                })
            } else {
                parallel::parallel_map_with(
                    threads,
                    &targets,
                    || simulator.new_scratch(),
                    |scratch, _, &f| simulator.detection_set_stuck_with(netlist, f, scratch),
                )
            }
        };

        let mut bridges = Vec::new();
        let mut bridge_sets = Vec::new();
        let mut num_undetectable_bridges = 0;
        if options.include_bridges {
            let mut span = trace::span("universe.bridge_sweep");
            let default_stems;
            let stems: &[ndetect_netlist::LineId] = match explicit {
                Some(explicit) => &explicit.bridge_stems,
                None => {
                    default_stems = netlist.multi_input_gate_stems();
                    &default_stems
                }
            };
            let enumerated = enumerate_bridges_among(
                netlist,
                simulator.reachability(),
                options.bridge_model,
                stems,
            );
            span.field("faults", enumerated.len());
            let sets = if simulator.tile_width() < simulator.space().num_blocks() {
                build_sets_tiled(
                    netlist,
                    &simulator,
                    threads,
                    &enumerated,
                    |n, s, f, b, sc| s.bridge_words(n, f, b, sc),
                )
            } else {
                parallel::parallel_map_with(
                    threads,
                    &enumerated,
                    || simulator.new_scratch(),
                    |scratch, _, fault| {
                        simulator.detection_set_bridge_with(netlist, fault, scratch)
                    },
                )
            };
            for (fault, set) in enumerated.into_iter().zip(sets) {
                if set.is_empty() {
                    num_undetectable_bridges += 1;
                } else {
                    bridges.push(fault);
                    bridge_sets.push(set);
                }
            }
        }

        build_span.field("targets", targets.len());
        build_span.field("bridges", bridges.len());
        // Library-level metrics: builds across the whole process (the
        // serve engine separately counts *its* builds per instance).
        ndetect_obs::global().counter("universe_builds_total").inc();
        ndetect_obs::global()
            .histogram("universe_build_us")
            .record(started.elapsed().as_micros() as u64);
        Ok(FaultUniverse {
            netlist: netlist.clone(),
            simulator,
            collapsed,
            options,
            targets,
            target_sets,
            bridges,
            bridge_sets,
            num_undetectable_bridges,
            explicit_key: explicit.map(|x| explicit_universe_key(&x.canonical, options)),
        })
    }

    /// Builds the universe with a content-addressed on-disk store as a
    /// fast path: a valid cache entry skips every fault simulation (only
    /// cheap structural tables are recomputed); a miss builds normally
    /// and then populates the store (best effort — a read-only cache
    /// directory degrades to plain [`Self::build_with`]).
    ///
    /// Corrupt, truncated, or version-mismatched entries are silently
    /// treated as misses; loaded results are bit-identical to a fresh
    /// build for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Sim`] if the circuit has too many inputs
    /// for exhaustive simulation.
    pub fn build_stored(
        netlist: &Netlist,
        options: UniverseOptions,
        store: Option<&Store>,
    ) -> Result<Self, FaultError> {
        let Some(store) = store else {
            return Self::build_with(netlist, options);
        };
        let key = universe_key(netlist, options);
        if let Some(payload) = store.load(key, KIND_UNIVERSE) {
            if let Some(universe) = Self::from_artifact_bytes(netlist, options, &payload) {
                return Ok(universe);
            }
            // Decoded but inconsistent with this netlist (hash collision
            // or stale shape): fall through to a fresh build.
        }
        let universe = Self::build_with(netlist, options)?;
        store.save_best_effort(key, KIND_UNIVERSE, &encode_to_vec(&universe.artifact_ref()));
        Ok(universe)
    }

    /// [`Self::build_explicit`] with the store fast path of
    /// [`Self::build_stored`]: the cache key is
    /// [`explicit_universe_key`]`(explicit.canonical, options)`, so warm
    /// runs skip every fault simulation on the expanded netlist.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Sim`] if the circuit has too many inputs for
    /// exhaustive simulation.
    ///
    /// # Panics
    ///
    /// Panics if a target line or bridge stem does not belong to `netlist`.
    pub fn build_stored_explicit(
        netlist: &Netlist,
        explicit: &ExplicitTargets,
        options: UniverseOptions,
        store: Option<&Store>,
    ) -> Result<Self, FaultError> {
        let Some(store) = store else {
            return Self::build_explicit(netlist, explicit, options);
        };
        let key = explicit_universe_key(&explicit.canonical, options);
        if let Some(payload) = store.load(key, KIND_UNIVERSE) {
            if let Some(mut universe) = Self::from_artifact_bytes(netlist, options, &payload) {
                universe.explicit_key = Some(key);
                return Ok(universe);
            }
        }
        let universe = Self::build_explicit(netlist, explicit, options)?;
        store.save_best_effort(key, KIND_UNIVERSE, &encode_to_vec(&universe.artifact_ref()));
        Ok(universe)
    }

    /// The content-addressed store key of this universe (canonical
    /// netlist bytes + semantic options + codec version; for
    /// explicit-target universes, the source model's canonical bytes
    /// instead). Derived artifacts (e.g. `nmin` vectors) mix this into
    /// their own keys.
    #[must_use]
    pub fn store_key(&self) -> ArtifactKey {
        self.explicit_key
            .unwrap_or_else(|| universe_key(&self.netlist, self.options))
    }

    /// `true` when this universe was built over an explicitly chosen
    /// fault population ([`Self::build_explicit`]).
    #[must_use]
    pub fn is_explicit(&self) -> bool {
        self.explicit_key.is_some()
    }

    /// Borrowed serialization view — the save path encodes directly
    /// from the universe's own buffers, no clones.
    fn artifact_ref(&self) -> UniverseArtifactRef<'_> {
        UniverseArtifactRef {
            num_inputs: self.netlist.num_inputs(),
            num_nodes: self.netlist.num_nodes(),
            num_lines: self.netlist.lines().len(),
            options: self.options,
            targets: &self.targets,
            target_sets: &self.target_sets,
            bridges: &self.bridges,
            bridge_sets: &self.bridge_sets,
            num_undetectable_bridges: self.num_undetectable_bridges,
            good: self.simulator.good_values(),
        }
    }

    /// Reconstructs a universe from serialized artifact bytes, or `None`
    /// when the bytes do not decode to a universe consistent with this
    /// netlist and these options.
    fn from_artifact_bytes(
        netlist: &Netlist,
        options: UniverseOptions,
        payload: &[u8],
    ) -> Option<Self> {
        let artifact: UniverseArtifact = decode_from_slice(payload).ok()?;
        if !artifact.is_consistent_with(netlist, options) {
            return None;
        }
        let simulator =
            FaultSimulator::with_good_values_budget(netlist, artifact.good, options.mem_budget)
                .ok()?;
        let collapsed = CollapsedFaults::compute(netlist);
        Some(FaultUniverse {
            netlist: netlist.clone(),
            simulator,
            collapsed,
            options,
            targets: artifact.targets,
            target_sets: artifact.target_sets,
            bridges: artifact.bridges,
            bridge_sets: artifact.bridge_sets,
            num_undetectable_bridges: artifact.num_undetectable_bridges,
            explicit_key: None,
        })
    }

    /// The circuit this universe was built from.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The exhaustive pattern space `U`.
    #[must_use]
    pub fn space(&self) -> &PatternSpace {
        self.simulator.space()
    }

    /// The underlying fault simulator (reusable for ad-hoc faults).
    #[must_use]
    pub fn simulator(&self) -> &FaultSimulator {
        &self.simulator
    }

    /// The options this universe was built with.
    #[must_use]
    pub fn options(&self) -> UniverseOptions {
        self.options
    }

    /// The equivalence-collapsing result (available even when targets are
    /// uncollapsed).
    #[must_use]
    pub fn collapsed(&self) -> &CollapsedFaults {
        &self.collapsed
    }

    /// The target faults `F`, ordered by (line id, stuck value).
    #[must_use]
    pub fn targets(&self) -> &[StuckAtFault] {
        &self.targets
    }

    /// `T(f_i)` for target index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn target_set(&self, i: usize) -> &VectorSet {
        &self.target_sets[i]
    }

    /// All target detection sets, parallel to [`Self::targets`].
    #[must_use]
    pub fn target_sets(&self) -> &[VectorSet] {
        &self.target_sets
    }

    /// Number of target faults with a non-empty detection set — the
    /// population an n-detection test set can actually be required to
    /// detect (undetectable targets contribute nothing to the
    /// requirement `min(n, |T(f)|)`).
    #[must_use]
    pub fn num_detectable_targets(&self) -> usize {
        self.target_sets.iter().filter(|s| !s.is_empty()).count()
    }

    /// The untargeted faults `G`: detectable non-feedback four-way
    /// bridging faults, in enumeration order.
    #[must_use]
    pub fn bridges(&self) -> &[BridgingFault] {
        &self.bridges
    }

    /// `T(g_j)` for bridge index `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn bridge_set(&self, j: usize) -> &VectorSet {
        &self.bridge_sets[j]
    }

    /// All bridging detection sets, parallel to [`Self::bridges`].
    #[must_use]
    pub fn bridge_sets(&self) -> &[VectorSet] {
        &self.bridge_sets
    }

    /// Number of enumerated four-way bridging faults that turned out to be
    /// undetectable (excluded from [`Self::bridges`]).
    #[must_use]
    pub fn num_undetectable_bridges(&self) -> usize {
        self.num_undetectable_bridges
    }

    /// Finds a target fault index by the paper's `line/value` notation
    /// (using netlist line names).
    #[must_use]
    pub fn find_target(&self, line_name: &str, value: bool) -> Option<usize> {
        self.targets
            .iter()
            .position(|f| f.value == value && self.netlist.lines().line(f.line).name() == line_name)
    }

    /// Finds a bridging fault index by the paper's `(l1,a1,l2,a2)`
    /// notation (using netlist line names).
    #[must_use]
    pub fn find_bridge(
        &self,
        victim_name: &str,
        victim_value: bool,
        aggressor_name: &str,
        aggressor_value: bool,
    ) -> Option<usize> {
        let lines = self.netlist.lines();
        self.bridges.iter().position(|b| {
            b.victim_value == victim_value
                && b.aggressor_value == aggressor_value
                && lines.line(b.victim).name() == victim_name
                && lines.line(b.aggressor).name() == aggressor_name
        })
    }
}

/// Builds detection sets for a fault list under a bounded memory budget
/// with a **tile-major** sweep: the outer loop walks budget-sized block
/// tiles in order, and the inner [`parallel::parallel_map_with`] fans
/// the whole fault list across workers, so each worker gathers its
/// private tile of the good/others tables **once per tile** and then
/// streams its entire fault chunk through it. (A fault-major sweep would
/// regather the tile tables for every fault — `O(|F| · nodes · blocks)`
/// instead of `O(workers · nodes · blocks)`.)
///
/// Tiles are visited in block order and per-fault words are appended in
/// fault order, so the resulting sets are bit-identical to the
/// full-width single-pass build for every budget and thread count.
fn build_sets_tiled<T: Sync, F>(
    netlist: &Netlist,
    simulator: &FaultSimulator,
    threads: usize,
    faults: &[T],
    sim_words: F,
) -> Vec<VectorSet>
where
    F: Fn(&Netlist, &FaultSimulator, &T, Range<usize>, &mut SimScratch) -> Vec<u64> + Sync,
{
    let num_blocks = simulator.space().num_blocks();
    let num_patterns = simulator.space().num_patterns();
    let tile = simulator.tile_width();
    let mut words: Vec<Vec<u64>> = faults
        .iter()
        .map(|_| Vec::with_capacity(num_blocks))
        .collect();
    let mut start = 0;
    while start < num_blocks {
        let end = num_blocks.min(start + tile);
        let mut tile_span = trace::span("universe.tile_gather");
        tile_span.field("blocks", end - start);
        tile_span.field("faults", faults.len());
        let spans = parallel::parallel_map_with(
            threads,
            faults,
            || simulator.new_scratch(),
            |scratch, _, fault| sim_words(netlist, simulator, fault, start..end, scratch),
        );
        for (buf, span) in words.iter_mut().zip(spans) {
            buf.extend_from_slice(&span);
        }
        start = end;
    }
    words
        .into_iter()
        .map(|w| VectorSet::from_block_words(num_patterns, w))
        .collect()
}

impl fmt::Debug for FaultUniverse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultUniverse")
            .field("circuit", &self.netlist.name())
            .field("num_targets", &self.targets.len())
            .field("num_bridges", &self.bridges.len())
            .field("num_undetectable_bridges", &self.num_undetectable_bridges)
            .field("num_patterns", &self.space().num_patterns())
            .finish()
    }
}

impl fmt::Display for FaultUniverse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = if self.explicit_key.is_some() {
            "explicit targets"
        } else {
            "collapsed stuck-at"
        };
        write!(
            f,
            "{}: |F| = {} {label}, |G| = {} bridging ({} undetectable excluded), |U| = {}",
            self.netlist.name(),
            self.targets.len(),
            self.bridges.len(),
            self.num_undetectable_bridges,
            self.space().num_patterns()
        )
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may use raw vec! freely
mod tests {
    use super::*;
    use ndetect_netlist::NetlistBuilder;

    fn figure1() -> Netlist {
        let mut b = NetlistBuilder::new("figure1");
        let i1 = b.input("1");
        let i2 = b.input("2");
        let i3 = b.input("3");
        let i4 = b.input("4");
        let g9 = b.and("9", &[i1, i2]).unwrap();
        let g10 = b.and("10", &[i2, i3]).unwrap();
        let g11 = b.or("11", &[i3, i4]).unwrap();
        b.output(g9);
        b.output(g10);
        b.output(g11);
        b.build().unwrap()
    }

    #[test]
    fn figure1_universe_matches_paper() {
        let n = figure1();
        let u = FaultUniverse::build(&n).unwrap();
        assert_eq!(u.targets().len(), 16);
        // Paper's f0 = 1/1 has T = {4,5,6,7}.
        let f0 = u.find_target("1", true).unwrap();
        assert_eq!(f0, 0);
        assert_eq!(u.target_set(f0).to_vec(), vec![4, 5, 6, 7]);
        // g0 = (9,0,10,1) exists and T(g0) = {6,7}.
        let g0 = u.find_bridge("9", false, "10", true).unwrap();
        assert_eq!(u.bridge_set(g0).to_vec(), vec![6, 7]);
        // Of the 12 enumerated bridges, (10,1,11,0) and (11,0,10,1) are
        // undetectable: they require line 10 = 1 (input 3 = 1) and
        // line 11 = 0 (input 3 = 0) simultaneously.
        assert_eq!(u.bridges().len(), 10);
        assert_eq!(u.num_undetectable_bridges(), 2);
        assert!(u.find_bridge("10", true, "11", false).is_none());
        assert!(u.find_bridge("11", false, "10", true).is_none());
    }

    #[test]
    fn uncollapsed_universe_is_larger() {
        let n = figure1();
        let collapsed = FaultUniverse::build(&n).unwrap();
        let full = FaultUniverse::build_with(
            &n,
            UniverseOptions {
                collapse_targets: false,
                include_bridges: false,
                ..UniverseOptions::default()
            },
        )
        .unwrap();
        assert_eq!(full.targets().len(), 22); // 11 lines x 2
        assert!(full.targets().len() > collapsed.targets().len());
        assert!(full.bridges().is_empty());
    }

    #[test]
    fn equivalent_faults_have_identical_detection_sets() {
        let n = figure1();
        let u = FaultUniverse::build(&n).unwrap();
        let sim = u.simulator();
        for class in u.collapsed().classes() {
            let sets: Vec<Vec<usize>> = class
                .iter()
                .map(|&f| sim.detection_set_stuck(&n, f).to_vec())
                .collect();
            for pair in sets.windows(2) {
                assert_eq!(pair[0], pair[1], "class {class:?}");
            }
        }
    }

    #[test]
    fn detectable_target_count_excludes_empty_sets() {
        let n = figure1();
        let u = FaultUniverse::build(&n).unwrap();
        let manual = u.target_sets().iter().filter(|s| !s.is_empty()).count();
        assert_eq!(u.num_detectable_targets(), manual);
        // Every collapsed figure1 target is detectable.
        assert_eq!(u.num_detectable_targets(), u.targets().len());
    }

    #[test]
    fn bounded_budget_builds_identical_universe() {
        // 8 inputs -> 256 patterns -> 4 blocks; a tiny budget forces the
        // tile-major sweep with several tiles, which must reproduce the
        // unbounded universe bit for bit (targets and bridges alike).
        let mut b = NetlistBuilder::new("wide8");
        let inputs: Vec<_> = (0..8).map(|i| b.input(format!("i{i}"))).collect();
        let a0 = b.and("a0", &inputs[0..4]).unwrap();
        let o0 = b.or("o0", &inputs[4..8]).unwrap();
        let x0 = b.xor("x0", &[a0, o0]).unwrap();
        let n0 = b.nand("n0", &[inputs[1], inputs[6]]).unwrap();
        let top = b.or("top", &[x0, n0]).unwrap();
        b.output(top);
        b.output(a0);
        let n = b.build().unwrap();

        let full = FaultUniverse::build(&n).unwrap();
        assert_eq!(full.simulator().kernel_mode(), "full");
        // Half the full working set -> a two-block tile (two tiles).
        let half = MemoryBudget::Bytes(full.simulator().data_plane_bytes() / 2);
        for (budget, threads) in [
            (MemoryBudget::Bytes(1), 1),
            (MemoryBudget::Bytes(1), 4),
            (half, 2),
        ] {
            let tiled = FaultUniverse::build_with(
                &n,
                UniverseOptions {
                    threads,
                    mem_budget: budget,
                    ..UniverseOptions::default()
                },
            )
            .unwrap();
            assert_eq!(full.targets(), tiled.targets());
            assert_eq!(full.bridges(), tiled.bridges());
            for (a, b) in full.target_sets().iter().zip(tiled.target_sets()) {
                assert_eq!(a.words(), b.words(), "budget {budget}");
            }
            for (a, b) in full.bridge_sets().iter().zip(tiled.bridge_sets()) {
                assert_eq!(a.words(), b.words(), "budget {budget}");
            }
        }
    }

    #[test]
    fn explicit_population_is_taken_verbatim() {
        let n = figure1();
        let baseline = FaultUniverse::build(&n).unwrap();
        // Hand-pick two targets and restrict bridging to stems 9 and 10.
        let stems = n.multi_input_gate_stems();
        let explicit = ExplicitTargets {
            targets: vec![baseline.targets()[0], baseline.targets()[3]],
            bridge_stems: stems[..2].to_vec(),
            canonical: b"source-model-v1".to_vec(),
        };
        let u = FaultUniverse::build_explicit(&n, &explicit, UniverseOptions::default()).unwrap();
        assert!(u.is_explicit());
        assert_eq!(u.targets(), &explicit.targets[..]);
        // Detection sets match what the default build computed for the
        // same faults.
        assert_eq!(u.target_set(0).to_vec(), baseline.target_set(0).to_vec());
        assert_eq!(u.target_set(1).to_vec(), baseline.target_set(3).to_vec());
        // Only the {9,10} pair is enumerated: 4 four-way faults.
        assert_eq!(u.bridges().len() + u.num_undetectable_bridges(), 4);
        // The store key follows the caller's canonical bytes, not the
        // simulated netlist.
        assert_eq!(
            u.store_key(),
            crate::artifact::explicit_universe_key(b"source-model-v1", UniverseOptions::default())
        );
        assert_ne!(u.store_key(), baseline.store_key());
        assert!(u.to_string().contains("explicit targets"));
    }

    #[test]
    #[should_panic(expected = "explicit fault population")]
    fn explicit_population_validates_line_bounds() {
        let n = figure1();
        let explicit = ExplicitTargets {
            targets: vec![StuckAtFault::new(ndetect_netlist::LineId::new(999), true)],
            bridge_stems: Vec::new(),
            canonical: Vec::new(),
        };
        let _ = FaultUniverse::build_explicit(&n, &explicit, UniverseOptions::default());
    }

    #[test]
    fn display_summarizes() {
        let n = figure1();
        let u = FaultUniverse::build(&n).unwrap();
        let s = u.to_string();
        assert!(s.contains("|F| = 16"));
        assert!(s.contains("|G| = 10"));
        assert!(format!("{u:?}").contains("figure1"));
    }
}
