//! Structural equivalence collapsing of stuck-at faults.
//!
//! Two faults are *equivalent* when every test distinguishes both or
//! neither; structurally, a stuck-at on a gate input is equivalent to a
//! stuck-at on its output when the input value forces the output:
//!
//! | gate | input fault | ≡ output fault |
//! |------|-------------|----------------|
//! | AND  | in/0        | out/0          |
//! | NAND | in/0        | out/1          |
//! | OR   | in/1        | out/1          |
//! | NOR  | in/1        | out/0          |
//! | BUF  | in/v        | out/v          |
//! | NOT  | in/v        | out/v̄          |
//!
//! XOR/XNOR gates and fanout stems do not collapse. Classes are closed
//! transitively (a chain of gates collapses end to end); the class
//! **representative** is the most downstream member (maximum driver level,
//! ties broken by line id) — this reproduces the fault list of the paper's
//! Table 1, where e.g. `{1/0, 5/0, 9/0}` is represented by `9/0`.

use crate::stuck_at::{all_stuck_at_faults, input_line_of_pin, StuckAtFault};
use ndetect_netlist::{GateKind, LineId, Netlist};
use std::collections::HashMap;

/// Result of equivalence collapsing: the representative faults (ordered by
/// (line id, stuck value)) and the full equivalence classes.
#[derive(Clone, Debug)]
pub struct CollapsedFaults {
    representatives: Vec<StuckAtFault>,
    classes: Vec<Vec<StuckAtFault>>,
    class_of: HashMap<StuckAtFault, usize>,
}

impl CollapsedFaults {
    /// Performs structural equivalence collapsing over the full stuck-at
    /// universe of `netlist`.
    #[must_use]
    pub fn compute(netlist: &Netlist) -> Self {
        let faults = all_stuck_at_faults(netlist);
        let index_of = |f: &StuckAtFault| f.line.index() * 2 + usize::from(f.value);

        // Union-find over fault indices.
        let mut parent: Vec<usize> = (0..faults.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[ra] = rb;
            }
        };

        for id in netlist.node_ids() {
            let node = netlist.node(id);
            let out = netlist.lines().stem(id);
            let out0 = StuckAtFault::new(out, false);
            let out1 = StuckAtFault::new(out, true);
            let pair_for = |pin: usize| -> LineId { input_line_of_pin(netlist, id, pin) };
            match node.kind() {
                GateKind::And | GateKind::Nand => {
                    let out_fault = if node.kind() == GateKind::And {
                        out0
                    } else {
                        out1
                    };
                    for pin in 0..node.fanins().len() {
                        let in_fault = StuckAtFault::new(pair_for(pin), false);
                        union(&mut parent, index_of(&in_fault), index_of(&out_fault));
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let out_fault = if node.kind() == GateKind::Or {
                        out1
                    } else {
                        out0
                    };
                    for pin in 0..node.fanins().len() {
                        let in_fault = StuckAtFault::new(pair_for(pin), true);
                        union(&mut parent, index_of(&in_fault), index_of(&out_fault));
                    }
                }
                GateKind::Buf => {
                    let input = pair_for(0);
                    union(
                        &mut parent,
                        index_of(&StuckAtFault::new(input, false)),
                        index_of(&out0),
                    );
                    union(
                        &mut parent,
                        index_of(&StuckAtFault::new(input, true)),
                        index_of(&out1),
                    );
                }
                GateKind::Not => {
                    let input = pair_for(0);
                    union(
                        &mut parent,
                        index_of(&StuckAtFault::new(input, false)),
                        index_of(&out1),
                    );
                    union(
                        &mut parent,
                        index_of(&StuckAtFault::new(input, true)),
                        index_of(&out0),
                    );
                }
                // XOR/XNOR, inputs, constants: no structural equivalences.
                _ => {}
            }
        }

        // Gather classes.
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..faults.len() {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }

        // Pick the most downstream member as representative: maximum driver
        // level, ties broken by the larger line id, then stuck value.
        let mut classes: Vec<Vec<StuckAtFault>> = Vec::with_capacity(groups.len());
        let mut representatives: Vec<StuckAtFault> = Vec::with_capacity(groups.len());
        let mut members: Vec<Vec<usize>> = groups.into_values().collect();
        // Deterministic class order independent of hash iteration.
        for m in &mut members {
            m.sort_unstable();
        }
        members.sort_unstable_by_key(|m| m[0]);

        let depth_key = |f: &StuckAtFault| {
            let line = netlist.lines().line(f.line);
            (netlist.level(line.driver()), f.line, f.value)
        };
        for group in members {
            let class: Vec<StuckAtFault> = group.iter().map(|&i| faults[i]).collect();
            let rep = *class
                .iter()
                .max_by_key(|f| depth_key(f))
                .expect("classes are non-empty");
            classes.push(class);
            representatives.push(rep);
        }

        // Paper ordering: by (line id, stuck value).
        let mut order: Vec<usize> = (0..representatives.len()).collect();
        order.sort_unstable_by_key(|&i| representatives[i]);
        let representatives: Vec<StuckAtFault> =
            order.iter().map(|&i| representatives[i]).collect();
        let classes: Vec<Vec<StuckAtFault>> = order.iter().map(|&i| classes[i].clone()).collect();

        let mut class_of = HashMap::new();
        for (ci, class) in classes.iter().enumerate() {
            for &f in class {
                class_of.insert(f, ci);
            }
        }

        CollapsedFaults {
            representatives,
            classes,
            class_of,
        }
    }

    /// The collapsed fault list (one representative per class), ordered by
    /// (line id, stuck value) — the paper's fault indexing.
    #[must_use]
    pub fn representatives(&self) -> &[StuckAtFault] {
        &self.representatives
    }

    /// The full equivalence classes, parallel to
    /// [`Self::representatives`].
    #[must_use]
    pub fn classes(&self) -> &[Vec<StuckAtFault>] {
        &self.classes
    }

    /// The class index containing an arbitrary (possibly non-representative)
    /// fault.
    #[must_use]
    pub fn class_of(&self, fault: StuckAtFault) -> Option<usize> {
        self.class_of.get(&fault).copied()
    }

    /// Number of collapsed classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// True only for an empty netlist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.representatives.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_netlist::NetlistBuilder;

    fn figure1() -> Netlist {
        let mut b = NetlistBuilder::new("figure1");
        let i1 = b.input("1");
        let i2 = b.input("2");
        let i3 = b.input("3");
        let i4 = b.input("4");
        let g9 = b.and("9", &[i1, i2]).unwrap();
        let g10 = b.and("10", &[i2, i3]).unwrap();
        let g11 = b.or("11", &[i3, i4]).unwrap();
        b.output(g9);
        b.output(g10);
        b.output(g11);
        b.build().unwrap()
    }

    #[test]
    fn figure1_collapses_to_sixteen_faults_in_paper_order() {
        let n = figure1();
        let c = CollapsedFaults::compute(&n);
        let names: Vec<String> = c.representatives().iter().map(|f| f.name(&n)).collect();
        // Branch lines are named "<stem>-><gate>.<pin>"; map to the paper's
        // numeric labels via line ids: branches of 2 are lines 4,5 (paper 5,6),
        // of 3 are 6,7 (paper 7,8).
        let by_paper_number: Vec<String> = c
            .representatives()
            .iter()
            .map(|f| format!("{}/{}", f.line.index() + 1, u8::from(f.value)))
            .collect();
        assert_eq!(
            by_paper_number,
            vec![
                "1/1", "2/0", "2/1", "3/0", "3/1", "4/0", "5/1", "6/1", "7/1", "8/0", "9/0", "9/1",
                "10/0", "10/1", "11/0", "11/1"
            ],
            "collapsed list was {names:?}"
        );
    }

    #[test]
    fn figure1_classes_match_hand_collapsing() {
        let n = figure1();
        let c = CollapsedFaults::compute(&n);
        // Class of 9/0 contains 1/0 (paper line 1), 5/0 (branch of 2), 9/0.
        let stem9 = n.lines().stem(n.node_by_name("9").unwrap());
        let class_idx = c.class_of(StuckAtFault::new(stem9, false)).unwrap();
        let class = &c.classes()[class_idx];
        assert_eq!(class.len(), 3);
        let paper_ids: Vec<usize> = class.iter().map(|f| f.line.index() + 1).collect();
        assert_eq!(paper_ids, vec![1, 5, 9]);
        // Class of 11/1 contains 4/1, 8/1, 11/1.
        let stem11 = n.lines().stem(n.node_by_name("11").unwrap());
        let class_idx = c.class_of(StuckAtFault::new(stem11, true)).unwrap();
        let paper_ids: Vec<usize> = c.classes()[class_idx]
            .iter()
            .map(|f| f.line.index() + 1)
            .collect();
        assert_eq!(paper_ids, vec![4, 8, 11]);
    }

    #[test]
    fn inverter_chain_collapses_end_to_end() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.not("g1", a).unwrap();
        let g2 = b.not("g2", g1).unwrap();
        b.output(g2);
        let n = b.build().unwrap();
        let c = CollapsedFaults::compute(&n);
        // 6 faults collapse into 2 classes of 3 (a/0≡g1/1≡g2/0, a/1≡g1/0≡g2/1).
        assert_eq!(c.len(), 2);
        assert!(c.classes().iter().all(|cl| cl.len() == 3));
        // Representatives are on the most downstream line, g2.
        let stem_g2 = n.lines().stem(g2);
        assert!(c.representatives().iter().all(|f| f.line == stem_g2));
    }

    #[test]
    fn xor_does_not_collapse() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a");
        let c0 = b.input("c");
        let g = b.xor("g", &[a, c0]).unwrap();
        b.output(g);
        let n = b.build().unwrap();
        let c = CollapsedFaults::compute(&n);
        assert_eq!(c.len(), 6); // nothing merges
        assert!(c.classes().iter().all(|cl| cl.len() == 1));
    }

    #[test]
    fn every_fault_belongs_to_exactly_one_class() {
        let n = figure1();
        let c = CollapsedFaults::compute(&n);
        let total: usize = c.classes().iter().map(Vec::len).sum();
        assert_eq!(total, n.lines().len() * 2);
        for f in all_stuck_at_faults(&n) {
            assert!(c.class_of(f).is_some());
        }
    }
}
