//! Single stuck-at faults on stems and branches.

use ndetect_netlist::{LineId, Netlist, NodeId};
use std::fmt;

/// A single stuck-at fault: line `line` permanently at `value`.
///
/// The paper writes `l/a` for line `l` stuck at `a`; use
/// [`StuckAtFault::name`] to render that form with the netlist's line
/// names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StuckAtFault {
    /// The faulty line. The `(line, value)` derive order makes the natural
    /// sort order (line id, then s-a-0 before s-a-1) match the paper's
    /// fault indexing.
    pub line: LineId,
    /// The stuck value.
    pub value: bool,
}

impl StuckAtFault {
    /// Creates a stuck-at fault.
    #[must_use]
    pub fn new(line: LineId, value: bool) -> Self {
        StuckAtFault { line, value }
    }

    /// Renders the paper's `l/a` notation using the netlist's line names,
    /// e.g. `"9/0"`.
    ///
    /// # Panics
    ///
    /// Panics if the line id does not belong to `netlist`.
    #[must_use]
    pub fn name(&self, netlist: &Netlist) -> String {
        format!(
            "{}/{}",
            netlist.lines().line(self.line).name(),
            u8::from(self.value)
        )
    }
}

impl fmt::Display for StuckAtFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.line, u8::from(self.value))
    }
}

/// Enumerates the *full* (uncollapsed) stuck-at fault universe: two faults
/// per line, ordered by (line id, stuck value).
///
/// ```
/// use ndetect_netlist::NetlistBuilder;
/// use ndetect_faults::all_stuck_at_faults;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let g = b.not("g", a)?;
/// b.output(g);
/// let n = b.build()?;
/// // Two lines (a, g) -> four faults.
/// assert_eq!(all_stuck_at_faults(&n).len(), 4);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn all_stuck_at_faults(netlist: &Netlist) -> Vec<StuckAtFault> {
    let mut faults = Vec::with_capacity(netlist.lines().len() * 2);
    for line in netlist.lines().lines() {
        faults.push(StuckAtFault::new(line.id(), false));
        faults.push(StuckAtFault::new(line.id(), true));
    }
    faults
}

/// The line feeding pin `pin` of gate `gate`: the driver's branch line if
/// the driver fans out, otherwise the driver's stem.
///
/// This is the "gate input line" on which input stuck-at faults live and
/// through which equivalence collapsing relates gate inputs to outputs.
///
/// # Panics
///
/// Panics if `pin` is out of range for `gate`.
#[must_use]
pub fn input_line_of_pin(netlist: &Netlist, gate: NodeId, pin: usize) -> LineId {
    let driver: NodeId = netlist.node(gate).fanins()[pin];
    let branches = netlist.lines().branches(driver);
    if branches.is_empty() {
        netlist.lines().stem(driver)
    } else {
        // Find the branch whose sink is exactly this pin.
        let sink_index = netlist
            .sinks(driver)
            .iter()
            .position(|s| {
                matches!(s, ndetect_netlist::Sink::GatePin { gate: g, pin: p }
                         if *g == gate && *p == pin)
            })
            .expect("pin must appear among driver's sinks");
        branches[sink_index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_netlist::NetlistBuilder;

    #[test]
    fn fault_ordering_matches_paper_convention() {
        let mut faults = [
            StuckAtFault::new(LineId::new(1), true),
            StuckAtFault::new(LineId::new(0), true),
            StuckAtFault::new(LineId::new(1), false),
            StuckAtFault::new(LineId::new(0), false),
        ];
        faults.sort();
        let rendered: Vec<String> = faults.iter().map(|f| f.to_string()).collect();
        assert_eq!(rendered, vec!["l0/0", "l0/1", "l1/0", "l1/1"]);
    }

    #[test]
    fn name_uses_line_names() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("alpha");
        let g = b.not("gout", a).unwrap();
        b.output(g);
        let n = b.build().unwrap();
        let stem_a = n.lines().stem(a);
        assert_eq!(StuckAtFault::new(stem_a, true).name(&n), "alpha/1");
    }

    #[test]
    fn input_line_resolves_branch_vs_stem() {
        // Input `a` fans out to two gates -> branch lines; `b` does not.
        let mut bld = NetlistBuilder::new("t");
        let a = bld.input("a");
        let b = bld.input("b");
        let g1 = bld.and("g1", &[a, b]).unwrap();
        let g2 = bld.not("g2", a).unwrap();
        bld.output(g1);
        bld.output(g2);
        let n = bld.build().unwrap();

        // g1 pin 0 is fed by a branch of `a`.
        let l = input_line_of_pin(&n, g1, 0);
        assert!(!n.lines().line(l).kind().is_stem());
        // g1 pin 1 is fed directly by the stem of `b`.
        let l = input_line_of_pin(&n, g1, 1);
        assert_eq!(l, n.lines().stem(b));
        // g2 pin 0 is the other branch of `a`.
        let l2 = input_line_of_pin(&n, g2, 0);
        assert!(!n.lines().line(l2).kind().is_stem());
        assert_ne!(l2, input_line_of_pin(&n, g1, 0));
    }

    #[test]
    fn full_universe_counts_two_per_line() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.and("g", &[a, c]).unwrap();
        b.output(g);
        let n = b.build().unwrap();
        let faults = all_stuck_at_faults(&n);
        assert_eq!(faults.len(), n.lines().len() * 2);
        // Sorted by construction.
        let mut sorted = faults.clone();
        sorted.sort();
        assert_eq!(faults, sorted);
    }
}
